# Convenience targets for the FVC reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench bench-fast bench-quick examples experiments clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-fast:
	$(PYTHON) -m pytest benchmarks/bench_core.py --benchmark-only \
		--benchmark-autosave

bench-quick:
	$(PYTHON) -m pytest benchmarks/bench_fig09_access_time.py \
		benchmarks/bench_table4_constancy.py --benchmark-only

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

experiments:
	$(PYTHON) -m repro run all

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results/*.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
