# Convenience targets for the FVC reproduction.

PYTHON ?= python

.PHONY: install test test-fast test-sanitize lint bench bench-core bench-cluster bench-fast bench-quick bench-obs examples experiments sweep clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# The whole suite with runtime invariant checks armed on every
# simulation cell (repro.analysis.sanitize).
test-sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest tests/

# Two linters: ruff (general Python errors; skipped with a notice when
# not installed, since the toolchain has no third-party deps) and the
# project's simulator-invariant linter (always available — stdlib only).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (CI runs it)"; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro.analysis src

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Backend speedup trajectory: the fig13 sweep under both backends must
# show >= 5x for numpy with byte-identical payloads; refreshes the
# committed BENCH_core.json (docs/PERFORMANCE.md explains the fields).
bench-core:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_core.py -o BENCH_core.json

# Cluster-fabric trajectory: the fig13 test-scale sweep through a
# coordinator + 1/2/4 real worker processes, median of 3, payload
# byte-identity gated on every row; refreshes BENCH_cluster.json
# (docs/CLUSTER.md has the failure model behind the fabric).
bench-cluster:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_cluster.py -o BENCH_cluster.json

bench-fast:
	$(PYTHON) -m pytest benchmarks/bench_core.py --benchmark-only \
		--benchmark-autosave

bench-quick:
	$(PYTHON) -m pytest benchmarks/bench_fig09_access_time.py \
		benchmarks/bench_table4_constancy.py --benchmark-only

# Observability overhead gate: the same cell batch with obs off vs
# fully on must stay within 5%; writes BENCH_obs.json.
bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/obs_overhead.py -o BENCH_obs.json

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

experiments:
	$(PYTHON) -m repro run all

# The reference declarative study at reduced scale (docs/SWEEPS.md).
sweep:
	PYTHONPATH=src $(PYTHON) -m repro sweep run l1_size_study --fast

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results/*.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
