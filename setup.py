"""Legacy shim so `pip install -e . --no-use-pep517` works offline
(the sandbox has no `wheel` package, which PEP-517 editable installs
require).  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
