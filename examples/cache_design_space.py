#!/usr/bin/env python3
"""Design-space exploration: grow the cache, or add an FVC?

The paper's headline engineering question (Fig. 13): given a
direct-mapped cache, is the next transistor budget better spent
doubling it or attaching a small frequent value cache?  This example
sweeps both options across the conflict-dominated analogs and prints
the answer together with the access-time picture from the CACTI-style
model.

Run:  python examples/cache_design_space.py
"""

from repro import CacheGeometry, DEFAULT_MODEL, DirectMappedCache, FvcSystem
from repro.experiments.common import encoder_for
from repro.workloads.store import get_trace


def explore(benchmark: str, input_name: str = "train") -> None:
    trace = get_trace(benchmark, input_name)
    encoder = encoder_for(trace, 7)
    print(f"\n=== {benchmark} ({len(trace):,} accesses) ===")
    print(f"{'configuration':28s} {'miss%':>7s} {'access ns':>10s} "
          f"{'extra KB':>9s}")
    for size_kb in (8, 16, 32):
        geometry = CacheGeometry(size_kb * 1024, 32)
        double = CacheGeometry(size_kb * 2 * 1024, 32)
        base = DirectMappedCache(geometry).simulate(trace.records)
        doubled = DirectMappedCache(double).simulate(trace.records)
        system = FvcSystem(geometry, 512, encoder)
        augmented = system.simulate(trace.records)
        fvc_kb = system.fvc.data_storage_bytes() / 1024
        rows = [
            (f"{geometry.describe()}", base.miss_rate,
             DEFAULT_MODEL.direct_mapped_access_ns(geometry), 0.0),
            (f"{double.describe()} (doubled)", doubled.miss_rate,
             DEFAULT_MODEL.direct_mapped_access_ns(double), size_kb),
            (f"{geometry.describe()} + 512e FVC", augmented.miss_rate,
             max(
                 DEFAULT_MODEL.direct_mapped_access_ns(geometry),
                 DEFAULT_MODEL.fvc_access_ns(512, 3, geometry.words_per_line),
             ), fvc_kb),
        ]
        for label, miss_rate, time_ns, extra_kb in rows:
            print(f"{label:28s} {100 * miss_rate:7.3f} {time_ns:10.2f} "
                  f"{extra_kb:9.2f}")
        winner = "FVC" if augmented.miss_rate < doubled.miss_rate else "doubling"
        print(f"  -> better use of area for {benchmark}: {winner}\n")


def main() -> None:
    for benchmark in ("m88ksim", "perl", "gcc"):
        explore(benchmark)


if __name__ == "__main__":
    main()
