#!/usr/bin/env python3
"""The frequent value locality characterisation study (paper §2).

Reproduces the measurements behind Figures 1-2 and Table 4 on the whole
analog suite at train scale: how much of memory and of the access
stream a handful of values cover, and how many addresses stay constant
— the split that separates the six FVL benchmarks from compress/ijpeg.

Run:  python examples/fvl_study.py
"""

from repro import get_workload, profile_accessed_values, profile_constancy
from repro.profiling.occurrence import profile_occurring_values
from repro.workloads.registry import FP_WORKLOADS, INT_WORKLOADS


def study(workloads, input_name: str = "train") -> None:
    header = (
        f"{'benchmark':10s} {'analog of':12s} "
        f"{'occ10%':>7s} {'acc10%':>7s} {'const%':>7s} {'verdict':>9s}"
    )
    print(header)
    print("-" * len(header))
    for workload in workloads:
        trace = workload.generate_trace(input_name)
        access = profile_accessed_values(trace)
        occurrence = profile_occurring_values(
            workload, input_name, sample_interval=max(1, len(trace) // 12)
        )
        constancy = profile_constancy(trace)
        acc10 = 100 * access.coverage(10)
        occ10 = 100 * occurrence.coverage(10)
        verdict = "FVL" if acc10 > 25 else "no FVL"
        print(
            f"{workload.name:10s} {workload.spec_analog:12s} "
            f"{occ10:7.1f} {acc10:7.1f} "
            f"{100 * constancy.constant_fraction:7.1f} {verdict:>9s}"
        )


def main() -> None:
    print("SPECint95 analogs "
          "(paper Fig. 1 + Table 4: six FVL programs, two without):\n")
    study(INT_WORKLOADS)
    print("\nSPECfp95 analogs (paper Fig. 2: all show FVL):\n")
    study(FP_WORKLOADS)


if __name__ == "__main__":
    main()
