#!/usr/bin/env python3
"""Quickstart: profile a program, build an FVC, measure the win.

Walks the paper's whole flow on one workload in under a minute:

1. run the gcc analog and collect its memory-reference trace;
2. profile the frequently accessed values (paper §2);
3. configure a top-7 frequent value encoder from the profile;
4. simulate a 16 KB direct-mapped cache with and without a 512-entry
   FVC and compare miss rates and memory traffic (paper §4).

Run:  python examples/quickstart.py
"""

from repro import (
    CacheGeometry,
    DirectMappedCache,
    FrequentValueEncoder,
    FvcSystem,
    get_workload,
    profile_accessed_values,
)


def main() -> None:
    # 1. Trace a real program execution (the train input keeps it quick).
    workload = get_workload("gcc")
    trace = workload.generate_trace("train")
    print(f"traced {workload.spec_analog} analog: {len(trace):,} accesses, "
          f"{trace.footprint_words():,} words touched")

    # 2. Find the frequently accessed values.
    profile = profile_accessed_values(trace)
    print("\ntop accessed values (value: share of all accesses):")
    for value, count in profile.ranked[:7]:
        print(f"  {value:>10x}  {100 * count / profile.total_accesses:5.1f}%")
    print(f"top-10 coverage: {100 * profile.coverage(10):.1f}% of accesses")

    # 3. Build the encoder the FVC will use (top 7 values, 3-bit codes).
    encoder = FrequentValueEncoder.for_top_values(profile.top_values(7), 3)

    # 4. Baseline vs DMC+FVC.
    geometry = CacheGeometry(size_bytes=16 * 1024, line_bytes=32)
    baseline = DirectMappedCache(geometry).simulate(trace.records)
    system = FvcSystem(geometry, fvc_entries=512, encoder=encoder)
    augmented = system.simulate(trace.records)

    print(f"\n{geometry.describe()} alone:")
    print(f"  miss rate {100 * baseline.miss_rate:.3f}%  "
          f"traffic {baseline.traffic_words:,} words")
    print(f"{geometry.describe()} + 512-entry top-7 FVC "
          f"({system.fvc.data_storage_bytes() / 1024:.2f} KB of codes):")
    print(f"  miss rate {100 * augmented.miss_rate:.3f}%  "
          f"traffic {augmented.traffic_words:,} words")
    reduction = 100 * (baseline.miss_rate - augmented.miss_rate) / baseline.miss_rate
    print(f"  -> {reduction:.1f}% fewer misses; "
          f"{system.fvc_read_hits:,} read hits and "
          f"{system.fvc_write_hits:,} write hits served from compressed codes")


if __name__ == "__main__":
    main()
