#!/usr/bin/env python3
"""Quickstart: profile a program, build an FVC, measure the win.

Walks the paper's whole flow on one workload in under a minute, using
only the stable facade (``repro.api``):

1. run the gcc analog and profile its frequently accessed values
   (paper §2);
2. simulate a 16 KB direct-mapped cache with and without a 512-entry
   FVC built over the top 7 values and compare miss rates (paper §4).

Run:  python examples/quickstart.py
"""

from repro import api


def main() -> None:
    # 1. Profile the frequently accessed values of one traced execution
    #    (the train input keeps it quick).
    profile = api.profile_trace("gcc", input_name="train")
    print("top accessed values (value: share of all accesses):")
    for value, count in profile.ranked[:7]:
        print(f"  {value:>10x}  {100 * count / profile.total_accesses:5.1f}%")
    print(f"top-10 coverage: {100 * profile.coverage(10):.1f}% of accesses")

    # 2. Baseline vs DMC+FVC over the same trace.  simulate() rebuilds
    #    the top-7 encoder from the trace's profile internally.
    baseline = api.simulate("gcc", input_name="train")
    augmented = api.simulate(
        "gcc", input_name="train", kind="fvc",
        fvc_entries=512, top_values=7,
    )

    print(f"\n16KB direct-mapped alone "
          f"({baseline.accesses:,} accesses):")
    print(f"  miss rate {100 * baseline.miss_rate:.3f}%")
    print("16KB direct-mapped + 512-entry top-7 FVC:")
    print(f"  miss rate {100 * augmented.miss_rate:.3f}%")
    reduction = 100 * (
        (baseline.miss_rate - augmented.miss_rate) / baseline.miss_rate
    )
    print(f"  -> {reduction:.1f}% fewer misses; "
          f"{augmented.extras['fvc_read_hits']:,} read hits and "
          f"{augmented.extras['fvc_write_hits']:,} write hits "
          "served from compressed codes")


if __name__ == "__main__":
    main()
