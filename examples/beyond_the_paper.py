#!/usr/bin/env python3
"""Beyond the paper: the extensions this repository adds.

Four follow-ups the paper points at but does not evaluate, each run on
one representative workload:

1. the **compression cache** of reference [11] (two compressed lines
   per slot) — the research line the FVC spawned;
2. the **hybrid** of the conclusion's "creative ways" (evictions routed
   by value content between an FVC and a victim buffer);
3. the FVC behind a **two-level hierarchy** (what survives an L2);
4. the **dynamic FVC** (no profiling run — values discovered online).

Run:  python examples/beyond_the_paper.py
"""

from repro import (
    CacheGeometry,
    CompressedCache,
    DirectMappedCache,
    DynamicFvcSystem,
    FvcSystem,
)
from repro.cache.hierarchy import TwoLevelFvcSystem, TwoLevelSystem
from repro.experiments.common import encoder_for, reduction_percent
from repro.fvc.hybrid import HybridFvcVictimSystem
from repro.workloads.store import get_trace


def compression_cache() -> None:
    trace = get_trace("perl", "train")
    geometry = CacheGeometry(8 * 1024, 32)
    encoder = encoder_for(trace, 7)
    base = DirectMappedCache(geometry).simulate(trace.records)
    side = FvcSystem(geometry, 256, encoder).simulate(trace.records)
    compressed = CompressedCache(geometry, encoder)
    packed = compressed.simulate(trace.records)
    print("1. compression cache (reference [11]) on perl, 8KB:")
    print(f"   side FVC reduction        {reduction_percent(base, side):5.1f}%")
    print(f"   compression-cache red.    {reduction_percent(base, packed):5.1f}%"
          f"  ({100 * compressed.compression_ratio():.0f}% of installs "
          "compressed)\n")


def hybrid() -> None:
    trace = get_trace("vortex", "train")
    geometry = CacheGeometry(4 * 1024, 32)
    encoder = encoder_for(trace, 7)
    base = DirectMappedCache(geometry).simulate(trace.records)
    system = HybridFvcVictimSystem(geometry, 256, 8, encoder)
    stats = system.simulate(trace.records)
    routed = system.routed_to_fvc + system.routed_to_victim
    print("2. content-routed hybrid on vortex, 4KB:")
    print(f"   reduction {reduction_percent(base, stats):5.1f}%  "
          f"({100 * system.routed_to_fvc / routed:.0f}% of evictions took "
          "the compressed route)\n")


def hierarchy() -> None:
    trace = get_trace("m88ksim", "train")
    l1 = CacheGeometry(16 * 1024, 32)
    l2 = CacheGeometry(64 * 1024, 32, ways=4)
    plain = TwoLevelSystem(l1, l2)
    plain.simulate(trace.records)
    fvc = TwoLevelFvcSystem(l1, l2, 512, encoder_for(trace, 7))
    fvc.simulate(trace.records)
    saved = 100 * (plain.l2_stats.accesses - fvc.l2_stats.accesses) / max(
        1, plain.l2_stats.accesses
    )
    print("3. two-level hierarchy on m88ksim:")
    print(f"   L1-L2 traffic saved by the FVC: {saved:.1f}% "
          f"(global miss rate {100 * fvc.global_miss_rate:.3f}%)\n")


def dynamic() -> None:
    trace = get_trace("gcc", "train")
    geometry = CacheGeometry(16 * 1024, 32)
    base = DirectMappedCache(geometry).simulate(trace.records)
    profiled = FvcSystem(geometry, 512, encoder_for(trace, 7)).simulate(
        trace.records
    )
    online = DynamicFvcSystem(
        geometry, 512, code_bits=3, warmup_accesses=len(trace) // 20
    )
    online_stats = online.simulate(trace.records)
    print("4. dynamic value identification on gcc:")
    print(f"   profiled FVC reduction {reduction_percent(base, profiled):5.1f}%")
    print(f"   online   FVC reduction {reduction_percent(base, online_stats):5.1f}%"
          f"  (values locked after a 5% warm-up: "
          + ", ".join(format(v, 'x') for v in online.frequent_values[:5])
          + ", ...)")


def main() -> None:
    compression_cache()
    hybrid()
    hierarchy()
    dynamic()


if __name__ == "__main__":
    main()
