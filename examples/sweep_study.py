#!/usr/bin/env python3
"""Declarative sweeps: one spec, three ways to run it.

A paper study is a grid — workloads x cache configurations, one arm
per curve.  ``repro.sweeps`` makes the grid a JSON document
(``sweep/v1``, see docs/SWEEPS.md) that expands deterministically into
simulation cells and aggregates into a report table:

1. run a catalogued study (``l1_size_study``) through the facade;
2. load the custom spec next to this script
   (``line_size_sweep.json``) and run it — the same file works with
   ``repro-fvc run examples/line_size_sweep.json`` and with
   ``POST /v1/sweeps``, byte-identically.

Run:  python examples/sweep_study.py
"""

import json
import pathlib

from repro import api


def main() -> None:
    # 1. The catalog: every fig*/table* experiment plus standalone
    #    studies, inspectable without running anything.
    print("catalogued sweeps:", ", ".join(api.list_sweeps()))
    shape = api.describe_sweep("l1_size_study", fast=True)
    print(
        f"l1_size_study (fast): {shape['points']} points over axes "
        f"{shape['axes']} with arms {shape['arms']}\n"
    )

    result = api.run_sweep("l1_size_study", fast=True)
    print(f"{result.name}: {result.points} points, "
          f"{result.distinct_cells} distinct cells")
    for row in result.rows:
        if row["workload"] == "m88ksim" and row["size_bytes"] == 16384:
            label = row["arm"]
            if row["arm"] == "fvc":
                label += f" top={row['top_values']}"
            print(f"  16KB {label:10s} "
                  f"miss rate {row['miss_rate_percent_mean']:6.3f}%")

    # 2. A custom spec from disk: line-size sensitivity with and
    #    without the FVC.  run_sweep accepts the parsed dict directly.
    spec = json.loads(
        (pathlib.Path(__file__).parent / "line_size_sweep.json").read_text()
    )
    study = api.run_sweep(spec)
    print(f"\n{study.name}: {study.points} points")
    print(study.to_csv(), end="")


if __name__ == "__main__":
    main()
