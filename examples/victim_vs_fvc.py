#!/usr/bin/env python3
"""Victim cache or frequent value cache? (paper Fig. 15)

Compares Jouppi's victim cache against the FVC next to a small 4 KB
direct-mapped cache under the paper's two fairness rules: equal storage
(16-entry VC vs 128-entry FVC) and equal access time (4-entry VC at
~9 ns vs 512-entry FVC at ~6 ns).

Run:  python examples/victim_vs_fvc.py
"""

from repro import (
    CacheGeometry,
    DEFAULT_MODEL,
    DirectMappedCache,
    FvcSystem,
    VictimCacheSystem,
)
from repro.experiments.common import encoder_for
from repro.workloads.store import get_trace

GEOMETRY = CacheGeometry(4 * 1024, 32)


def reduction(base, improved) -> float:
    return 100 * (base.miss_rate - improved.miss_rate) / base.miss_rate


def main() -> None:
    print("4KB direct-mapped base cache, 8-word lines\n")
    print("equal storage : 16-entry VC  vs 128-entry top-7 FVC")
    print("equal time    :  4-entry VC  "
          f"({DEFAULT_MODEL.fully_associative_access_ns(4, 32):.1f} ns) vs "
          f"512-entry FVC ({DEFAULT_MODEL.fvc_access_ns(512, 3, 8):.1f} ns)\n")
    header = (f"{'benchmark':10s} {'base miss%':>10s} "
              f"{'VC16':>7s} {'FVC128':>7s} {'VC4':>7s} {'FVC512':>7s}")
    print(header)
    print("-" * len(header))
    for name in ("go", "m88ksim", "gcc", "li", "perl", "vortex"):
        trace = get_trace(name, "train")
        encoder = encoder_for(trace, 7)
        base = DirectMappedCache(GEOMETRY).simulate(trace.records)
        cells = [100 * base.miss_rate]
        for system in (
            VictimCacheSystem(GEOMETRY, 16),
            FvcSystem(GEOMETRY, 128, encoder),
            VictimCacheSystem(GEOMETRY, 4),
            FvcSystem(GEOMETRY, 512, encoder),
        ):
            cells.append(reduction(base, system.simulate(trace.records)))
        print(f"{name:10s} {cells[0]:10.3f} "
              f"{cells[1]:6.1f}% {cells[2]:6.1f}% "
              f"{cells[3]:6.1f}% {cells[4]:6.1f}%")
    print("\n(the paper's verdict: VC wins at equal storage, FVC wins at "
          "equal access time)")


if __name__ == "__main__":
    main()
