#!/usr/bin/env python3
"""The frequent-value compression scheme, end to end (paper §3, Fig. 7).

Shows the 3-bit encoding of a cache line, the random-access property,
the FVC's storage arithmetic, and the measured frequent-value content
of a live FVC (the Fig. 11 effectiveness result) — plus the dynamic
variant that discovers the value set online instead of profiling.

Run:  python examples/compression_demo.py
"""

from repro import (
    CacheGeometry,
    DynamicFvcSystem,
    FrequentValueEncoder,
    FvcSystem,
    FvcSystemConfig,
)
from repro.experiments.common import encoder_for
from repro.workloads.store import get_trace


def show_fig7() -> None:
    """The paper's Fig. 7 worked example."""
    encoder = FrequentValueEncoder([0, 0xFFFFFFFF, 1, 2, 4, 8, 0x10], 3)
    line = [0, 1000, 0, 99999, 0xFFFFFFFF, 0x10, 1, 0xFFFFFFFF]
    codes = encoder.encode_line(line)
    print("uncompressed DMC line (8 words, 256 bits):")
    print("  " + " ".join(f"{word:>8x}" for word in line))
    print("compressed FVC field (8 codes, 24 bits):")
    print("  " + " ".join(f"{code:03b}" for code in codes))
    print(f"  ({sum(1 for c in codes if c != encoder.infrequent_code)} of 8 "
          "words are frequent values; 111 marks the others)")
    # Random access: decode word 4 without touching its neighbours.
    print(f"random access to word 4: decode({codes[4]:03b}) = "
          f"{encoder.decode(codes[4]):x}\n")


def show_storage_and_content() -> None:
    trace = get_trace("vortex", "train")
    geometry = CacheGeometry(16 * 1024, 32)
    system = FvcSystem(
        geometry, 512, encoder_for(trace, 7),
        config=FvcSystemConfig(occupancy_sample_interval=512),
    )
    system.simulate(trace.records)
    content = system.mean_fvc_frequent_fraction
    print("512-entry FVC next to a 16KB DMC on the vortex analog:")
    print(f"  data array: {system.fvc.data_storage_bytes()} bytes "
          f"(vs {512 * 32} bytes for the same lines uncompressed)")
    print(f"  frequent-value content of valid lines: {100 * content:.1f}%")
    print(f"  => stores cached values in {(32 / 3) * content:.2f}x less "
          "storage than a DMC (paper: ~4.27x)\n")


def show_dynamic() -> None:
    trace = get_trace("m88ksim", "train")
    geometry = CacheGeometry(16 * 1024, 32)
    dynamic = DynamicFvcSystem(
        geometry, 512, code_bits=3,
        warmup_accesses=len(trace) // 20,
    )
    dynamic.simulate(trace.records)
    print("dynamic FVC (no profiling run): after a 5% warm-up the "
          "Space-Saving summary locked in:")
    print("  " + ", ".join(f"{value:x}" for value in dynamic.frequent_values))
    print(f"  FVC hits after lock-in: {dynamic.fvc_hits:,}")


def main() -> None:
    show_fig7()
    show_storage_and_content()
    show_dynamic()


if __name__ == "__main__":
    main()
