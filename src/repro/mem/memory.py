"""The word-addressable memory every workload executes against.

Responsibilities:

* hold 32-bit word values at 4-byte-aligned byte addresses;
* record every load/store into an attached trace sink;
* track which locations are *live* — referenced at least once and not
  deallocated since — which is exactly the paper's definition of the
  locations of **interest** for the occurrence study (§2);
* invoke an optional sampling hook every N accesses, standing in for the
  paper's every-10M-instructions occurrence snapshots.

The load/store hot path is deliberately branch-light: the workloads
generate hundreds of thousands of accesses per run and the experiment
suite runs many workloads.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import MemoryError_
from repro.common.words import WORD_MASK

#: Trace opcode for a load.  Kept as plain ints (not an Enum) because they
#: appear in every trace record and Enum attribute access costs ~10x more.
LOAD = 0
#: Trace opcode for a store.
STORE = 1


class AccessOp:
    """Namespace for the trace opcodes (``LOAD`` = 0, ``STORE`` = 1)."""

    LOAD = LOAD
    STORE = STORE


class WordMemory:
    """Sparse 32-bit word memory with access recording and liveness.

    Parameters
    ----------
    record:
        Optional list; when set, every access appends a
        ``(op, byte_address, value)`` tuple to it.
    sample_interval / sampler:
        When both are set, ``sampler(memory)`` is invoked every
        ``sample_interval`` accesses — used by the occurrence and timeline
        profilers to snapshot live memory during execution.

    Unbacked locations read as zero, like freshly mapped pages — this
    matters for the frequent-value studies, where zero-initialised data is
    one of the sources of the dominant value 0.
    """

    __slots__ = (
        "_words",
        "_live",
        "_record",
        "access_count",
        "_sample_interval",
        "_sampler",
        "_next_sample",
    )

    def __init__(
        self,
        record: Optional[List[Tuple[int, int, int]]] = None,
        sample_interval: int = 0,
        sampler: Optional[Callable[["WordMemory"], None]] = None,
    ) -> None:
        self._words: Dict[int, int] = {}
        self._live: set = set()
        self._record = record
        self.access_count = 0
        if (sample_interval > 0) != (sampler is not None):
            raise MemoryError_(
                "sample_interval and sampler must be provided together"
            )
        self._sample_interval = sample_interval
        self._sampler = sampler
        self._next_sample = sample_interval if sample_interval else -1

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def load(self, byte_addr: int) -> int:
        """Read the word at ``byte_addr`` (must be 4-byte aligned)."""
        if byte_addr & 3:
            raise MemoryError_(f"misaligned load at {byte_addr:#x}")
        waddr = byte_addr >> 2
        value = self._words.get(waddr, 0)
        self._live.add(waddr)
        if self._record is not None:
            self._record.append((LOAD, byte_addr, value))
        self.access_count += 1
        if self.access_count == self._next_sample:
            self._next_sample += self._sample_interval
            self._sampler(self)  # type: ignore[misc]
        return value

    def store(self, byte_addr: int, value: int) -> None:
        """Write ``value`` (wrapped to 32 bits) at ``byte_addr``."""
        if byte_addr & 3:
            raise MemoryError_(f"misaligned store at {byte_addr:#x}")
        waddr = byte_addr >> 2
        self._words[waddr] = value & WORD_MASK
        self._live.add(waddr)
        if self._record is not None:
            self._record.append((STORE, byte_addr, value & WORD_MASK))
        self.access_count += 1
        if self.access_count == self._next_sample:
            self._next_sample += self._sample_interval
            self._sampler(self)  # type: ignore[misc]

    # ------------------------------------------------------------------
    # Non-traced access (for cache simulators backing-store and checks)
    # ------------------------------------------------------------------
    def peek(self, byte_addr: int) -> int:
        """Read a word without recording an access or marking it live."""
        if byte_addr & 3:
            raise MemoryError_(f"misaligned peek at {byte_addr:#x}")
        return self._words.get(byte_addr >> 2, 0)

    def poke(self, byte_addr: int, value: int) -> None:
        """Write a word without recording an access or marking it live."""
        if byte_addr & 3:
            raise MemoryError_(f"misaligned poke at {byte_addr:#x}")
        self._words[byte_addr >> 2] = value & WORD_MASK

    # ------------------------------------------------------------------
    # Liveness (the paper's "interesting" locations)
    # ------------------------------------------------------------------
    def mark_dead(self, byte_addr: int, nwords: int) -> None:
        """Deallocate ``nwords`` words starting at ``byte_addr``.

        Called on heap frees and stack-frame pops; the words drop out of
        the live set.  Their contents are deliberately *retained*: a later
        reallocation reads stale data exactly like real ``malloc`` memory,
        which keeps trace replay bit-identical (a replayed store stream
        against zero-initialised memory reproduces every load value).
        """
        if byte_addr & 3:
            raise MemoryError_(f"misaligned mark_dead at {byte_addr:#x}")
        base = byte_addr >> 2
        live = self._live
        for waddr in range(base, base + nwords):
            live.discard(waddr)

    def live_items(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(byte_address, value)`` over live referenced words."""
        words = self._words
        for waddr in self._live:
            yield waddr << 2, words.get(waddr, 0)

    def live_values(self) -> List[int]:
        """Values of all live referenced words (occurrence snapshots)."""
        words = self._words
        return [words.get(waddr, 0) for waddr in self._live]

    @property
    def live_count(self) -> int:
        """Number of live referenced words."""
        return len(self._live)

    def __contains__(self, byte_addr: int) -> bool:
        return (byte_addr >> 2) in self._words
