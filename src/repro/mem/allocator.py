"""Static, heap, and stack allocators over :class:`WordMemory`.

The allocators exist for two reasons beyond convenience:

* they give the workloads realistic address streams (bump allocation,
  free-list reuse, stack frames), which shapes conflict and capacity
  behaviour in the cache experiments; and
* they tell the memory which locations are deallocated, which defines the
  paper's "interesting" locations for the occurrence study — the paper
  could track stack deallocation but not heap frees; we track both.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import MemoryError_
from repro.common.words import WORD_BYTES
from repro.mem.memory import WordMemory


class StaticAllocator:
    """Bump allocator for the static data segment.

    Supports deliberate placement (``at=``) so a workload can lay two hot
    tables a cache-size apart — the natural way real programs end up with
    pathological direct-mapped conflicts.
    """

    def __init__(self, memory: WordMemory, base: int) -> None:
        self._memory = memory
        self._base = base
        self._brk = base

    @property
    def brk(self) -> int:
        """Current top of the static segment (next free byte address)."""
        return self._brk

    def alloc(self, nwords: int, align_bytes: int = WORD_BYTES, at: int = 0) -> int:
        """Reserve ``nwords`` words; returns the base byte address.

        ``at`` places the block at an absolute address (must not be below
        the current break).  ``align_bytes`` rounds the base up.
        """
        if nwords <= 0:
            raise MemoryError_("static alloc of non-positive size")
        if at:
            if at < self._brk:
                raise MemoryError_(
                    f"placement {at:#x} below static break {self._brk:#x}"
                )
            base = at
        else:
            base = self._brk
        if align_bytes > WORD_BYTES:
            base = (base + align_bytes - 1) & ~(align_bytes - 1)
        if base & 3:
            raise MemoryError_(f"static base {base:#x} not word aligned")
        self._brk = base + nwords * WORD_BYTES
        return base


class HeapAllocator:
    """Bump allocator with per-size free lists (a malloc stand-in).

    Freed blocks are recycled first-fit-by-exact-size, which is how the
    Lisp-interpreter analog gets the address reuse that drives its low
    constant-address fraction (Table 4: 130.li at 28.8%).
    """

    def __init__(self, memory: WordMemory, base: int, limit_words: int = 1 << 24) -> None:
        self._memory = memory
        self._base = base
        self._brk = base
        self._limit = base + limit_words * WORD_BYTES
        self._sizes: Dict[int, int] = {}
        self._free_lists: Dict[int, List[int]] = {}
        self.alloc_count = 0
        self.free_count = 0

    def alloc(self, nwords: int) -> int:
        """Allocate ``nwords`` words; returns the block's byte address."""
        if nwords <= 0:
            raise MemoryError_("heap alloc of non-positive size")
        self.alloc_count += 1
        bucket = self._free_lists.get(nwords)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self._brk
            self._brk += nwords * WORD_BYTES
            if self._brk > self._limit:
                raise MemoryError_("simulated heap exhausted")
        self._sizes[addr] = nwords
        return addr

    def free(self, addr: int) -> None:
        """Free a block previously returned by :meth:`alloc`.

        The block's words are marked dead (dropping them from the live
        set) and the block is queued for reuse.
        """
        nwords = self._sizes.pop(addr, 0)
        if nwords == 0:
            raise MemoryError_(f"free of unallocated heap address {addr:#x}")
        self.free_count += 1
        self._memory.mark_dead(addr, nwords)
        self._free_lists.setdefault(nwords, []).append(addr)

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated (excluding free-listed blocks)."""
        return sum(self._sizes.values()) * WORD_BYTES

    @property
    def high_water_bytes(self) -> int:
        """Peak extent of the heap segment."""
        return self._brk - self._base


class StackAllocator:
    """Downward-growing stack of word-granular frames.

    ``push_frame`` returns the frame's base (lowest) byte address;
    ``pop_frame`` deallocates it, marking its words dead exactly as the
    paper does for stack memory.
    """

    def __init__(self, memory: WordMemory, top: int, limit_words: int = 1 << 20) -> None:
        self._memory = memory
        self._top = top
        self._sp = top
        self._floor = top - limit_words * WORD_BYTES
        self._frames: List[int] = []

    @property
    def sp(self) -> int:
        """Current stack pointer (byte address of the live frame base)."""
        return self._sp

    @property
    def depth(self) -> int:
        """Number of live frames."""
        return len(self._frames)

    def push_frame(self, nwords: int) -> int:
        """Push a frame of ``nwords`` words; returns its base address."""
        if nwords <= 0:
            raise MemoryError_("stack frame of non-positive size")
        new_sp = self._sp - nwords * WORD_BYTES
        if new_sp < self._floor:
            raise MemoryError_("simulated stack overflow")
        self._frames.append(nwords)
        self._sp = new_sp
        return new_sp

    def pop_frame(self) -> None:
        """Pop the most recent frame and deallocate its words."""
        if not self._frames:
            raise MemoryError_("pop of empty simulated stack")
        nwords = self._frames.pop()
        self._memory.mark_dead(self._sp, nwords)
        self._sp += nwords * WORD_BYTES
