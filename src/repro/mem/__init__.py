"""Simulated 32-bit word-addressable memory.

The workload analogs execute real algorithms against this memory; every
load and store is recorded, producing the reference traces that the
profilers and cache simulators consume — the Python equivalent of the
paper's instrumented SPEC95 runs.
"""

from repro.mem.memory import AccessOp, WordMemory
from repro.mem.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from repro.mem.allocator import HeapAllocator, StackAllocator, StaticAllocator
from repro.mem.space import AddressSpace

__all__ = [
    "AccessOp",
    "WordMemory",
    "AddressSpaceLayout",
    "DEFAULT_LAYOUT",
    "HeapAllocator",
    "StackAllocator",
    "StaticAllocator",
    "AddressSpace",
]
