"""Address-space layout for the workload analogs.

The paper's Table 1 shows that several of SPECint95's most frequent
values are *pointers* clustered around 0x4000_0000 (heap) and 0x0804_8000
(static data on Linux/x86 of the era).  The analogs use the same layout so
the value populations — and the conflict behaviour of the address streams
in a direct-mapped cache — resemble the originals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class AddressSpaceLayout:
    """Base addresses of the three data segments.

    Attributes
    ----------
    static_base:
        Lowest address of the static data segment (grows up).
    heap_base:
        Lowest address of the heap (grows up).
    stack_top:
        Highest address of the stack (grows down).
    """

    static_base: int = 0x08048000
    heap_base: int = 0x40000000
    stack_top: int = 0x7FFFF000

    def __post_init__(self) -> None:
        for name, addr in (
            ("static_base", self.static_base),
            ("heap_base", self.heap_base),
            ("stack_top", self.stack_top),
        ):
            if addr & 3:
                raise ConfigurationError(f"{name} {addr:#x} is not word aligned")
            if not 0 <= addr <= 0xFFFFFFFF:
                raise ConfigurationError(f"{name} {addr:#x} outside 32-bit space")
        if not self.static_base < self.heap_base < self.stack_top:
            raise ConfigurationError(
                "segments must be ordered static < heap < stack"
            )


#: The layout every workload uses unless an experiment overrides it.
DEFAULT_LAYOUT = AddressSpaceLayout()
