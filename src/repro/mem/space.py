"""The :class:`AddressSpace` facade that workloads program against.

Bundles one :class:`WordMemory` with the three segment allocators so a
workload reads like a small C program: allocate static tables, malloc and
free heap objects, push and pop stack frames, and do aligned word loads
and stores throughout.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.mem.allocator import HeapAllocator, StackAllocator, StaticAllocator
from repro.mem.layout import DEFAULT_LAYOUT, AddressSpaceLayout
from repro.mem.memory import WordMemory


class AddressSpace:
    """A complete simulated process address space.

    Parameters
    ----------
    record:
        Optional list receiving ``(op, byte_addr, value)`` trace tuples.
    layout:
        Segment base addresses; defaults to the Linux/x86-style layout
        that reproduces the paper's pointer value populations.
    sample_interval / sampler:
        Forwarded to :class:`WordMemory` for occurrence snapshots.
    """

    def __init__(
        self,
        record: Optional[List[Tuple[int, int, int]]] = None,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        sample_interval: int = 0,
        sampler: Optional[Callable[[WordMemory], None]] = None,
    ) -> None:
        self.layout = layout
        self.memory = WordMemory(
            record=record, sample_interval=sample_interval, sampler=sampler
        )
        self.static = StaticAllocator(self.memory, layout.static_base)
        self.heap = HeapAllocator(self.memory, layout.heap_base)
        self.stack = StackAllocator(self.memory, layout.stack_top)
        # Bind the hot methods once; workloads call these millions of times.
        self.load = self.memory.load
        self.store = self.memory.store

    # Convenience words ------------------------------------------------
    def store_block(self, base: int, values: List[int]) -> None:
        """Store consecutive words starting at ``base`` (traced)."""
        store = self.memory.store
        for offset, value in enumerate(values):
            store(base + offset * 4, value)

    def load_block(self, base: int, nwords: int) -> List[int]:
        """Load ``nwords`` consecutive words starting at ``base`` (traced)."""
        load = self.memory.load
        return [load(base + offset * 4) for offset in range(nwords)]
