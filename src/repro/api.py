"""``repro.api`` — the stable public facade.

Everything a downstream script needs, behind a handful of names that
are guaranteed not to move between releases:

* :func:`run_experiment` — run one paper experiment end to end;
* :func:`run_sweep` — run one declarative ``sweep/v1`` matrix and get
  its aggregated report (:class:`SweepResult`);
* :func:`describe_sweep` — a sweep's expansion/report shape, statically;
* :func:`simulate` — run one ``workload x cache-config`` simulation;
* :func:`profile_trace` — the paper's frequent-value profile of one
  workload trace;
* :func:`connect` — a client for a running simulation service;
* :func:`list_experiments` / :func:`list_sweeps` /
  :func:`list_workloads` — the catalogs.

Compatibility contract: names in ``__all__`` keep their signatures
(new parameters are keyword-only with defaults); payloads returned by
service calls carry ``schema`` tags and only change additively under
the same tag.  Deep imports (``repro.engine``, ``repro.fvc``, …)
remain possible but are *internal*: they may move without notice, and
the convenience re-exports on the top-level ``repro`` package are
deprecated in favour of this module (see ``docs/API.md``).

Example::

    from repro import api

    outcome = api.simulate("gcc", kind="fvc", fvc_entries=512)
    print(outcome.miss_rate)

    payload = api.run_experiment("fig13", fast=True)
    profile = api.profile_trace("gcc")

    sweep = api.run_sweep("l1_size_study", fast=True, jobs=4)
    print(sweep.to_csv())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "SimulationOutcome",
    "SweepResult",
    "connect",
    "describe_sweep",
    "list_experiments",
    "list_sweeps",
    "list_workloads",
    "profile_trace",
    "run_experiment",
    "run_sweep",
    "simulate",
]


def run_experiment(
    experiment_id: str,
    *,
    fast: bool = False,
    jobs: int = 1,
    checkpoint=None,
    store=None,
) -> Dict:
    """Run one registered experiment and return its payload dict.

    ``fast`` shrinks inputs for smoke runs; ``jobs`` fans decomposable
    experiments across worker processes (bit-identical to ``jobs=1``);
    ``checkpoint`` (a :class:`repro.engine.checkpoint.RunCheckpoint`)
    makes the run resumable.  Unknown ids raise
    :class:`repro.common.errors.ConfigurationError` naming the catalog.
    """
    from repro.experiments.registry import run_experiment as _run
    from repro.experiments.render import experiment_payload

    result = _run(
        experiment_id, store=store, fast=fast, jobs=jobs, checkpoint=checkpoint
    )
    return experiment_payload(result)


@dataclass(frozen=True)
class SimulationOutcome:
    """The stable result shape of :func:`simulate`.

    ``stats`` is the cache-counter snapshot
    (:meth:`repro.cache.stats.CacheStats.as_dict`); ``extras`` carries
    simulator-specific counters (FVC hit breakdown, 3C classes).
    """

    workload: str
    input_name: str
    kind: str
    stats: Dict[str, int]
    extras: Dict[str, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        """Trace references simulated."""
        if "accesses" in self.extras:
            return int(self.extras["accesses"])
        return int(
            self.stats.get("read_hits", 0)
            + self.stats.get("read_misses", 0)
            + self.stats.get("write_hits", 0)
            + self.stats.get("write_misses", 0)
        )

    @property
    def misses(self) -> int:
        return int(
            self.stats.get("read_misses", 0)
            + self.stats.get("write_misses", 0)
        )

    @property
    def miss_rate(self) -> float:
        """Overall miss rate; ``0.0`` for an empty trace."""
        accesses = self.accesses
        return self.misses / accesses if accesses else 0.0


def simulate(
    workload: str,
    *,
    input_name: str = "ref",
    kind: str = "baseline",
    size_bytes: int = 16 * 1024,
    line_bytes: int = 32,
    ways: int = 1,
    fvc_entries: int = 512,
    top_values: int = 7,
    store=None,
) -> SimulationOutcome:
    """Run one simulation cell and return its outcome.

    ``kind`` is ``"baseline"`` (direct-mapped, or set-associative when
    ``ways > 1``), ``"fvc"`` (DMC+FVC with ``fvc_entries`` entries over
    the top ``top_values`` frequent values), or ``"classify"`` (3C miss
    classification).  Deterministic: identical arguments produce
    identical outcomes in any process.
    """
    from repro.engine.cells import SimCell, run_cell

    cell = SimCell(
        workload=workload,
        input_name=input_name,
        kind=kind,
        size_bytes=size_bytes,
        line_bytes=line_bytes,
        ways=ways,
        fvc_entries=fvc_entries,
        top_values=top_values,
    )
    result = run_cell(cell, store)
    return SimulationOutcome(
        workload=workload,
        input_name=input_name,
        kind=kind,
        stats=dict(result.stats),
        extras=dict(result.extras),
    )


def profile_trace(
    workload: str,
    *,
    input_name: str = "ref",
    store=None,
):
    """The frequent-value access profile of one workload trace
    (:class:`repro.profiling.access.AccessProfile`) — the paper's
    characterisation primitive.  ``profile.top_values(n)`` gives the
    n most frequent values."""
    from repro.profiling.access import profile_accessed_values
    from repro.workloads.store import shared_store

    if store is None:
        store = shared_store
    return profile_accessed_values(store.get(workload, input_name))


def connect(
    url: Optional[str] = None,
    *,
    timeout: float = 30.0,
    retry=None,
    breaker=None,
):
    """A :class:`repro.service.client.ServiceClient` for the service at
    ``url`` (default: ``$REPRO_SERVICE_URL`` or the local default).
    Pass a :class:`repro.service.resilience.RetryPolicy` /
    :class:`~repro.service.resilience.CircuitBreaker` to opt into
    transient-failure retries and fail-fast breaking."""
    from repro.service.client import ServiceClient

    return ServiceClient(url, timeout=timeout, retry=retry, breaker=breaker)


@dataclass(frozen=True)
class SweepResult:
    """The stable result shape of :func:`run_sweep`.

    A thin view over the ``sweep.result/1`` payload: ``headers`` and
    ``rows`` are the aggregated report table, ``payload`` is the full
    canonical dict (what ``POST /v1/sweeps`` serves byte-identically).
    """

    name: str
    sweep_id: str
    result_key: str
    points: int
    distinct_cells: int
    headers: List[str]
    rows: List[Dict]
    payload: Dict = field(repr=False)

    def to_csv(self) -> str:
        """The report table as CSV text."""
        from repro.sweeps.report import render_csv

        return render_csv(self.headers, self.rows)

    def to_html(self) -> str:
        """The report table as a self-contained HTML page."""
        from repro.sweeps.report import render_html

        return render_html(self.name, self.headers, self.rows)


def _resolve_sweep(spec, fast: bool) -> Dict:
    """A normalised ``sweep/v1`` spec from a catalog name or raw dict.

    ``fast`` selects the shrunken variant of catalogued sweeps; explicit
    dict specs carry their own scale and ignore it.
    """
    from repro.sweeps.catalog import get_sweep
    from repro.sweeps.spec import normalise_sweep

    if isinstance(spec, str):
        return get_sweep(spec, fast=fast)
    return normalise_sweep(spec)


def run_sweep(
    spec,
    *,
    fast: bool = False,
    jobs: int = 1,
    store=None,
) -> SweepResult:
    """Run one declarative sweep and return its aggregated result.

    ``spec`` is a catalogued sweep name (see :func:`list_sweeps`) or a
    ``sweep/v1`` spec dict.  ``jobs`` fans the distinct cells across
    worker processes — payload bytes are identical for any ``jobs``
    value, and identical to what the service's ``POST /v1/sweeps``
    stores for the same spec.  Invalid specs raise
    :class:`repro.common.errors.ConfigurationError` naming ``sweep/v1``.
    """
    from repro.sweeps.runner import run_sweep as _run

    resolved = _resolve_sweep(spec, fast)
    payload = _run(resolved, store=store, jobs=jobs)
    return SweepResult(
        name=resolved["name"],
        sweep_id=payload["sweep_id"],
        result_key=payload["result_key"],
        points=payload["points"],
        distinct_cells=payload["distinct_cells"],
        headers=list(payload["headers"]),
        rows=list(payload["rows"]),
        payload=payload,
    )


def describe_sweep(spec, *, fast: bool = False) -> Dict:
    """A static description of one sweep — identity, axis sizes,
    expansion counts and report shape — without running anything.
    Accepts the same ``spec`` forms as :func:`run_sweep`."""
    from repro.sweeps.runner import describe_sweep as _describe

    return _describe(_resolve_sweep(spec, fast))


def list_sweeps() -> List[str]:
    """Every catalogued sweep name (the 16 ``fig*``/``table*`` paper
    studies plus the cross-cutting studies), sorted."""
    from repro.sweeps.catalog import sweep_names

    return sweep_names()


def list_experiments() -> List[str]:
    """Every registered experiment id, registry (paper) order."""
    from repro.experiments.registry import experiment_ids

    return experiment_ids()


def list_workloads() -> List[str]:
    """Every registered workload name."""
    from repro.workloads.registry import ALL_WORKLOADS

    return [workload.name for workload in ALL_WORKLOADS]
