"""Binary trace file formats.

Version 1 layout (little-endian):

====== ===========================================
offset contents
====== ===========================================
0      magic ``b"FVTR"``
4      u16 format version (currently 1)
6      u16 workload-name length ``W``
8      u16 input-name length ``I``
10     u16 reserved (zero)
12     u64 record count ``N``
20     u64 nominal instruction count
28     workload name (UTF-8, ``W`` bytes)
28+W   input name (UTF-8, ``I`` bytes)
...    N records of ``<B I I``: op, byte address, value
====== ===========================================

Files ending in ``.gz`` are gzip-compressed transparently.  A compact
delta/varint format (version 2) is provided by
:func:`write_trace_compact`; :func:`read_trace_any` reads either.
"""

from __future__ import annotations

import gzip
import os
import struct
from typing import BinaryIO, Tuple, Union

from repro.common.errors import TraceFormatError
from repro.trace.trace import Trace

_MAGIC = b"FVTR"
_VERSION = 1
_HEADER = struct.Struct("<4sHHHHQQ")
_RECORD = struct.Struct("<BII")
_CHUNK_RECORDS = 65536

PathLike = Union[str, "os.PathLike[str]"]


def _open(path: PathLike, mode: str) -> BinaryIO:
    if str(path).endswith(".gz"):
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def write_trace(trace: Trace, path: PathLike) -> None:
    """Serialise ``trace`` to ``path`` (gzip when the name ends in .gz)."""
    workload = trace.workload.encode("utf-8")
    input_name = trace.input_name.encode("utf-8")
    if len(workload) > 0xFFFF or len(input_name) > 0xFFFF:
        raise TraceFormatError("trace metadata names too long to serialise")
    with _open(path, "wb") as stream:
        stream.write(
            _HEADER.pack(
                _MAGIC,
                _VERSION,
                len(workload),
                len(input_name),
                0,
                len(trace.records),
                trace.instruction_count,
            )
        )
        stream.write(workload)
        stream.write(input_name)
        pack = _RECORD.pack
        buffer = bytearray()
        for record in trace.records:
            buffer += pack(*record)
            if len(buffer) >= _CHUNK_RECORDS * _RECORD.size:
                stream.write(buffer)
                buffer.clear()
        if buffer:
            stream.write(buffer)


def read_trace_header(path: PathLike) -> Tuple[int, str, str, int, int]:
    """Read just the header of a trace file (either version).

    Returns ``(version, workload, input_name, record_count,
    instruction_count)`` without materialising the payload — used by the
    engine's trace cache to list entries cheaply.
    """
    with _open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, version, wlen, ilen, _, count, instructions = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        names = stream.read(wlen + ilen)
        if len(names) < wlen + ilen:
            raise TraceFormatError(f"{path}: truncated metadata")
        workload = names[:wlen].decode("utf-8")
        input_name = names[wlen:].decode("utf-8")
    return version, workload, input_name, count, instructions


def read_trace(path: PathLike) -> Trace:
    """Load a trace previously written by :func:`write_trace`."""
    with _open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, version, wlen, ilen, _, count, instructions = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        if version != _VERSION:
            raise TraceFormatError(f"{path}: unsupported version {version}")
        workload = stream.read(wlen).decode("utf-8")
        input_name = stream.read(ilen).decode("utf-8")
        payload = stream.read()
    expected = count * _RECORD.size
    if len(payload) != expected:
        raise TraceFormatError(
            f"{path}: expected {expected} record bytes, found {len(payload)}"
        )
    records = [tuple(fields) for fields in _RECORD.iter_unpack(payload)]
    return Trace(
        records,  # type: ignore[arg-type]
        workload=workload,
        input_name=input_name,
        instruction_count=instructions,
    )


# ----------------------------------------------------------------------
# Compact format (version 2): zig-zag varint deltas
# ----------------------------------------------------------------------
#
# Trace addresses are overwhelmingly near their predecessors and values
# are overwhelmingly small, so delta/varint coding shrinks trace files
# by roughly 3-4x versus the fixed 9-byte records of version 1.  Each
# record is:
#
#   u8 op | varint zigzag(word_address - previous_word_address) | varint value
#
# preceded by the same header with version = 2.

_COMPACT_VERSION = 2


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if value & 1 == 0 else -((value + 1) >> 1)


def _write_varint(buffer: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def trace_to_compact_bytes(trace: Trace) -> bytes:
    """The delta/varint (version 2) serialisation of ``trace`` as
    bytes — what the enveloped trace-cache entries embed."""
    workload = trace.workload.encode("utf-8")
    input_name = trace.input_name.encode("utf-8")
    out = bytearray(
        _HEADER.pack(
            _MAGIC,
            _COMPACT_VERSION,
            len(workload),
            len(input_name),
            0,
            len(trace.records),
            trace.instruction_count,
        )
    )
    out += workload
    out += input_name
    previous_word = 0
    for op, address, value in trace.records:
        word = address >> 2
        out.append(op)
        _write_varint(out, _zigzag(word - previous_word))
        _write_varint(out, value)
        previous_word = word
    return bytes(out)


def write_trace_compact(trace: Trace, path: PathLike) -> None:
    """Serialise ``trace`` in the delta/varint format (version 2)."""
    with _open(path, "wb") as stream:
        stream.write(trace_to_compact_bytes(trace))


def trace_header_from_bytes(
    data: bytes, source: str = "trace"
) -> Tuple[int, str, str, int, int]:
    """Parse just the header out of in-memory trace bytes.

    Returns ``(version, workload, input_name, record_count,
    instruction_count)`` — the bytes-level sibling of
    :func:`read_trace_header`.
    """
    if len(data) < _HEADER.size:
        raise TraceFormatError(f"{source}: truncated header")
    magic, version, wlen, ilen, _, count, instructions = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise TraceFormatError(f"{source}: bad magic {magic!r}")
    names = data[_HEADER.size : _HEADER.size + wlen + ilen]
    if len(names) < wlen + ilen:
        raise TraceFormatError(f"{source}: truncated metadata")
    workload = names[:wlen].decode("utf-8")
    input_name = names[wlen:].decode("utf-8")
    return version, workload, input_name, count, instructions


def trace_from_bytes(data: bytes, source: str = "trace") -> Trace:
    """Materialise a trace from in-memory bytes in either format."""
    version, workload, input_name, count, instructions = trace_header_from_bytes(
        data, source
    )
    offset = (
        _HEADER.size
        + len(workload.encode("utf-8"))
        + len(input_name.encode("utf-8"))
    )
    payload = data[offset:]
    if version == _VERSION:
        expected = count * _RECORD.size
        if len(payload) != expected:
            raise TraceFormatError(
                f"{source}: expected {expected} record bytes, "
                f"found {len(payload)}"
            )
        records = [tuple(fields) for fields in _RECORD.iter_unpack(payload)]
    elif version == _COMPACT_VERSION:
        records = []
        cursor = 0
        previous_word = 0
        try:
            for _ in range(count):
                op = payload[cursor]
                cursor += 1
                delta, cursor = _read_varint(payload, cursor)
                value, cursor = _read_varint(payload, cursor)
                previous_word += _unzigzag(delta)
                records.append((op, previous_word << 2, value))
        except IndexError:
            raise TraceFormatError(
                f"{source}: truncated compact payload"
            ) from None
    else:
        raise TraceFormatError(f"{source}: unsupported version {version}")
    return Trace(
        records,  # type: ignore[arg-type]
        workload=workload,
        input_name=input_name,
        instruction_count=instructions,
    )


def read_trace_any(path: PathLike) -> Trace:
    """Load a trace in either format (dispatch on the header version)."""
    with _open(path, "rb") as stream:
        data = stream.read()
    return trace_from_bytes(data, source=str(path))
