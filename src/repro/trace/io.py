"""Binary trace file formats.

Version 1 layout (little-endian):

====== ===========================================
offset contents
====== ===========================================
0      magic ``b"FVTR"``
4      u16 format version (currently 1)
6      u16 workload-name length ``W``
8      u16 input-name length ``I``
10     u16 reserved (zero)
12     u64 record count ``N``
20     u64 nominal instruction count
28     workload name (UTF-8, ``W`` bytes)
28+W   input name (UTF-8, ``I`` bytes)
...    N records of ``<B I I``: op, byte address, value
====== ===========================================

Files ending in ``.gz`` are gzip-compressed transparently.  A compact
delta/varint format (version 2) is provided by
:func:`write_trace_compact`, and a columnar binary format (version 3,
``.trcb``) by :func:`write_trace_columnar`; :func:`read_trace_any`
reads all three.
"""

from __future__ import annotations

import gzip
import os
import struct
import zlib
from typing import BinaryIO, Iterator, Tuple, Union

from repro.common.errors import TraceFormatError
from repro.trace.trace import Trace

_MAGIC = b"FVTR"
_VERSION = 1
_HEADER = struct.Struct("<4sHHHHQQ")
_RECORD = struct.Struct("<BII")
_CHUNK_RECORDS = 65536

PathLike = Union[str, "os.PathLike[str]"]


def _open(path: PathLike, mode: str) -> BinaryIO:
    if str(path).endswith(".gz"):
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def write_trace(trace: Trace, path: PathLike) -> None:
    """Serialise ``trace`` to ``path`` (gzip when the name ends in .gz)."""
    workload = trace.workload.encode("utf-8")
    input_name = trace.input_name.encode("utf-8")
    if len(workload) > 0xFFFF or len(input_name) > 0xFFFF:
        raise TraceFormatError("trace metadata names too long to serialise")
    with _open(path, "wb") as stream:
        stream.write(
            _HEADER.pack(
                _MAGIC,
                _VERSION,
                len(workload),
                len(input_name),
                0,
                len(trace.records),
                trace.instruction_count,
            )
        )
        stream.write(workload)
        stream.write(input_name)
        pack = _RECORD.pack
        buffer = bytearray()
        for record in trace.records:
            buffer += pack(*record)
            if len(buffer) >= _CHUNK_RECORDS * _RECORD.size:
                stream.write(buffer)
                buffer.clear()
        if buffer:
            stream.write(buffer)


def read_trace_header(path: PathLike) -> Tuple[int, str, str, int, int]:
    """Read just the header of a trace file (either version).

    Returns ``(version, workload, input_name, record_count,
    instruction_count)`` without materialising the payload — used by the
    engine's trace cache to list entries cheaply.
    """
    with _open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        if header[:4] == _COLUMNAR_MAGIC:
            header += stream.read(_COLUMNAR_HEADER.size - len(header))
            if len(header) < _COLUMNAR_HEADER.size:
                raise TraceFormatError(f"{path}: truncated header")
            magic, version, wlen, ilen, _, count, instructions = (
                _COLUMNAR_HEADER.unpack(header)[:7]
            )
        else:
            magic, version, wlen, ilen, _, count, instructions = (
                _HEADER.unpack(header)
            )
            if magic != _MAGIC:
                raise TraceFormatError(f"{path}: bad magic {magic!r}")
        names = stream.read(wlen + ilen)
        if len(names) < wlen + ilen:
            raise TraceFormatError(f"{path}: truncated metadata")
        workload = names[:wlen].decode("utf-8")
        input_name = names[wlen:].decode("utf-8")
    return version, workload, input_name, count, instructions


def read_trace(path: PathLike) -> Trace:
    """Load a trace previously written by :func:`write_trace`."""
    with _open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, version, wlen, ilen, _, count, instructions = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        if version != _VERSION:
            raise TraceFormatError(f"{path}: unsupported version {version}")
        workload = stream.read(wlen).decode("utf-8")
        input_name = stream.read(ilen).decode("utf-8")
        payload = stream.read()
    expected = count * _RECORD.size
    if len(payload) != expected:
        raise TraceFormatError(
            f"{path}: expected {expected} record bytes, found {len(payload)}"
        )
    records = [tuple(fields) for fields in _RECORD.iter_unpack(payload)]
    return Trace(
        records,  # type: ignore[arg-type]
        workload=workload,
        input_name=input_name,
        instruction_count=instructions,
    )


# ----------------------------------------------------------------------
# Compact format (version 2): zig-zag varint deltas
# ----------------------------------------------------------------------
#
# Trace addresses are overwhelmingly near their predecessors and values
# are overwhelmingly small, so delta/varint coding shrinks trace files
# by roughly 3-4x versus the fixed 9-byte records of version 1.  Each
# record is:
#
#   u8 op | varint zigzag(word_address - previous_word_address) | varint value
#
# preceded by the same header with version = 2.

_COMPACT_VERSION = 2


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if value & 1 == 0 else -((value + 1) >> 1)


def _write_varint(buffer: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


#: Flush threshold for streamed writers — bounds writer memory at a
#: fixed block size regardless of trace length.
_CHUNK_BYTES = _CHUNK_RECORDS * _RECORD.size


def _compact_chunks(trace: Trace) -> Iterator[bytes]:
    """The delta/varint (version 2) serialisation as bounded chunks.

    One shared generator backs both the in-memory and the streamed
    writers, so the two can never drift: the file is the concatenation
    of these chunks either way.
    """
    workload = trace.workload.encode("utf-8")
    input_name = trace.input_name.encode("utf-8")
    if len(workload) > 0xFFFF or len(input_name) > 0xFFFF:
        raise TraceFormatError("trace metadata names too long to serialise")
    yield _HEADER.pack(
        _MAGIC,
        _COMPACT_VERSION,
        len(workload),
        len(input_name),
        0,
        len(trace.records),
        trace.instruction_count,
    ) + workload + input_name
    buffer = bytearray()
    previous_word = 0
    for op, address, value in trace.records:
        word = address >> 2
        buffer.append(op)
        _write_varint(buffer, _zigzag(word - previous_word))
        _write_varint(buffer, value)
        previous_word = word
        if len(buffer) >= _CHUNK_BYTES:
            yield bytes(buffer)
            buffer.clear()
    if buffer:
        yield bytes(buffer)


def trace_to_compact_bytes(trace: Trace) -> bytes:
    """The delta/varint (version 2) serialisation of ``trace`` as
    bytes — what the enveloped trace-cache entries embed."""
    return b"".join(_compact_chunks(trace))


def write_trace_compact(trace: Trace, path: PathLike) -> None:
    """Serialise ``trace`` in the delta/varint format (version 2),
    streaming fixed-size blocks so writer memory stays bounded for
    arbitrarily long traces (it previously materialised the whole
    serialisation before the first byte reached the file)."""
    with _open(path, "wb") as stream:
        for chunk in _compact_chunks(trace):
            stream.write(chunk)


# ----------------------------------------------------------------------
# Columnar format (version 3): packed little-endian column arrays
# ----------------------------------------------------------------------
#
# The row formats above serialise records interleaved, so every reader
# pays per-record dispatch to get them back.  The columnar format packs
# the three fields as contiguous little-endian arrays instead — the
# exact layout the vectorized kernels (:mod:`repro.kernels`) consume —
# with fixed, computable section offsets so a reader can memory-map a
# column without touching the others:
#
# ====== ==========================================================
# offset contents
# ====== ==========================================================
# 0      magic ``b"FVTC"``
# 4      u16 format version (3)
# 6      u16 workload-name length ``W``
# 8      u16 input-name length ``I``
# 10     u16 reserved (zero)
# 12     u64 record count ``N``
# 20     u64 nominal instruction count
# 28     u32 crc32 of the op column bytes
# 32     u32 crc32 of the address column bytes
# 36     u32 crc32 of the value column bytes
# 40     workload name, input name (UTF-8)
# ...    zero padding to the next 8-byte boundary
#        op column: ``N x u8``, zero-padded to 8 bytes
#        address column: ``N x u32``, zero-padded to 8 bytes
#        value column: ``N x u32``
# ====== ==========================================================
#
# Checksums are per column so corruption reports name the damaged
# section.  Readers and writers use numpy when it is importable and
# fall back to the stdlib ``array``/``struct`` modules otherwise — the
# format carries no numpy dependency.

_COLUMNAR_MAGIC = b"FVTC"
_COLUMNAR_VERSION = 3
_COLUMNAR_HEADER = struct.Struct("<4sHHHHQQIII")

#: Conventional file suffix for columnar trace files.
COLUMNAR_SUFFIX = ".trcb"


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def columnar_layout(
    record_count: int, workload_bytes: int, input_bytes: int
) -> Tuple[int, int, int, int]:
    """Column section offsets ``(ops, addrs, values, total)`` for a
    columnar file — fixed arithmetic over the header fields, which is
    what makes the columns memory-mappable."""
    names_end = _COLUMNAR_HEADER.size + workload_bytes + input_bytes
    ops_offset = _align8(names_end)
    addrs_offset = _align8(ops_offset + record_count)
    values_offset = _align8(addrs_offset + 4 * record_count)
    return ops_offset, addrs_offset, values_offset, values_offset + 4 * record_count


def _columnar_column_bytes(trace: Trace) -> Tuple[bytes, bytes, bytes]:
    """The three packed column byte strings for ``trace``."""
    records = trace.records
    count = len(records)
    numpy = None
    try:
        import numpy
    except ImportError:
        pass
    if numpy is not None:
        try:
            flat = numpy.fromiter(
                (field for record in records for field in record),
                dtype=numpy.int64,
                count=3 * count,
            ).reshape(count, 3)
        except (OverflowError, ValueError) as exc:
            raise TraceFormatError(
                f"trace records outside the columnar domain: {exc}"
            ) from None
        ops = flat[:, 0]
        addrs = flat[:, 1]
        values = flat[:, 2]
        if count and (
            ops.min() < 0
            or ops.max() > 0xFF
            or addrs.min() < 0
            or addrs.max() > 0xFFFFFFFF
            or values.min() < 0
            or values.max() > 0xFFFFFFFF
        ):
            raise TraceFormatError(
                "trace records outside the columnar domain "
                "(op u8, address/value u32)"
            )
        return (
            ops.astype("<u1").tobytes(),
            addrs.astype("<u4").tobytes(),
            values.astype("<u4").tobytes(),
        )
    ops_buffer = bytearray()
    addrs_buffer = bytearray()
    values_buffer = bytearray()
    pack_u32 = struct.Struct("<I").pack
    try:
        for op, address, value in records:
            ops_buffer.append(op)
            addrs_buffer += pack_u32(address)
            values_buffer += pack_u32(value)
    except (ValueError, struct.error) as exc:
        raise TraceFormatError(
            f"trace records outside the columnar domain: {exc}"
        ) from None
    return bytes(ops_buffer), bytes(addrs_buffer), bytes(values_buffer)


def trace_to_columnar_bytes(trace: Trace) -> bytes:
    """The columnar (version 3) serialisation of ``trace`` as bytes."""
    workload = trace.workload.encode("utf-8")
    input_name = trace.input_name.encode("utf-8")
    if len(workload) > 0xFFFF or len(input_name) > 0xFFFF:
        raise TraceFormatError("trace metadata names too long to serialise")
    count = len(trace.records)
    ops, addrs, values = _columnar_column_bytes(trace)
    ops_offset, addrs_offset, values_offset, total = columnar_layout(
        count, len(workload), len(input_name)
    )
    out = bytearray(total)
    _COLUMNAR_HEADER.pack_into(
        out,
        0,
        _COLUMNAR_MAGIC,
        _COLUMNAR_VERSION,
        len(workload),
        len(input_name),
        0,
        count,
        trace.instruction_count,
        zlib.crc32(ops),
        zlib.crc32(addrs),
        zlib.crc32(values),
    )
    names_offset = _COLUMNAR_HEADER.size
    out[names_offset : names_offset + len(workload)] = workload
    input_offset = names_offset + len(workload)
    out[input_offset : input_offset + len(input_name)] = input_name
    out[ops_offset : ops_offset + count] = ops
    out[addrs_offset : addrs_offset + 4 * count] = addrs
    out[values_offset : values_offset + 4 * count] = values
    return bytes(out)


def write_trace_columnar(trace: Trace, path: PathLike) -> None:
    """Serialise ``trace`` in the columnar format (version 3,
    ``.trcb``), streaming the sections in fixed-size blocks."""
    data = trace_to_columnar_bytes(trace)
    with _open(path, "wb") as stream:
        view = memoryview(data)
        for start in range(0, len(view), _CHUNK_BYTES):
            stream.write(view[start : start + _CHUNK_BYTES])


def _records_from_columns(
    ops: bytes, addrs: bytes, values: bytes, count: int
):
    """Rebuild ``(op, address, value)`` tuples from packed columns."""
    numpy = None
    try:
        import numpy
    except ImportError:
        pass
    if numpy is not None:
        return list(
            zip(
                numpy.frombuffer(ops, dtype="<u1").tolist(),
                numpy.frombuffer(addrs, dtype="<u4").tolist(),
                numpy.frombuffer(values, dtype="<u4").tolist(),
            )
        )
    from array import array

    def _u32_list(data: bytes):
        typed = array("I")
        if typed.itemsize == 4:
            typed.frombytes(data)
            import sys

            if sys.byteorder == "big":
                typed.byteswap()
            return typed.tolist()
        return list(struct.unpack(f"<{count}I", data))

    return list(zip(ops, _u32_list(addrs), _u32_list(values)))


def _columnar_trace_from_bytes(data: bytes, source: str) -> Trace:
    """Materialise a trace from columnar (version 3) bytes."""
    (
        _magic,
        version,
        wlen,
        ilen,
        _,
        count,
        instructions,
        ops_crc,
        addrs_crc,
        values_crc,
    ) = _COLUMNAR_HEADER.unpack_from(data)
    if version != _COLUMNAR_VERSION:
        raise TraceFormatError(f"{source}: unsupported version {version}")
    ops_offset, addrs_offset, values_offset, total = columnar_layout(
        count, wlen, ilen
    )
    if len(data) != total:
        raise TraceFormatError(
            f"{source}: expected {total} bytes, found {len(data)}"
        )
    names = data[_COLUMNAR_HEADER.size : _COLUMNAR_HEADER.size + wlen + ilen]
    workload = names[:wlen].decode("utf-8")
    input_name = names[wlen:].decode("utf-8")
    ops = data[ops_offset : ops_offset + count]
    addrs = data[addrs_offset : addrs_offset + 4 * count]
    values = data[values_offset : values_offset + 4 * count]
    for label, column, expected in (
        ("op", ops, ops_crc),
        ("address", addrs, addrs_crc),
        ("value", values, values_crc),
    ):
        if zlib.crc32(column) != expected:
            raise TraceFormatError(
                f"{source}: {label} column checksum mismatch"
            )
    return Trace(
        _records_from_columns(ops, addrs, values, count),
        workload=workload,
        input_name=input_name,
        instruction_count=instructions,
    )


def read_trace_columnar(path: PathLike) -> Trace:
    """Load a trace previously written by :func:`write_trace_columnar`."""
    with _open(path, "rb") as stream:
        data = stream.read()
    if data[:4] != _COLUMNAR_MAGIC:
        raise TraceFormatError(f"{path}: bad magic {data[:4]!r}")
    return _columnar_trace_from_bytes(data, source=str(path))


def trace_header_from_bytes(
    data: bytes, source: str = "trace"
) -> Tuple[int, str, str, int, int]:
    """Parse just the header out of in-memory trace bytes (row or
    columnar magic).

    Returns ``(version, workload, input_name, record_count,
    instruction_count)`` — the bytes-level sibling of
    :func:`read_trace_header`.
    """
    if len(data) < _HEADER.size:
        raise TraceFormatError(f"{source}: truncated header")
    if data[:4] == _COLUMNAR_MAGIC:
        if len(data) < _COLUMNAR_HEADER.size:
            raise TraceFormatError(f"{source}: truncated header")
        magic, version, wlen, ilen, _, count, instructions = (
            _COLUMNAR_HEADER.unpack_from(data)[:7]
        )
        names_offset = _COLUMNAR_HEADER.size
    else:
        magic, version, wlen, ilen, _, count, instructions = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise TraceFormatError(f"{source}: bad magic {magic!r}")
        names_offset = _HEADER.size
    names = data[names_offset : names_offset + wlen + ilen]
    if len(names) < wlen + ilen:
        raise TraceFormatError(f"{source}: truncated metadata")
    workload = names[:wlen].decode("utf-8")
    input_name = names[wlen:].decode("utf-8")
    return version, workload, input_name, count, instructions


def trace_from_bytes(data: bytes, source: str = "trace") -> Trace:
    """Materialise a trace from in-memory bytes in any format."""
    if data[:4] == _COLUMNAR_MAGIC:
        if len(data) < _COLUMNAR_HEADER.size:
            raise TraceFormatError(f"{source}: truncated header")
        return _columnar_trace_from_bytes(data, source)
    version, workload, input_name, count, instructions = trace_header_from_bytes(
        data, source
    )
    offset = (
        _HEADER.size
        + len(workload.encode("utf-8"))
        + len(input_name.encode("utf-8"))
    )
    payload = data[offset:]
    if version == _VERSION:
        expected = count * _RECORD.size
        if len(payload) != expected:
            raise TraceFormatError(
                f"{source}: expected {expected} record bytes, "
                f"found {len(payload)}"
            )
        records = [tuple(fields) for fields in _RECORD.iter_unpack(payload)]
    elif version == _COMPACT_VERSION:
        records = []
        cursor = 0
        previous_word = 0
        try:
            for _ in range(count):
                op = payload[cursor]
                cursor += 1
                delta, cursor = _read_varint(payload, cursor)
                value, cursor = _read_varint(payload, cursor)
                previous_word += _unzigzag(delta)
                records.append((op, previous_word << 2, value))
        except IndexError:
            raise TraceFormatError(
                f"{source}: truncated compact payload"
            ) from None
    else:
        raise TraceFormatError(f"{source}: unsupported version {version}")
    return Trace(
        records,  # type: ignore[arg-type]
        workload=workload,
        input_name=input_name,
        instruction_count=instructions,
    )


def read_trace_any(path: PathLike) -> Trace:
    """Load a trace in any format (dispatch on the header magic and
    version: v1 rows, v2 compact, v3 columnar)."""
    with _open(path, "rb") as stream:
        data = stream.read()
    return trace_from_bytes(data, source=str(path))
