"""The trace record format.

A record is the tuple ``(op, byte_address, value)`` with ``op`` 0 for a
load and 1 for a store.  Plain tuples (rather than a class) keep trace
replay fast; :class:`Access` offers a named view for code that prefers
readability over speed (tests, examples, pretty-printing).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.mem.memory import LOAD, STORE

__all__ = ["LOAD", "STORE", "Access"]


class Access(NamedTuple):
    """Named view of one trace record.

    ``Access(*record)`` adapts a raw tuple; being a ``NamedTuple`` it
    compares equal to the raw form, so the two representations mix freely.
    """

    op: int
    address: int
    value: int

    @property
    def is_load(self) -> bool:
        """True for a load (read) access."""
        return self.op == LOAD

    @property
    def is_store(self) -> bool:
        """True for a store (write) access."""
        return self.op == STORE

    def __str__(self) -> str:
        kind = "LD" if self.op == LOAD else "ST"
        return f"{kind} {self.address:#010x} = {self.value:#010x}"
