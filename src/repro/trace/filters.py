"""Trace filtering and windowing utilities."""

from __future__ import annotations

from typing import Iterator, List

from repro.mem.memory import LOAD, STORE
from repro.trace.trace import Trace


def _derived(trace: Trace, records: List) -> Trace:
    return Trace(records, workload=trace.workload, input_name=trace.input_name)


def filter_loads(trace: Trace) -> Trace:
    """A new trace holding only the load records."""
    return _derived(trace, [r for r in trace.records if r[0] == LOAD])


def filter_stores(trace: Trace) -> Trace:
    """A new trace holding only the store records."""
    return _derived(trace, [r for r in trace.records if r[0] == STORE])


def filter_address_range(trace: Trace, low: int, high: int) -> Trace:
    """Records whose byte address lies in ``[low, high)``."""
    if low > high:
        raise ValueError(f"empty address range [{low:#x}, {high:#x})")
    return _derived(
        trace, [r for r in trace.records if low <= r[1] < high]
    )


def sample_every(trace: Trace, interval: int) -> Trace:
    """Every ``interval``-th record, starting with the first."""
    if interval <= 0:
        raise ValueError("sampling interval must be positive")
    return _derived(trace, trace.records[::interval])


def split_windows(trace: Trace, window: int) -> Iterator[Trace]:
    """Split into consecutive windows of ``window`` records.

    The final window may be shorter.  Used by the timeline profiler
    (Fig. 3) to measure coverage per execution interval.
    """
    if window <= 0:
        raise ValueError("window size must be positive")
    records = trace.records
    for start in range(0, len(records), window):
        yield _derived(trace, records[start : start + window])
