"""Memory-reference traces: records, containers, file I/O, statistics.

A trace is the interface between the workload substrate and everything
else: profilers measure frequent value locality on it, and the cache
simulators replay it.  The in-memory representation is a plain list of
``(op, byte_address, value)`` tuples for replay speed; :class:`Trace`
wraps that list with metadata and analysis helpers.
"""

from repro.trace.record import LOAD, STORE, Access
from repro.trace.trace import Trace
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.io import (
    read_trace,
    read_trace_any,
    write_trace,
    write_trace_compact,
)
from repro.trace.synth import (
    cyclic_trace,
    ping_pong_trace,
    streaming_trace,
    uniform_trace,
    zipf_value_trace,
)
from repro.trace.filters import (
    filter_loads,
    filter_stores,
    filter_address_range,
    sample_every,
    split_windows,
)

__all__ = [
    "LOAD",
    "STORE",
    "Access",
    "Trace",
    "TraceStats",
    "compute_stats",
    "read_trace",
    "read_trace_any",
    "write_trace",
    "write_trace_compact",
    "filter_loads",
    "filter_stores",
    "filter_address_range",
    "sample_every",
    "split_windows",
    "cyclic_trace",
    "ping_pong_trace",
    "streaming_trace",
    "uniform_trace",
    "zipf_value_trace",
]
