"""Synthetic trace generators for controlled studies and testing.

The analog workloads produce realistic traces; these generators produce
*controlled* ones — a single behaviour per generator — so cache and FVC
properties can be studied (and unit-tested) in isolation:

* :func:`uniform_trace` — uniformly random addresses/values (worst case
  for every locality mechanism);
* :func:`zipf_value_trace` — controllable frequent value locality with
  no particular address pattern;
* :func:`ping_pong_trace` — two line sets aliasing in a chosen
  direct-mapped geometry (pure conflict misses);
* :func:`streaming_trace` — a single sequential sweep (pure compulsory
  misses);
* :func:`cyclic_trace` — a working set cycled repeatedly (pure capacity
  misses once it exceeds the cache).

All generators are deterministic in their ``seed`` and produce
*replayable* traces (loads return the last stored value, or zero).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.rng import make_rng
from repro.trace.trace import Trace


class _Builder:
    """Tracks memory state so generated loads are replay-consistent."""

    def __init__(self) -> None:
        self._state: Dict[int, int] = {}
        self.records: List = []

    def store(self, address: int, value: int) -> None:
        self._state[address] = value & 0xFFFFFFFF
        self.records.append((1, address, value & 0xFFFFFFFF))

    def load(self, address: int) -> None:
        self.records.append((0, address, self._state.get(address, 0)))

    def build(self, name: str) -> Trace:
        return Trace(self.records, workload=f"synth:{name}")


def uniform_trace(
    accesses: int, footprint_words: int = 4096, store_fraction: float = 0.3,
    seed: int = 0,
) -> Trace:
    """Uniformly random addresses and values."""
    rng = make_rng("synth-uniform", seed)
    builder = _Builder()
    for _ in range(accesses):
        address = rng.randrange(footprint_words) * 4
        if rng.random() < store_fraction:
            builder.store(address, rng.randrange(1 << 32))
        else:
            builder.load(address)
    return builder.build("uniform")


def zipf_value_trace(
    accesses: int,
    footprint_words: int = 4096,
    values: Sequence[int] = (0, 1, 0xFFFFFFFF),
    frequent_fraction: float = 0.5,
    seed: int = 0,
) -> Trace:
    """Stores draw from ``values`` with probability
    ``frequent_fraction`` (else random) — tunable value locality."""
    rng = make_rng("synth-zipf", seed)
    builder = _Builder()
    for _ in range(accesses):
        address = rng.randrange(footprint_words) * 4
        if rng.random() < 0.5:
            if rng.random() < frequent_fraction:
                builder.store(address, rng.choice(list(values)))
            else:
                builder.store(address, rng.randrange(1 << 32))
        else:
            builder.load(address)
    return builder.build("zipf")


def ping_pong_trace(
    iterations: int,
    geometry_size_bytes: int = 16 * 1024,
    line_bytes: int = 32,
    value: int = 0,
) -> Trace:
    """Alternate two lines that alias in the given direct-mapped
    geometry — every access after warm-up is a conflict miss."""
    builder = _Builder()
    base_a = 0x100000
    base_b = base_a + geometry_size_bytes  # same index, different tag
    words = line_bytes // 4
    for address in (base_a, base_b):
        for word in range(words):
            builder.store(address + word * 4, value)
    for _ in range(iterations):
        builder.load(base_a)
        builder.load(base_b)
    return builder.build("ping-pong")


def streaming_trace(
    words: int, value_of=lambda index: index & 0xFFFFFFFF
) -> Trace:
    """Write then read one sequential sweep (compulsory misses only)."""
    builder = _Builder()
    base = 0x200000
    for index in range(words):
        builder.store(base + index * 4, value_of(index))
    for index in range(words):
        builder.load(base + index * 4)
    return builder.build("streaming")


def cyclic_trace(
    working_set_words: int, passes: int, value: int = 0
) -> Trace:
    """Cycle a fixed working set; exceeds-cache sizes give pure
    capacity misses (the FVC's compressed-capacity target)."""
    builder = _Builder()
    base = 0x300000
    for index in range(working_set_words):
        builder.store(base + index * 4, value)
    for _ in range(passes):
        for index in range(working_set_words):
            builder.load(base + index * 4)
    return builder.build("cyclic")
