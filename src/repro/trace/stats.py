"""Summary statistics over a trace."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Tuple

from repro.mem.memory import LOAD
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStats:
    """One-pass summary of a trace.

    ``top_values`` holds the most frequently *accessed* values with their
    access counts, mirroring the headline measurement of the paper's §2.
    """

    accesses: int
    loads: int
    stores: int
    footprint_words: int
    footprint_bytes: int
    distinct_values: int
    top_values: Tuple[Tuple[int, int], ...]

    @property
    def load_fraction(self) -> float:
        """Fraction of accesses that are loads."""
        return self.loads / self.accesses if self.accesses else 0.0

    def top_value_access_fraction(self, k: int) -> float:
        """Fraction of all accesses involving the top ``k`` values."""
        if not self.accesses:
            return 0.0
        covered = sum(count for _, count in self.top_values[:k])
        return covered / self.accesses

    def format(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"accesses        : {self.accesses}",
            f"  loads         : {self.loads} ({100 * self.load_fraction:.1f}%)",
            f"  stores        : {self.stores}",
            f"footprint       : {self.footprint_words} words"
            f" ({self.footprint_bytes / 1024:.1f} KB)",
            f"distinct values : {self.distinct_values}",
            "top accessed values:",
        ]
        for rank, (value, count) in enumerate(self.top_values, start=1):
            share = 100 * count / self.accesses if self.accesses else 0.0
            lines.append(f"  {rank:2d}. {value:>10x}  {count:>9} ({share:.1f}%)")
        return "\n".join(lines)


def compute_stats(trace: Trace, top_k: int = 10) -> TraceStats:
    """Compute :class:`TraceStats` in a single pass over ``trace``."""
    loads = 0
    addresses = set()
    value_counts: Counter = Counter()
    for op, address, value in trace.records:
        if op == LOAD:
            loads += 1
        addresses.add(address)
        value_counts[value] += 1
    top: List[Tuple[int, int]] = value_counts.most_common(top_k)
    return TraceStats(
        accesses=len(trace.records),
        loads=loads,
        stores=len(trace.records) - loads,
        footprint_words=len(addresses),
        footprint_bytes=len(addresses) * 4,
        distinct_values=len(value_counts),
        top_values=tuple(top),
    )
