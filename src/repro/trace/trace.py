"""The :class:`Trace` container."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.mem.memory import LOAD, STORE
from repro.trace.record import Access

Record = Tuple[int, int, int]


class Trace:
    """An ordered sequence of memory accesses plus provenance metadata.

    The records live in a plain list so simulators can iterate the raw
    tuples at full speed via :attr:`records`; the class-level API offers
    named access for analysis code.
    """

    __slots__ = (
        "records",
        "workload",
        "input_name",
        "instruction_count",
        "_aggregates",
    )

    def __init__(
        self,
        records: Optional[Sequence[Record]] = None,
        workload: str = "",
        input_name: str = "",
        instruction_count: int = 0,
    ) -> None:
        self.records: List[Record] = list(records) if records is not None else []
        self.workload = workload
        self.input_name = input_name
        # Workloads report a nominal instruction count (>= access count);
        # the stability study (Table 3) reports percentages of it.
        self.instruction_count = instruction_count or len(self.records)
        # O(n) aggregates (load/store counts, footprint, distinct values)
        # memoised here; :meth:`append`/:meth:`extend` invalidate.  Code
        # mutating :attr:`records` directly bypasses the memo and must
        # call :meth:`invalidate_aggregates` itself.
        self._aggregates: dict = {}

    # Container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(
                self.records[index],
                workload=self.workload,
                input_name=self.input_name,
            )
        return self.records[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Trace) and self.records == other.records

    def __repr__(self) -> str:
        source = self.workload or "<anonymous>"
        return f"Trace({source}/{self.input_name or '-'}, {len(self.records)} accesses)"

    # Named access ---------------------------------------------------------
    def accesses(self) -> Iterator[Access]:
        """Iterate records as :class:`Access` named tuples."""
        return (Access(*record) for record in self.records)

    def append(self, op: int, address: int, value: int) -> None:
        """Append one record (used by trace builders and tests)."""
        self.records.append((op, address, value))
        self._aggregates.clear()

    def extend(self, records: Iterable[Record]) -> None:
        """Append many records."""
        self.records.extend(records)
        self._aggregates.clear()

    def invalidate_aggregates(self) -> None:
        """Drop memoised aggregates after direct ``records`` mutation."""
        self._aggregates.clear()

    def memo(self, key: str, compute):
        """Memoise ``compute(self)`` on the trace, keyed by ``key``.

        For derived values that are pure functions of the records (e.g.
        access-value profiles).  The entry lives exactly as long as the
        trace and is dropped when :meth:`append`/:meth:`extend` mutate
        it — unlike an external ``id()``-keyed table, which can hand a
        recycled id another trace's result.
        """
        cached = self._aggregates.get(key)
        if cached is None:
            cached = compute(self)
            self._aggregates[key] = cached
        return cached

    # Simple aggregates (memoised; O(n) only on first read) ------------
    @property
    def load_count(self) -> int:
        """Number of load records."""
        cached = self._aggregates.get("loads")
        if cached is None:
            cached = sum(1 for op, _, _ in self.records if op == LOAD)
            self._aggregates["loads"] = cached
        return cached

    @property
    def store_count(self) -> int:
        """Number of store records."""
        cached = self._aggregates.get("stores")
        if cached is None:
            cached = sum(1 for op, _, _ in self.records if op == STORE)
            self._aggregates["stores"] = cached
        return cached

    def footprint_words(self) -> int:
        """Number of distinct word addresses referenced."""
        cached = self._aggregates.get("footprint")
        if cached is None:
            cached = len({address for _, address, _ in self.records})
            self._aggregates["footprint"] = cached
        return cached

    def distinct_values(self) -> int:
        """Number of distinct values read or written."""
        cached = self._aggregates.get("values")
        if cached is None:
            cached = len({value for _, _, value in self.records})
            self._aggregates["values"] = cached
        return cached
