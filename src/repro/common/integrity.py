"""Integrity-checked envelopes and crash-safe file publication.

Every durable entry the reproduction persists — trace-cache traces,
result-store payloads, checkpoint records — is wrapped in a small
self-describing envelope::

    FVCE1\\n
    <sha256-hex> <payload-length>\\n
    <payload bytes>

so a reader can prove, before parsing a single payload byte, that the
entry on disk is exactly the entry that was written.  Truncation (a
crash mid-write that escaped the atomic-rename discipline), bit rot,
and manual tampering all surface as :class:`IntegrityError` — never as
silently-wrong simulation results.  This is the write/read discipline
persistent key-value caches apply to flash entries (cf. Flashield),
applied to the repo's on-disk stores.

Writes go through :func:`write_enveloped`: private temp file, flush +
``fsync``, atomic ``os.replace``, directory ``fsync`` — so a power
loss can publish either the old entry or the new one, never a partial
one.  Both helpers thread a named fault-injection site
(:mod:`repro.faults.sites`) through the payload path, which is how the
chaos suite provokes exactly the failures this module defends against.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.common.errors import IntegrityError

PathLike = Union[str, "os.PathLike[str]"]

#: Envelope magic; bump the digit on any layout change.
MAGIC = b"FVCE1\n"

#: Quarantined entries get this appended to their file name.
CORRUPT_SUFFIX = ".corrupt"


def wrap(payload: bytes) -> bytes:
    """``payload`` wrapped in a checksummed envelope."""
    digest = hashlib.sha256(payload).hexdigest()
    header = f"{digest} {len(payload)}\n".encode("ascii")
    return MAGIC + header + payload


def is_enveloped(blob: bytes) -> bool:
    """Whether ``blob`` starts like an envelope (no verification)."""
    return blob.startswith(MAGIC)


def unwrap(blob: bytes, source: str = "envelope") -> bytes:
    """Verify and strip the envelope; raises :class:`IntegrityError`
    on bad magic, truncation, length mismatch, or digest mismatch."""
    if not blob.startswith(MAGIC):
        raise IntegrityError(f"{source}: not an integrity envelope")
    end = blob.find(b"\n", len(MAGIC))
    if end < 0:
        raise IntegrityError(f"{source}: truncated envelope header")
    try:
        digest_hex, length_text = blob[len(MAGIC):end].decode("ascii").split(" ")
        declared = int(length_text)
    except (UnicodeDecodeError, ValueError):
        raise IntegrityError(f"{source}: malformed envelope header") from None
    payload = blob[end + 1:]
    if len(payload) != declared:
        raise IntegrityError(
            f"{source}: payload is {len(payload)} bytes, envelope "
            f"declares {declared}"
        )
    actual = hashlib.sha256(payload).hexdigest()
    if actual != digest_hex:
        raise IntegrityError(
            f"{source}: checksum mismatch (entry is corrupt: "
            f"{actual[:12]} != {digest_hex[:12]})"
        )
    return payload


def _fsync_directory(directory: Path) -> None:
    # Persist the rename itself where the platform allows it; failure
    # here only weakens the power-loss guarantee, never correctness.
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_enveloped(
    path: PathLike,
    payload: bytes,
    site: Optional[str] = None,
    fsync: bool = True,
) -> Path:
    """Atomically publish ``payload`` (enveloped) at ``path``.

    Discipline: mkstemp in the destination directory, write, flush,
    ``fsync`` the file, consult the ``<site>.publish`` fault point,
    ``os.replace``, ``fsync`` the directory.  ``site`` names the
    fault-injection site for the write (``None`` = maintenance path,
    no injection).
    """
    path = Path(path)
    blob = wrap(payload)
    if site is not None:
        from repro.faults.sites import fault_point

        injected = fault_point(site, data=blob)
        blob = blob if injected is None else injected
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        if site is not None:
            from repro.faults.sites import fault_point

            fault_point(site + ".publish")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_directory(path.parent)
    return path


def read_enveloped(path: PathLike, site: Optional[str] = None) -> bytes:
    """Read, verify and unwrap one enveloped file.

    Raises :class:`OSError` when the file cannot be read and
    :class:`IntegrityError` when its envelope does not verify.
    ``site`` names the fault-injection site for the read.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        blob = handle.read()
    if site is not None:
        from repro.faults.sites import fault_point

        injected = fault_point(site, data=blob)
        blob = blob if injected is None else injected
    return unwrap(blob, source=str(path))


def quarantine(path: PathLike) -> Optional[Path]:
    """Move a corrupt entry aside as ``<name>.corrupt`` for post-mortem
    inspection (replacing any earlier quarantine of the same entry).

    Returns the quarantine path, or ``None`` when the entry could only
    be unlinked (or had already vanished).  Either way the original
    path no longer resolves, so readers regenerate instead of
    re-parsing the same corrupt bytes forever.
    """
    path = Path(path)
    target = path.with_name(path.name + CORRUPT_SUFFIX)
    try:
        os.replace(path, target)
        return target
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
        return None
