"""32-bit word conventions used across the whole simulated machine.

The paper traces a 32-bit machine: every memory value is a 32-bit word,
every address is a byte address, and a cache "word" is 4 bytes.  All
simulated-memory values in this library are Python ints constrained to
``0 <= v <= 0xFFFFFFFF``; these helpers do the wrapping arithmetic and the
float bit-pattern packing the FP workloads need.
"""

from __future__ import annotations

import struct

#: Bytes per machine word (32-bit target, as in the paper).
WORD_BYTES = 4

#: Bits per machine word.
WORD_BITS = 32

#: Mask selecting the low 32 bits.
WORD_MASK = 0xFFFFFFFF


def to_u32(value: int) -> int:
    """Wrap an arbitrary Python int to its unsigned 32-bit representation.

    >>> to_u32(-1)
    4294967295
    >>> to_u32(2**32 + 5)
    5
    """
    return value & WORD_MASK


def to_s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed 32-bit integer.

    >>> to_s32(0xFFFFFFFF)
    -1
    >>> to_s32(5)
    5
    """
    value &= WORD_MASK
    if value >= 0x80000000:
        return value - 0x100000000
    return value


def u32_add(a: int, b: int) -> int:
    """32-bit wrapping addition."""
    return (a + b) & WORD_MASK


def u32_sub(a: int, b: int) -> int:
    """32-bit wrapping subtraction."""
    return (a - b) & WORD_MASK


def u32_mul(a: int, b: int) -> int:
    """32-bit wrapping multiplication."""
    return (a * b) & WORD_MASK


def float_to_word(value: float) -> int:
    """Pack a Python float into its IEEE-754 single-precision bit pattern.

    The FP workload analogs store their arrays as single-precision words,
    which is what makes 0.0 (bit pattern 0) such a dominant frequent value
    in SPECfp95-like programs.
    """
    return struct.unpack("<I", struct.pack("<f", value))[0]


def word_to_float(word: int) -> float:
    """Unpack an IEEE-754 single-precision bit pattern into a float."""
    return struct.unpack("<f", struct.pack("<I", word & WORD_MASK))[0]


def word_to_hex(word: int) -> str:
    """Render a word the way the paper's Table 1 does (bare lowercase hex).

    >>> word_to_hex(0xFFFFFFFF)
    'ffffffff'
    >>> word_to_hex(0)
    '0'
    """
    return format(word & WORD_MASK, "x")


def is_power_of_two(value: int) -> bool:
    """True iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2 of a power of two.

    Raises ``ValueError`` when ``value`` is not a positive power of two;
    cache geometry code relies on this to validate configurations.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
