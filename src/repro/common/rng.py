"""Deterministic random-number helpers.

Every workload and experiment is seeded so that the whole reproduction is
bit-for-bit repeatable: the same command always regenerates the same
traces, tables and figures.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from any printable parts.

    Unlike ``hash()``, this is stable across interpreter runs (no hash
    randomisation), so a workload named ``("gcc", "ref")`` always gets the
    same stream.

    >>> derive_seed("gcc", "ref") == derive_seed("gcc", "ref")
    True
    >>> derive_seed("gcc", "ref") != derive_seed("gcc", "train")
    True
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(*parts: object) -> random.Random:
    """Build a private ``random.Random`` seeded from ``parts``.

    Each consumer gets its own generator, so adding a new random draw in
    one workload can never perturb another workload's stream.
    """
    return random.Random(derive_seed(*parts))
