"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid cache, FVC, workload, or experiment configuration.

    Raised eagerly at construction time (e.g. a cache size that is not a
    power of two, an FVC code width outside 1..3 bits) so that simulation
    loops never have to validate per access.
    """


class MemoryError_(ReproError):
    """An invalid access to the simulated word memory.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError` (which means the host ran out of RAM, an entirely
    different condition).
    """


class TraceFormatError(ReproError):
    """A trace file or stream is malformed or truncated."""


class IntegrityError(ReproError):
    """A persisted entry failed its integrity check.

    Raised when an on-disk envelope (trace cache entry, result-store
    entry, checkpoint record) is truncated, bit-flipped, or otherwise
    does not match its embedded SHA-256 digest.  Callers quarantine the
    entry and regenerate; they never serve the corrupt payload.
    """


class StorageExhausted(ReproError):
    """The control plane cannot durably record new work.

    Raised at journal-append time when the serve state directory is out
    of space (real ``ENOSPC`` or the configured ``--state-quota-bytes``
    budget).  The service maps it to typed degradation — new
    submissions are shed with ``503`` + ``Retry-After`` while reads and
    already-accepted work keep being served — never to a crash.  The
    condition self-heals as soon as an append succeeds again (snapshot
    compaction or freed disk).
    """


class FaultInjected(ReproError):
    """A deterministic fault-injection plan fired at this point.

    Only ever raised when ``REPRO_FAULTS`` (or ``run --faults``) armed
    an injection site — never during normal operation.  Typed so chaos
    tests can assert a *clean* failure rather than silent corruption.
    """


class WorkloadError(ReproError):
    """A synthetic workload was misconfigured or failed internally."""


class SimulatedMachineError(ReproError):
    """The simulated RISC machine (m88ksim analog) hit an illegal state."""
