"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid cache, FVC, workload, or experiment configuration.

    Raised eagerly at construction time (e.g. a cache size that is not a
    power of two, an FVC code width outside 1..3 bits) so that simulation
    loops never have to validate per access.
    """


class MemoryError_(ReproError):
    """An invalid access to the simulated word memory.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError` (which means the host ran out of RAM, an entirely
    different condition).
    """


class TraceFormatError(ReproError):
    """A trace file or stream is malformed or truncated."""


class WorkloadError(ReproError):
    """A synthetic workload was misconfigured or failed internally."""


class SimulatedMachineError(ReproError):
    """The simulated RISC machine (m88ksim analog) hit an illegal state."""
