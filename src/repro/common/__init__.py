"""Shared low-level utilities: 32-bit word arithmetic, errors, RNG helpers.

Everything in the simulated machine is a 32-bit word, exactly as in the
paper (SPEC95 on a 32-bit target).  This package centralises the word
conventions so every other subsystem agrees on them.
"""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    MemoryError_,
    TraceFormatError,
)
from repro.common.words import (
    WORD_BYTES,
    WORD_BITS,
    WORD_MASK,
    to_u32,
    to_s32,
    u32_add,
    u32_sub,
    u32_mul,
    float_to_word,
    word_to_float,
    word_to_hex,
    is_power_of_two,
    log2_int,
)
from repro.common.rng import make_rng, derive_seed

__all__ = [
    "ReproError",
    "ConfigurationError",
    "MemoryError_",
    "TraceFormatError",
    "WORD_BYTES",
    "WORD_BITS",
    "WORD_MASK",
    "to_u32",
    "to_s32",
    "u32_add",
    "u32_sub",
    "u32_mul",
    "float_to_word",
    "word_to_float",
    "word_to_hex",
    "is_power_of_two",
    "log2_int",
    "make_rng",
    "derive_seed",
]
