"""The built-in sweep catalog: every fig*/table* experiment expressed
as a ``sweep/v1`` spec, plus standalone studies.

Two flavours live here:

* **Cell sweeps** (fig10, fig12, fig13, fig14, ``l1_size_study``) —
  the study is a grid of engine cells; the experiment's
  ``plan_cells`` is *derived from the spec* through the expander, so
  the declarative form and the imperative experiment can never drift.
* **Experiment wrappers** (the remaining figures/tables) — studies
  whose work is not a cell grid (occurrence profiling, per-miss
  attribution, timing-model tables).  The spec declares the study's
  axes descriptively and its reportable fields (= the experiment's
  table columns); execution delegates to the registered experiment,
  so the payload is the experiment's own ``repro.experiment/1`` bytes.

``SWEEP001`` (:mod:`repro.analysis.rules.sweeps`) holds the registry
to this catalog: every fig*/table* id must be backed here with
non-empty reportable fields.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sweeps.spec import SWEEP_SCHEMA, SweepSpecError, normalise_sweep

#: fig10's FVC-entry grid (full / fast).
FIG10_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)
FIG10_FAST_SIZES = (64, 512, 4096)

#: fig13's (line bytes, small DMC KB, doubled DMC KB) pairs.
FIG13_PAIRS = (
    (8, 4, 8),
    (16, 8, 16),
    (16, 16, 32),
    (16, 32, 64),
    (32, 16, 32),
    (32, 32, 64),
    (64, 32, 64),
)
FIG13_BENCHMARKS = ("m88ksim", "perl")

#: fig14's base-cache associativities (full / fast).
FIG14_WAYS = (1, 2, 4)
FIG14_FAST_WAYS = (1, 2)

#: Exploited value counts the paper compares throughout.
TOP_VALUES = (1, 3, 7)


def _workloads(fast: bool) -> List[str]:
    # Lazy: experiment modules import this catalog's grid constants at
    # module level, so the catalog must not import repro.experiments
    # (and thereby the registry) until a builder actually runs.
    from repro.experiments.common import FVL_NAMES

    return list(FVL_NAMES)


def input_for(fast: bool) -> str:
    from repro.experiments.common import input_for as _input_for

    return _input_for(fast)


def _fig10(fast: bool) -> Dict[str, object]:
    sizes = FIG10_FAST_SIZES if fast else FIG10_SIZES
    return {
        "schema": SWEEP_SCHEMA,
        "name": "fig10",
        "title": "Miss rate reduction vs FVC size (16KB DMC, 8 words/line, top 7)",
        "axes": {
            "workload": _workloads(fast),
            "input": [input_for(fast)],
            "fvc_entries": list(sizes),
        },
        "arms": [
            {
                "name": "base",
                "kind": "baseline",
                "cell": {"size_bytes": 16 * 1024, "line_bytes": 32},
            },
            {
                "name": "fvc",
                "kind": "fvc",
                "cell": {
                    "size_bytes": 16 * 1024,
                    "line_bytes": 32,
                    "top_values": 7,
                },
            },
        ],
        "report": {
            "fields": ["miss_rate_percent", "reduction_percent"],
            "aggregates": ["mean"],
        },
    }


def _fig12(fast: bool) -> Dict[str, object]:
    from repro.experiments.fig12_value_count import admissible_configs

    configs = admissible_configs()
    if fast:
        configs = configs[:3]
    return {
        "schema": SWEEP_SCHEMA,
        "name": "fig12",
        "title": "Reduction in miss rate: top 1 vs 3 vs 7 values (512-entry FVC)",
        "axes": {
            "workload": _workloads(fast),
            "input": [input_for(fast)],
            "geometry": [
                {
                    "size_bytes": geometry.size_bytes,
                    "line_bytes": geometry.line_bytes,
                }
                for geometry in configs
            ],
            "top_values": list(TOP_VALUES),
        },
        "arms": [
            {
                "name": "base",
                "kind": "baseline",
                "cell": {
                    "size_bytes": "$geometry.size_bytes",
                    "line_bytes": "$geometry.line_bytes",
                },
            },
            {
                "name": "fvc",
                "kind": "fvc",
                "cell": {
                    "size_bytes": "$geometry.size_bytes",
                    "line_bytes": "$geometry.line_bytes",
                    "fvc_entries": 512,
                },
            },
        ],
        "report": {
            "fields": ["miss_rate_percent", "reduction_percent"],
            "aggregates": ["mean"],
        },
    }


def _fig13(fast: bool) -> Dict[str, object]:
    pairs = FIG13_PAIRS[:2] if fast else FIG13_PAIRS
    tops = (7,) if fast else (7, 3, 1)
    return {
        "schema": SWEEP_SCHEMA,
        "name": "fig13",
        "title": "DMC + FVC vs larger DMC (miss rates, m88ksim & perl analogs)",
        "axes": {
            "workload": list(FIG13_BENCHMARKS),
            "input": [input_for(fast)],
            "pair": [
                {
                    "line_bytes": line_bytes,
                    "small_bytes": small_kb * 1024,
                    "double_bytes": double_kb * 1024,
                }
                for line_bytes, small_kb, double_kb in pairs
            ],
            "top_values": list(tops),
        },
        "arms": [
            {
                "name": "double",
                "kind": "baseline",
                "cell": {
                    "size_bytes": "$pair.double_bytes",
                    "line_bytes": "$pair.line_bytes",
                },
            },
            {
                "name": "fvc",
                "kind": "fvc",
                "cell": {
                    "size_bytes": "$pair.small_bytes",
                    "line_bytes": "$pair.line_bytes",
                    "fvc_entries": 512,
                },
            },
        ],
        "report": {
            "fields": ["miss_rate_percent"],
            "aggregates": ["mean"],
        },
    }


def _fig14(fast: bool) -> Dict[str, object]:
    ways = FIG14_FAST_WAYS if fast else FIG14_WAYS
    return {
        "schema": SWEEP_SCHEMA,
        "name": "fig14",
        "title": "FVC with 1/2/4-way base caches (16KB, 8 words/line, top 7)",
        "axes": {
            "workload": _workloads(fast),
            "input": [input_for(fast)],
            "ways": list(ways),
        },
        "arms": [
            {
                "name": "base",
                "kind": "baseline",
                "cell": {"size_bytes": 16 * 1024, "line_bytes": 32},
            },
            {
                "name": "fvc",
                "kind": "fvc",
                "cell": {
                    "size_bytes": 16 * 1024,
                    "line_bytes": 32,
                    "fvc_entries": 512,
                    "top_values": 7,
                },
            },
            {
                "name": "classify",
                "kind": "classify",
                "cell": {
                    "size_bytes": 16 * 1024,
                    "line_bytes": 32,
                    "ways": 1,
                },
            },
        ],
        "report": {
            "fields": [
                "miss_rate_percent",
                "reduction_percent",
                "conflict",
                "capacity",
                "compulsory",
            ],
            "aggregates": ["mean"],
        },
    }


def _l1_size_study(fast: bool) -> Dict[str, object]:
    workloads = ["m88ksim", "perl"] if fast else _workloads(fast)
    sizes = [4 * 1024, 16 * 1024] if fast else [
        4 * 1024,
        8 * 1024,
        16 * 1024,
        32 * 1024,
        64 * 1024,
    ]
    tops = [1, 7] if fast else list(TOP_VALUES)
    return {
        "schema": SWEEP_SCHEMA,
        "name": "l1_size_study",
        "title": "L1 size study: DMC geometry x exploited-value-count grid",
        "axes": {
            "workload": workloads,
            "input": [input_for(fast)],
            "size_bytes": sizes,
            "top_values": tops,
        },
        "arms": [
            {
                "name": "base",
                "kind": "baseline",
                "cell": {"line_bytes": 32},
            },
            {
                "name": "fvc",
                "kind": "fvc",
                "cell": {"line_bytes": 32, "fvc_entries": 512},
            },
        ],
        "report": {
            "fields": [
                "miss_rate_percent",
                "reduction_percent",
                "traffic_words",
            ],
            "aggregates": ["mean"],
        },
    }


#: Table columns of every experiment-wrapper sweep — the experiment's
#: (fast-invariant) headers, declared as the study's reportable fields.
#: Drift against the real tables is pinned by the regression suite.
WRAPPER_FIELDS: Dict[str, List[str]] = {
    "fig1": [
        "benchmark",
        "occ_top1_%", "occ_top3_%", "occ_top7_%", "occ_top10_%",
        "acc_top1_%", "acc_top3_%", "acc_top7_%", "acc_top10_%",
    ],
    "fig2": [
        "benchmark",
        "occ_top1_%", "occ_top3_%", "occ_top7_%", "occ_top10_%",
        "acc_top1_%", "acc_top3_%", "acc_top7_%", "acc_top10_%",
    ],
    "fig3": [
        "accesses", "live_locs",
        "locs_top1", "locs_top3", "locs_top7", "locs_top10",
        "distinct_in_mem",
        "acc_top1", "acc_top3", "acc_top7", "acc_top10",
        "distinct_accessed",
    ],
    "fig4": [
        "benchmark", "miss_rate_%",
        "miss_top10_accessed_%", "miss_top10_occurring_%",
    ],
    "fig5": ["block", "freq_per_line"],
    "fig9": ["structure", "config", "access_ns", "fvc512_fits"],
    "fig11": [
        "benchmark", "frequent_content_%", "storage_factor_x",
        "fvc_read_hits", "fvc_write_hits",
    ],
    "fig15": [
        "benchmark", "base_miss_%",
        "vc16_red_%", "fvc128_red_%", "vc4_red_%", "fvc512_red_%",
    ],
    "table1": [
        "rank",
        "go_accessed", "go_occurring",
        "m88ksim_accessed", "m88ksim_occurring",
        "gcc_accessed", "gcc_occurring",
        "li_accessed", "li_occurring",
        "perl_accessed", "perl_occurring",
        "vortex_accessed", "vortex_occurring",
    ],
    "table2": [
        "benchmark", "test_top7", "test_top10", "train_top7", "train_top10",
    ],
    "table3": [
        "benchmark", "accesses",
        "order_top1_%", "order_top3_%", "order_top7_%",
        "in_top10_top1_%", "in_top10_top3_%", "in_top10_top7_%",
    ],
    "table4": ["benchmark", "referenced", "constant", "constant_%"],
}


def _wrapper(experiment_id: str) -> Callable[[bool], Dict[str, object]]:
    def build(fast: bool) -> Dict[str, object]:
        from repro.experiments.registry import get_experiment

        return {
            "schema": SWEEP_SCHEMA,
            "name": experiment_id,
            "title": get_experiment(experiment_id).title,
            "axes": {},
            "arms": [
                {
                    "name": "experiment",
                    "kind": "experiment",
                    "experiment_id": experiment_id,
                    "fast": fast,
                }
            ],
            "report": {
                "fields": list(WRAPPER_FIELDS[experiment_id]),
                "aggregates": ["mean"],
            },
        }

    return build


#: name -> builder(fast) for every catalogued sweep.
_BUILDERS: Dict[str, Callable[[bool], Dict[str, object]]] = {
    "fig10": _fig10,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "l1_size_study": _l1_size_study,
}
_BUILDERS.update(
    {experiment_id: _wrapper(experiment_id) for experiment_id in WRAPPER_FIELDS}
)


def sweep_names() -> List[str]:
    """Every catalogued sweep name, sorted."""
    return sorted(_BUILDERS)


def get_sweep(name: str, fast: bool = False) -> Dict[str, object]:
    """The normalised catalogued spec, or :class:`SweepSpecError` for
    an unknown name."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise SweepSpecError(
            f"unknown catalogued sweep {name!r} "
            f"(known: {', '.join(sweep_names())})"
        )
    return normalise_sweep(builder(fast))


def catalog_report_fields() -> Dict[str, List[str]]:
    """``name -> declared report fields`` for every catalogued sweep —
    what ``SWEEP001`` audits the experiment registry against.  Static:
    reads the builders' declarations without running anything."""
    fields: Dict[str, List[str]] = {}
    for name in sweep_names():
        fields[name] = list(get_sweep(name, fast=True)["report"]["fields"])
    return fields
