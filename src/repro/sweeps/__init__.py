"""Declarative sweep studies over the paper's design space.

``repro.sweeps`` turns a parameter study — workloads x cache geometry
x FVC value count x input scale — into a ``sweep/v1`` JSON document
that expands deterministically into the engine's simulation cells and
aggregates the results into a report table.  See ``docs/SWEEPS.md``
for the grammar and semantics, :mod:`repro.sweeps.catalog` for the
built-in studies (every fig*/table* experiment plus standalone
sweeps), and ``repro.api.run_sweep`` for the stable entry point.
"""

from repro.sweeps.expand import SweepPoint, expand, expand_cells, unique_cells
from repro.sweeps.runner import (
    SWEEP_RESULT_SCHEMA,
    describe_sweep,
    run_sweep,
    sweep_payload,
)
from repro.sweeps.spec import (
    SWEEP_SCHEMA,
    SweepSpecError,
    load_sweep_file,
    normalise_sweep,
    sweep_id,
    sweep_result_key,
)

__all__ = [
    "SWEEP_RESULT_SCHEMA",
    "SWEEP_SCHEMA",
    "SweepPoint",
    "SweepSpecError",
    "describe_sweep",
    "expand",
    "expand_cells",
    "load_sweep_file",
    "normalise_sweep",
    "run_sweep",
    "sweep_id",
    "sweep_payload",
    "sweep_result_key",
    "unique_cells",
]
