"""Local sweep execution and payload assembly.

:func:`run_sweep` executes a normalised ``sweep/v1`` spec through the
engine — distinct cells once each, fanned across ``--jobs`` processes
when asked — and assembles the ``sweep.result/1`` payload.  The
assembly itself (:func:`sweep_payload`) is a pure function of the spec
and the per-cell snapshots; the service's ``/v1/sweeps`` endpoint
builds its payload through the very same function over the stored cell
payloads, which is what makes a served sweep's bytes identical to a
local run's.

Experiment-wrapper sweeps (one ``kind: "experiment"`` arm) delegate to
the registered experiment via
:meth:`~repro.experiments.base.Experiment.run_with_engine`; their
report *is* the experiment's table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sweeps.expand import SweepPoint, expand, unique_cells
from repro.sweeps.report import Snapshot, build_report
from repro.sweeps.spec import (
    is_experiment_sweep,
    sweep_id,
    sweep_result_key,
)

#: Schema tag on assembled sweep payloads; bump on shape change.
SWEEP_RESULT_SCHEMA = "sweep.result/1"


def sweep_payload(
    spec: Dict[str, object],
    points: Sequence[SweepPoint],
    snapshots: Sequence[Snapshot],
    distinct_cells: int,
) -> Dict[str, object]:
    """Assemble the canonical result payload of a cell sweep.

    Pure: every execution path — local sequential, ``--jobs N``, the
    service, the cluster — converges here with the same snapshots in
    the same (expansion) order, and therefore emits the same bytes.
    """
    headers, rows = build_report(spec, points, snapshots)
    return {
        "schema": SWEEP_RESULT_SCHEMA,
        "sweep": spec,
        "sweep_id": sweep_id(spec),
        "result_key": sweep_result_key(spec),
        "points": len(points),
        "distinct_cells": distinct_cells,
        "headers": headers,
        "rows": rows,
    }


def experiment_sweep_payload(
    spec: Dict[str, object], experiment_payload: Dict[str, object]
) -> Dict[str, object]:
    """Assemble the result payload of an experiment-wrapper sweep from
    the wrapped experiment's ``repro.experiment/1`` payload (served
    jobs store exactly that payload, so both paths share bytes)."""
    return {
        "schema": SWEEP_RESULT_SCHEMA,
        "sweep": spec,
        "sweep_id": sweep_id(spec),
        "result_key": sweep_result_key(spec),
        "points": 1,
        "distinct_cells": 0,
        "experiment_id": spec["arms"][0]["experiment_id"],
        "headers": list(experiment_payload["headers"]),
        "rows": [dict(row) for row in experiment_payload["rows"]],
        "notes": list(experiment_payload["notes"]),
    }


def snapshots_for(
    points: Sequence[SweepPoint],
    by_cell: Dict[object, Snapshot],
) -> List[Snapshot]:
    """Fan distinct-cell snapshots back out to expansion order."""
    return [by_cell[point.cell] for point in points]


def run_sweep(
    spec: Dict[str, object],
    store=None,
    jobs: int = 1,
    progress=None,
    executor=None,
) -> Dict[str, object]:
    """Execute a normalised sweep spec and return its
    ``sweep.result/1`` payload.

    ``jobs`` / ``progress`` / ``executor`` carry the engine's existing
    cell-runner contract; results merge in plan order, so any ``jobs``
    value yields identical payload bytes.
    """
    if is_experiment_sweep(spec):
        from repro.experiments.registry import get_experiment
        from repro.experiments.render import experiment_payload

        arm = spec["arms"][0]
        experiment = get_experiment(arm["experiment_id"])
        result = experiment.run_with_engine(
            store=store,
            fast=arm["fast"],
            jobs=jobs,
            progress=progress,
            executor=executor,
        )
        return experiment_sweep_payload(spec, experiment_payload(result))

    from repro.engine.runner import run_cells

    points = expand(spec)
    distinct = unique_cells(points)
    results = run_cells(
        distinct,
        jobs=jobs,
        store=store,
        progress=progress,
        executor=executor,
    )
    by_cell: Dict[object, Snapshot] = {
        cell: (result.stats, result.extras)
        for cell, result in zip(distinct, results)
    }
    return sweep_payload(
        spec, points, snapshots_for(points, by_cell), len(distinct)
    )


def describe_sweep(spec: Dict[str, object]) -> Dict[str, object]:
    """A static description of a normalised spec: identity, expansion
    size and report shape, without running anything."""
    description: Dict[str, object] = {
        "schema": spec["schema"],
        "name": spec["name"],
        "sweep_id": sweep_id(spec),
        "result_key": sweep_result_key(spec),
        "axes": {
            axis: len(values) for axis, values in spec["axes"].items()
        },
        "arms": [arm["name"] for arm in spec["arms"]],
        "report": spec["report"],
    }
    if "title" in spec:
        description["title"] = spec["title"]
    if is_experiment_sweep(spec):
        description["experiment_id"] = spec["arms"][0]["experiment_id"]
        description["points"] = 1
        description["distinct_cells"] = 0
    else:
        points = expand(spec)
        description["points"] = len(points)
        description["distinct_cells"] = len(unique_cells(points))
    return description
