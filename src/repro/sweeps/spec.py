"""The ``sweep/v1`` declarative sweep specification.

A sweep spec is a plain-JSON description of a parameter study over the
paper's design space — workloads x cache geometry x FVC value count x
input scale — that the expander (:mod:`repro.sweeps.expand`) compiles
into the engine's :class:`~repro.engine.cells.SimCell` plan-order
contract.  Specs are canonical-JSON values and content-addressed
exactly like SimCell specs, so the same study has the same identity on
every machine, in every process, forever.

Grammar (all unknown keys rejected)::

    {
      "schema": "sweep/v1",
      "name":   "l1_size_study",
      "title":  "optional human title",
      "axes":   {"workload": ["go", ...],        # scalar axis
                 "input": ["ref"],               # the replicate axis
                 "pair": [{"line_bytes": 8,      # object (coupled) axis
                           "small_bytes": 4096,
                           "double_bytes": 8192}, ...]},
      "arms":   [{"name": "base", "kind": "baseline",
                  "cell": {"size_bytes": "$pair.double_bytes",
                           "line_bytes": "$pair.line_bytes"}},
                 ...],
      "report": {"fields": ["miss_rate_percent", ...],
                 "aggregates": ["mean", "ci95"]}
    }

* **Axes** map a name to a non-empty list of values.  Scalar axes hold
  strings or integers; object axes hold dicts whose (identical) keys
  name the coupled components.  An axis named after a
  :class:`~repro.engine.cells.SimCell` field (``workload``, ``input``
  for ``input_name``, ``size_bytes``, ``line_bytes``, ``ways``,
  ``fvc_entries``, ``top_values``) binds that field implicitly on every
  arm whose kind uses the field.
* **Arms** are the per-point simulations, in declared (and therefore
  plan) order.  ``kind`` is one of ``baseline`` / ``fvc`` /
  ``classify`` (cell arms) or ``experiment`` (a whole registered
  experiment).  A cell arm's ``cell`` mapping pins SimCell fields to
  literals or to axis references — ``"$axis"`` for a scalar axis,
  ``"$axis.component"`` for one component of an object axis; an
  explicit entry overrides the implicit name binding.
* **Report** declares the reportable fields (see
  :data:`repro.sweeps.report.REPORT_FIELDS`) and the aggregation
  functions applied across the replicate axis.

Validation errors always name the schema (``sweep/v1``) so a caller
who posted the wrong document knows which contract to read.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Schema tag every sweep spec must carry; bump on grammar change.
SWEEP_SCHEMA = "sweep/v1"

#: Arm kinds executed as engine cells.
CELL_ARM_KINDS: Tuple[str, ...] = ("baseline", "fvc", "classify")
#: All arm kinds (``experiment`` delegates to a registered experiment).
ARM_KINDS: Tuple[str, ...] = CELL_ARM_KINDS + ("experiment",)

#: SimCell fields a spec may bind, axis-name -> cell-field.  The axis
#: is called ``input`` (the paper's input-scale / replicate axis) even
#: though the cell field is ``input_name``.
AXIS_FIELDS: Dict[str, str] = {
    "workload": "workload",
    "input": "input_name",
    "size_bytes": "size_bytes",
    "line_bytes": "line_bytes",
    "ways": "ways",
    "fvc_entries": "fvc_entries",
    "top_values": "top_values",
}

#: Cell fields each arm kind binds implicitly (by axis name).  Explicit
#: ``cell`` entries always win; ``fvc_entries``/``top_values`` never
#: bind implicitly on arms without an FVC.
IMPLICIT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "baseline": ("workload", "input_name", "size_bytes", "line_bytes", "ways"),
    "classify": ("workload", "input_name", "size_bytes", "line_bytes", "ways"),
    "fvc": (
        "workload",
        "input_name",
        "size_bytes",
        "line_bytes",
        "ways",
        "fvc_entries",
        "top_values",
    ),
}

_INT_FIELDS = ("size_bytes", "line_bytes", "ways", "fvc_entries", "top_values")
_TOP_KEYS = ("schema", "name", "title", "axes", "arms", "report")
_ARM_KEYS = ("name", "kind", "cell", "experiment_id", "fast")
_REPORT_KEYS = ("fields", "aggregates")

#: Aggregation functions a spec may declare (see repro.sweeps.report).
AGGREGATE_NAMES: Tuple[str, ...] = ("ci95", "max", "mean", "median", "min")


class SweepSpecError(ConfigurationError):
    """A document does not satisfy the ``sweep/v1`` grammar."""

    def __init__(self, message: str) -> None:
        super().__init__(f"invalid {SWEEP_SCHEMA} sweep spec: {message}")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SweepSpecError(message)


def _scalar(value: object) -> bool:
    return isinstance(value, (str, int)) and not isinstance(value, bool)


def _normalise_axis(name: str, values: object) -> List[object]:
    _require(
        isinstance(name, str) and name and name.replace("_", "").isalnum(),
        f"axis name {name!r} must be a non-empty alphanumeric/underscore string",
    )
    _require(
        isinstance(values, list) and len(values) > 0,
        f"axis {name!r} must be a non-empty list of values",
    )
    if all(_scalar(value) for value in values):
        return list(values)
    _require(
        all(isinstance(value, dict) for value in values),
        f"axis {name!r} mixes scalar and object values",
    )
    keys = sorted(values[0])
    _require(len(keys) > 0, f"axis {name!r} has an empty object value")
    for value in values:
        _require(
            sorted(value) == keys,
            f"axis {name!r} object values must share one component set",
        )
        for component, comp_value in value.items():
            _require(
                isinstance(component, str)
                and component
                and component.replace("_", "").isalnum(),
                f"axis {name!r} component {component!r} must be alphanumeric",
            )
            _require(
                _scalar(comp_value),
                f"axis {name!r} component {component!r} must be a scalar",
            )
    return [dict(value) for value in values]


def axis_components(axes: Dict[str, List[object]], name: str) -> Optional[List[str]]:
    """Component names of an object axis, or ``None`` for a scalar
    axis."""
    first = axes[name][0]
    if isinstance(first, dict):
        return sorted(first)
    return None


def _check_reference(
    axes: Dict[str, List[object]], field: str, reference: str
) -> None:
    """Validate a ``$axis`` / ``$axis.component`` cell binding."""
    target = reference[1:]
    axis, _, component = target.partition(".")
    _require(axis in axes, f"cell field {field!r} references unknown axis {axis!r}")
    components = axis_components(axes, axis)
    if component:
        _require(
            components is not None,
            f"cell field {field!r} references component {component!r} "
            f"of scalar axis {axis!r}",
        )
        _require(
            component in components,
            f"cell field {field!r} references unknown component "
            f"{component!r} of axis {axis!r}",
        )
    else:
        _require(
            components is None,
            f"cell field {field!r} must pick a component of object "
            f"axis {axis!r} (e.g. \"${axis}.<component>\")",
        )


def _normalise_arm(
    arm: object, index: int, axes: Dict[str, List[object]]
) -> Dict[str, object]:
    _require(isinstance(arm, dict), f"arm #{index} must be an object")
    unknown = sorted(set(arm) - set(_ARM_KEYS))
    _require(not unknown, f"arm #{index} has unknown keys {unknown}")
    name = arm.get("name")
    _require(
        isinstance(name, str) and name != "",
        f"arm #{index} needs a non-empty string name",
    )
    kind = arm.get("kind")
    _require(
        kind in ARM_KINDS,
        f"arm {name!r} kind must be one of {sorted(ARM_KINDS)}, got {kind!r}",
    )
    out: Dict[str, object] = {"name": name, "kind": kind}
    if kind == "experiment":
        experiment_id = arm.get("experiment_id")
        _require(
            isinstance(experiment_id, str) and experiment_id != "",
            f"experiment arm {name!r} needs an experiment_id",
        )
        _require(
            "cell" not in arm,
            f"experiment arm {name!r} cannot carry a cell mapping",
        )
        out["experiment_id"] = experiment_id
        fast = arm.get("fast", False)
        _require(
            isinstance(fast, bool),
            f"experiment arm {name!r} fast flag must be a boolean",
        )
        out["fast"] = fast
        return out
    _require(
        "experiment_id" not in arm and "fast" not in arm,
        f"cell arm {name!r} cannot carry experiment keys",
    )
    cell = arm.get("cell", {})
    _require(isinstance(cell, dict), f"arm {name!r} cell must be an object")
    out_cell: Dict[str, object] = {}
    for field in sorted(cell):
        value = cell[field]
        _require(
            field in AXIS_FIELDS.values(),
            f"arm {name!r} binds unknown cell field {field!r} "
            f"(known: {sorted(AXIS_FIELDS.values())})",
        )
        if isinstance(value, str) and value.startswith("$"):
            _check_reference(axes, field, value)
        elif field in _INT_FIELDS:
            _require(
                isinstance(value, int) and not isinstance(value, bool),
                f"arm {name!r} field {field!r} must be an integer "
                "or an axis reference",
            )
        else:
            _require(
                isinstance(value, str),
                f"arm {name!r} field {field!r} must be a string "
                "or an axis reference",
            )
        out_cell[field] = value
    if out_cell:
        out["cell"] = out_cell
    return out


def _normalise_report(
    report: object, cell_sweep: bool
) -> Dict[str, object]:
    from repro.sweeps.report import REPORT_FIELDS

    _require(isinstance(report, dict), "report must be an object")
    unknown = sorted(set(report) - set(_REPORT_KEYS))
    _require(not unknown, f"report has unknown keys {unknown}")
    fields = report.get("fields")
    _require(
        isinstance(fields, list)
        and len(fields) > 0
        and all(isinstance(field, str) and field for field in fields),
        "report.fields must be a non-empty list of field names",
    )
    _require(
        len(set(fields)) == len(fields), "report.fields has duplicates"
    )
    if cell_sweep:
        unknown_fields = sorted(set(fields) - set(REPORT_FIELDS))
        _require(
            not unknown_fields,
            f"unknown report fields {unknown_fields} "
            f"(known: {sorted(REPORT_FIELDS)})",
        )
    aggregates = report.get("aggregates", ["mean"])
    _require(
        isinstance(aggregates, list)
        and len(aggregates) > 0
        and all(agg in AGGREGATE_NAMES for agg in aggregates),
        f"report.aggregates must be a non-empty subset of "
        f"{sorted(AGGREGATE_NAMES)}",
    )
    _require(
        len(set(aggregates)) == len(aggregates),
        "report.aggregates has duplicates",
    )
    return {"fields": list(fields), "aggregates": list(aggregates)}


def normalise_sweep(raw: object) -> Dict[str, object]:
    """Validate a sweep document and return its canonical form.

    The canonical form contains exactly the recognised keys with
    normalised values; serialising it through
    :func:`repro.experiments.render.dumps_compact` yields the spec's
    identity bytes.  Raises :class:`SweepSpecError` (whose message
    names ``sweep/v1``) on any violation.
    """
    _require(isinstance(raw, dict), "document must be a JSON object")
    _require(
        raw.get("schema") == SWEEP_SCHEMA,
        f"schema must be {SWEEP_SCHEMA!r}, got {raw.get('schema')!r}",
    )
    unknown = sorted(set(raw) - set(_TOP_KEYS))
    _require(not unknown, f"unknown top-level keys {unknown}")
    name = raw.get("name")
    _require(
        isinstance(name, str)
        and name != ""
        and name.replace("_", "").replace("-", "").isalnum(),
        "name must be a non-empty alphanumeric/underscore/dash string",
    )
    axes_raw = raw.get("axes", {})
    _require(isinstance(axes_raw, dict), "axes must be an object")
    axes = {
        axis: _normalise_axis(axis, axes_raw[axis]) for axis in sorted(axes_raw)
    }
    arms_raw = raw.get("arms")
    _require(
        isinstance(arms_raw, list) and len(arms_raw) > 0,
        "arms must be a non-empty list",
    )
    arms = [
        _normalise_arm(arm, index, axes) for index, arm in enumerate(arms_raw)
    ]
    names = [arm["name"] for arm in arms]
    _require(len(set(names)) == len(names), "arm names must be unique")
    kinds = {arm["kind"] for arm in arms}
    if "experiment" in kinds:
        _require(
            len(arms) == 1,
            "an experiment sweep wraps exactly one experiment arm",
        )
    else:
        _require(
            len(axes) > 0, "a cell sweep needs at least one axis"
        )
    spec: Dict[str, object] = {
        "schema": SWEEP_SCHEMA,
        "name": name,
        "axes": axes,
        "arms": arms,
        "report": _normalise_report(
            raw.get("report"), cell_sweep="experiment" not in kinds
        ),
    }
    title = raw.get("title")
    if title is not None:
        _require(isinstance(title, str), "title must be a string")
        spec["title"] = title
    return spec


def is_experiment_sweep(spec: Dict[str, object]) -> bool:
    """Whether the (normalised) spec wraps a registered experiment."""
    return spec["arms"][0]["kind"] == "experiment"


def sweep_id(spec: Dict[str, object]) -> str:
    """Content address of a normalised spec: same study, same id, on
    every machine."""
    from repro.experiments.render import dumps_compact

    material = dumps_compact({"sweep": spec, "v": 1})
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:24]


def sweep_result_key(spec: Dict[str, object]) -> str:
    """Result-store key of the assembled sweep payload.

    Mirrors :func:`repro.service.api.result_key`: the key covers the
    code version and trace-cache version besides the spec, so a store
    never serves results computed by different simulator code.
    """
    from repro import __version__
    from repro.engine.trace_cache import TRACE_CACHE_VERSION
    from repro.experiments.render import dumps_compact

    material = dumps_compact(
        {
            "code": __version__,
            "sweep": spec,
            "traces": TRACE_CACHE_VERSION,
            "v": 1,
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:24]


def load_sweep_file(path: object) -> Dict[str, object]:
    """Load and normalise a ``sweep/v1`` spec from a JSON file."""
    import json

    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise SweepSpecError(f"cannot read {path}: {exc}") from exc
    try:
        raw = json.loads(text)
    except ValueError as exc:
        raise SweepSpecError(f"{path} is not valid JSON: {exc}") from exc
    return normalise_sweep(raw)
