"""Sweep reporting: declared fields, aggregation across seeds, and
CSV / JSON / HTML table rendering.

A sweep's ``report`` block declares *which* quantities each expanded
point contributes (:data:`REPORT_FIELDS`) and *how* they aggregate
across the replicate axis (:data:`AGGREGATES` — mean, median, a normal
95% confidence half-width, min, max).  The report builder is a pure
function of the spec and the per-point ``(stats, extras)`` snapshots,
so a report assembled from served cell payloads is byte-identical to
one assembled from a local run — the property the ``/v1/sweeps``
end-to-end test pins.

Replicates come from the workload *inputs*: every
:class:`~repro.workloads.base.WorkloadInput` carries its own data
seed, so an ``input`` axis with several values is a seed sweep.  The
seed dimension is never a :class:`~repro.engine.cells.SimCell` field —
cells stay schema-stable — it is collapsed here instead.
"""

from __future__ import annotations

import html
import io
import math
import statistics
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sweeps.expand import (
    SweepPoint,
    coord_columns,
    relevant_axes,
    replicate_axis,
)

Snapshot = Tuple[Dict[str, int], Dict[str, int]]
Row = Dict[str, object]


def _accesses(stats: Dict[str, int], extras: Dict[str, int]) -> int:
    if "accesses" in extras:  # classify cells carry no cache stats
        return extras["accesses"]
    return (
        stats["read_hits"]
        + stats["read_misses"]
        + stats["write_hits"]
        + stats["write_misses"]
    )


def _misses(stats: Dict[str, int], extras: Dict[str, int]) -> int:
    return stats["read_misses"] + stats["write_misses"]


def _miss_rate_percent(
    stats: Dict[str, int], extras: Dict[str, int]
) -> Optional[float]:
    total = _accesses(stats, extras)
    if "accesses" in extras:
        return None
    return 100.0 * _misses(stats, extras) / total if total else 0.0


def _traffic_words(stats: Dict[str, int], extras: Dict[str, int]) -> int:
    return stats["fill_words"] + stats["writeback_words"]


def _extra(name: str) -> Callable[[Dict[str, int], Dict[str, int]], object]:
    def read(stats: Dict[str, int], extras: Dict[str, int]):
        return extras.get(name)

    return read


#: Reportable per-point fields a spec may declare: name -> extractor
#: over the cell's ``(stats, extras)`` snapshot.  Extractors return
#: ``None`` when a field does not apply to a point's kind (e.g.
#: ``fvc_hits`` on a baseline cell); inapplicable fields render empty.
REPORT_FIELDS: Dict[str, Callable[[Dict[str, int], Dict[str, int]], object]] = {
    "accesses": _accesses,
    "misses": _misses,
    "miss_rate_percent": _miss_rate_percent,
    "traffic_words": _traffic_words,
    "fills": lambda stats, extras: stats["fills"],
    "writebacks": lambda stats, extras: stats["writebacks"],
    "fvc_hits": _extra("fvc_hits"),
    "fvc_read_hits": _extra("fvc_read_hits"),
    "fvc_write_hits": _extra("fvc_write_hits"),
    "main_hits": _extra("main_hits"),
    "compulsory": _extra("compulsory"),
    "capacity": _extra("capacity"),
    "conflict": _extra("conflict"),
    "reduction_percent": None,  # derived against the baseline arm below
}


def _mean(values: Sequence[float]) -> float:
    return statistics.fmean(values)


def _ci95(values: Sequence[float]) -> float:
    """Half-width of a normal-approximation 95% confidence interval.

    Degenerate by design for a single replicate: one seed has no
    spread, so the half-width is 0.0 rather than undefined.
    """
    if len(values) < 2:
        return 0.0
    return 1.96 * statistics.stdev(values) / math.sqrt(len(values))


#: Aggregation functions across the replicate axis.
AGGREGATES: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": _mean,
    "median": statistics.median,
    "ci95": _ci95,
    "min": min,
    "max": max,
}


def _baseline_index(
    points: Sequence[SweepPoint], snapshots: Sequence[Snapshot]
) -> Dict[Tuple[Tuple[str, object], ...], Snapshot]:
    """Baseline snapshots keyed by their (hashable) coordinates, for
    the derived ``reduction_percent`` field."""

    def freeze(coords: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
        return tuple(
            (axis, tuple(sorted(value.items())) if isinstance(value, dict) else value)
            for axis, value in sorted(coords.items())
        )

    index = {}
    for point, snapshot in zip(points, snapshots):
        if point.kind == "baseline":
            index[freeze(point.coords)] = snapshot
    return index


def _reduction_percent(
    point: SweepPoint,
    snapshot: Snapshot,
    baselines: Dict[Tuple[Tuple[str, object], ...], Snapshot],
    baseline_axes: Sequence[str],
) -> Optional[float]:
    """Miss-rate reduction vs the baseline sharing the point's
    coordinates (projected onto the baseline arm's axes), the paper's
    headline metric.  ``None`` off the FVC arm or with no match."""
    if point.kind != "fvc":
        return None
    projected = {
        axis: value
        for axis, value in point.coords.items()
        if axis in baseline_axes
    }
    key = tuple(
        (axis, tuple(sorted(value.items())) if isinstance(value, dict) else value)
        for axis, value in sorted(projected.items())
    )
    base = baselines.get(key)
    if base is None:
        return None
    base_rate = _miss_rate_percent(*base)
    rate = _miss_rate_percent(*snapshot)
    if base_rate is None or rate is None or base_rate == 0:
        return 0.0
    return 100.0 * (base_rate - rate) / base_rate


def build_report(
    spec: Dict[str, object],
    points: Sequence[SweepPoint],
    snapshots: Sequence[Snapshot],
) -> Tuple[List[str], List[Row]]:
    """Aggregate per-point snapshots into the sweep's report table.

    Rows appear in expansion order of their first replicate; one row
    per (arm, non-replicate coordinates) group.  Columns: ``arm``, the
    coordinate columns, ``n`` (replicate count), then one
    ``<field>_<aggregate>`` column per declared field and aggregate.
    Aggregated values are rounded to 6 decimals so report bytes are
    stable across float-formatting environments.
    """
    if len(points) != len(snapshots):
        raise ValueError(
            f"{len(points)} points but {len(snapshots)} snapshots"
        )
    fields: List[str] = spec["report"]["fields"]
    aggregates: List[str] = spec["report"]["aggregates"]
    collapsed = replicate_axis(spec)
    columns = coord_columns(spec)
    baselines = _baseline_index(points, snapshots)
    baseline_axes: List[str] = []
    for arm in spec["arms"]:
        if arm["kind"] == "baseline":
            baseline_axes = relevant_axes(spec, arm)
            break

    headers = ["arm"]
    headers += [
        axis if component is None else f"{axis}.{component}"
        for axis, component in columns
    ]
    headers += ["n"]
    headers += [
        f"{field}_{aggregate}" for field in fields for aggregate in aggregates
    ]

    groups: Dict[Tuple[object, ...], Dict[str, List[object]]] = {}
    order: List[Tuple[object, ...]] = []
    group_meta: Dict[Tuple[object, ...], SweepPoint] = {}
    for point, snapshot in zip(points, snapshots):
        key_parts: List[object] = [point.arm]
        for axis, component in columns:
            value = point.coords.get(axis)
            if component is not None and isinstance(value, dict):
                value = value.get(component)
            key_parts.append(value)
        key = tuple(key_parts)
        if key not in groups:
            groups[key] = {field: [] for field in fields}
            order.append(key)
            group_meta[key] = point
        bucket = groups[key]
        for field in fields:
            if field == "reduction_percent":
                value = _reduction_percent(
                    point, snapshot, baselines, baseline_axes
                )
            else:
                value = REPORT_FIELDS[field](*snapshot)
            if value is not None:
                bucket[field].append(value)

    rows: List[Row] = []
    for key in order:
        point = group_meta[key]
        row: Row = {"arm": point.arm}
        for (axis, component), value in zip(columns, key[1:]):
            column = axis if component is None else f"{axis}.{component}"
            row[column] = value if value is not None else ""
        replicates = 1
        if collapsed is not None and collapsed in point.coords:
            replicates = len(spec["axes"][collapsed])
        row["n"] = replicates
        for field in fields:
            values = groups[key][field]
            for aggregate in aggregates:
                column = f"{field}_{aggregate}"
                if not values:
                    row[column] = ""
                else:
                    row[column] = round(
                        float(AGGREGATES[aggregate](values)), 6
                    )
        rows.append(row)
    return headers, rows


def render_csv(headers: Sequence[str], rows: Sequence[Row]) -> str:
    """The report table as CSV, column order preserved."""
    import csv

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(headers), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({header: row.get(header, "") for header in headers})
    return buffer.getvalue()


def render_html(
    title: str, headers: Sequence[str], rows: Sequence[Row]
) -> str:
    """The report table as a self-contained static HTML page."""
    out = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{html.escape(title)}</title>",
        "<style>table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:4px 8px;"
        "font:13px monospace;text-align:right}"
        "th{background:#eee}td:first-child,th:first-child"
        "{text-align:left}</style>",
        "</head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<table><thead><tr>",
    ]
    out += [f"<th>{html.escape(str(header))}</th>" for header in headers]
    out.append("</tr></thead><tbody>")
    for row in rows:
        out.append("<tr>")
        out += [
            f"<td>{html.escape(str(row.get(header, '')))}</td>"
            for header in headers
        ]
        out.append("</tr>")
    out.append("</tbody></table></body></html>")
    return "\n".join(out) + "\n"
