"""Deterministic expansion of a ``sweep/v1`` spec into simulation
cells.

The expander is a pure function of the canonical spec: the same spec
produces the same :class:`SweepPoint` list — same cells, same order —
in every process on every machine, which is what lets a sweep run
through ``--jobs N``, the service or the cluster and still produce
bytes identical to a sequential run (the engine merges cell results in
plan order; see :func:`repro.engine.runner.run_cells`).

Expansion order
---------------

* Axes iterate in a **canonical priority order** that is independent
  of their declaration order in the document: ``workload`` outermost,
  then ``input``, then every other axis alphabetically.  Reordering
  the ``axes`` object therefore never changes the expansion.
* The *outer* axes are those relevant to **every** arm; they form the
  outermost loops.  Within one outer combination the arms run in
  **declared order**, and each arm iterates its remaining (arm-local)
  axes innermost, again in canonical priority order.
* Values *within* one axis keep their declared list order — the order
  is part of the study's meaning (e.g. ``top_values: [7, 3, 1]``).

An axis is *relevant* to an arm when the arm references it explicitly
(``"$axis"`` / ``"$axis.component"`` in its ``cell`` mapping) or when
the axis name implies a SimCell field the arm's kind binds implicitly
(see :data:`repro.sweeps.spec.IMPLICIT_FIELDS`) and the arm does not
override that field explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.cells import SimCell
from repro.sweeps.spec import (
    AXIS_FIELDS,
    IMPLICIT_FIELDS,
    SweepSpecError,
    is_experiment_sweep,
)

#: Axis names iterated outermost, in this order; all other axes follow
#: alphabetically.
_PRIORITY_AXES = ("workload", "input")


@dataclass(frozen=True)
class SweepPoint:
    """One expanded simulation of a sweep.

    ``coords`` maps each axis relevant to the point's arm to the value
    it took (object-axis values stay dicts).  ``cell`` is the SimCell
    the point executes.
    """

    index: int
    arm: str
    kind: str
    coords: Dict[str, object]
    cell: SimCell


def axis_order(axes: Dict[str, List[object]]) -> List[str]:
    """All axis names in canonical iteration priority order."""
    ranked = sorted(set(axes) - set(_PRIORITY_AXES))
    return [name for name in _PRIORITY_AXES if name in axes] + ranked


def _referenced_axes(arm: Dict[str, object]) -> Dict[str, str]:
    """``field -> axis(.component)`` for the arm's explicit references."""
    refs = {}
    for field, value in arm.get("cell", {}).items():
        if isinstance(value, str) and value.startswith("$"):
            refs[field] = value[1:]
    return refs


def relevant_axes(
    spec: Dict[str, object], arm: Dict[str, object]
) -> List[str]:
    """The axes an arm binds, in canonical priority order."""
    axes: Dict[str, List[object]] = spec["axes"]
    explicit = set(arm.get("cell", {}))
    bound = {
        reference.partition(".")[0]
        for reference in _referenced_axes(arm).values()
    }
    implicit_fields = IMPLICIT_FIELDS[arm["kind"]]
    for axis in axes:
        field = AXIS_FIELDS.get(axis)
        if field is None or field in explicit:
            continue
        if field in implicit_fields:
            bound.add(axis)
    return [axis for axis in axis_order(axes) if axis in bound]


def _resolve(
    field: str, value: object, coords: Dict[str, object]
) -> object:
    """A cell-field value: literal, or looked up from the coordinates."""
    if isinstance(value, str) and value.startswith("$"):
        axis, _, component = value[1:].partition(".")
        resolved = coords[axis]
        if component:
            resolved = resolved[component]
        return resolved
    return value


def _build_cell(
    arm: Dict[str, object], coords: Dict[str, object]
) -> SimCell:
    fields: Dict[str, object] = {"kind": arm["kind"]}
    explicit: Dict[str, object] = arm.get("cell", {})
    implicit_fields = IMPLICIT_FIELDS[arm["kind"]]
    for axis, field in AXIS_FIELDS.items():
        if field in explicit:
            continue
        if axis in coords and field in implicit_fields:
            fields[field] = coords[axis]
    for field in sorted(explicit):
        fields[field] = _resolve(field, explicit[field], coords)
    for field in ("workload", "input_name"):
        value = fields.get(field)
        if not isinstance(value, str):
            raise SweepSpecError(
                f"arm {arm['name']!r} resolves no {field} "
                "(bind a workload/input axis or set it in the arm)"
            )
    for field, value in fields.items():
        if field in ("workload", "input_name", "kind"):
            continue
        if not isinstance(value, int) or isinstance(value, bool):
            raise SweepSpecError(
                f"arm {arm['name']!r} field {field!r} resolved to "
                f"non-integer {value!r}"
            )
    return SimCell(**fields)


def expand(spec: Dict[str, object]) -> List[SweepPoint]:
    """Expand a normalised cell-sweep spec into its plan-order points.

    Experiment-wrapper sweeps have no cell expansion; asking for one
    is a caller error.
    """
    if is_experiment_sweep(spec):
        raise SweepSpecError(
            f"sweep {spec['name']!r} wraps experiment "
            f"{spec['arms'][0]['experiment_id']!r} and has no cell expansion"
        )
    axes: Dict[str, List[object]] = spec["axes"]
    arms: Sequence[Dict[str, object]] = spec["arms"]
    per_arm = {arm["name"]: relevant_axes(spec, arm) for arm in arms}
    unused = [
        axis
        for axis in axis_order(axes)
        if all(axis not in relevant for relevant in per_arm.values())
    ]
    if unused:
        raise SweepSpecError(
            f"axes {unused} bind no arm (name them after a SimCell field "
            "or reference them from an arm's cell mapping)"
        )
    outer = [
        axis
        for axis in axis_order(axes)
        if all(axis in relevant for relevant in per_arm.values())
    ]
    points: List[SweepPoint] = []
    for outer_values in product(*(axes[axis] for axis in outer)):
        outer_coords = dict(zip(outer, outer_values))
        for arm in arms:
            inner = [
                axis for axis in per_arm[arm["name"]] if axis not in outer
            ]
            for inner_values in product(*(axes[axis] for axis in inner)):
                coords = dict(outer_coords)
                coords.update(zip(inner, inner_values))
                points.append(
                    SweepPoint(
                        index=len(points),
                        arm=arm["name"],
                        kind=arm["kind"],
                        coords=coords,
                        cell=_build_cell(arm, coords),
                    )
                )
    return points


def expand_cells(spec: Dict[str, object]) -> List[SimCell]:
    """Just the cells, plan order — the experiment integration point
    (:meth:`repro.experiments.base.Experiment.plan_cells`)."""
    return [point.cell for point in expand(spec)]


def unique_cells(points: Sequence[SweepPoint]) -> List[SimCell]:
    """Distinct cells in first-occurrence order.

    Sweeps may expand the same cell under several arms or coordinate
    combinations; executing the distinct set once and fanning the
    results back out is what the service's result-store memo does
    cluster-wide, applied locally.
    """
    seen = set()
    ordered: List[SimCell] = []
    for point in points:
        if point.cell not in seen:
            seen.add(point.cell)
            ordered.append(point.cell)
    return ordered


def replicate_axis(spec: Dict[str, object]) -> Optional[str]:
    """The axis aggregation collapses: the one binding ``input_name``.

    By convention this is the axis named ``input`` (each workload input
    carries its own data seed, so inputs are the replicate dimension).
    Returns ``None`` when the spec binds no input axis or it has a
    single value (nothing to aggregate across).
    """
    axes: Dict[str, List[object]] = spec["axes"]
    if "input" in axes and len(axes["input"]) > 1:
        return "input"
    return None


def coord_columns(spec: Dict[str, object]) -> List[Tuple[str, Optional[str]]]:
    """Report coordinate columns, canonical order: ``(axis, component)``
    pairs, with ``component=None`` for scalar axes.  The replicate axis
    is excluded (it is aggregated away)."""
    from repro.sweeps.spec import axis_components

    axes: Dict[str, List[object]] = spec["axes"]
    collapsed = replicate_axis(spec)
    columns: List[Tuple[str, Optional[str]]] = []
    for axis in axis_order(axes):
        if axis == collapsed:
            continue
        components = axis_components(axes, axis)
        if components is None:
            columns.append((axis, None))
        else:
            columns.extend((axis, component) for component in components)
    return columns
