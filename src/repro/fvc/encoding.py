"""The k-bit frequent-value encoding (paper §3, Fig. 7).

With ``code_bits`` bits per word, ``2**code_bits`` codes exist; the
all-ones code is reserved to mean *infrequent value here*, leaving
``2**code_bits - 1`` codes for actual frequent values.  The paper's
configurations:

====== ================== =============================
bits   frequent values    paper usage
====== ================== =============================
1      1                  "top 1" FVC
2      3                  "top 3" FVC
3      7                  "top 7" FVC (headline results)
====== ================== =============================

The encoding compresses a 32-bit word to ``code_bits`` bits while
preserving random access: word *i* of a line is always subfield *i*.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.words import WORD_MASK


class FrequentValueEncoder:
    """Bidirectional map between frequent values and their short codes.

    Parameters
    ----------
    values:
        The frequent values, most frequent first.  At most
        ``capacity(code_bits)`` of them; duplicates are rejected.
    code_bits:
        Width of each code subfield (1–3 in the paper; up to 8 allowed
        here for ablation studies).
    """

    def __init__(self, values: Sequence[int], code_bits: int) -> None:
        if not 1 <= code_bits <= 8:
            raise ConfigurationError(f"code_bits={code_bits} outside 1..8")
        limit = self.capacity(code_bits)
        values = [v & WORD_MASK for v in values]
        if len(values) > limit:
            raise ConfigurationError(
                f"{len(values)} values exceed the {limit}-value capacity "
                f"of a {code_bits}-bit code"
            )
        if len(set(values)) != len(values):
            raise ConfigurationError("frequent value list contains duplicates")
        self.code_bits = code_bits
        #: The reserved "not a frequent value" code (all ones).
        self.infrequent_code = (1 << code_bits) - 1
        self._decode: List[int] = list(values)
        self._encode: Dict[int, int] = {
            value: code for code, value in enumerate(values)
        }

    # Construction helpers -------------------------------------------------
    @staticmethod
    def capacity(code_bits: int) -> int:
        """How many frequent values a ``code_bits``-bit code can hold."""
        return (1 << code_bits) - 1

    @classmethod
    def for_top_values(
        cls, ranked_values: Iterable[int], code_bits: int
    ) -> "FrequentValueEncoder":
        """Build from a ranked value list, keeping as many as fit.

        This is the paper's flow: profile the program, rank values by
        access count, keep the top ``2**code_bits - 1``.
        """
        limit = cls.capacity(code_bits)
        kept: List[int] = []
        for value in ranked_values:
            value &= WORD_MASK
            if value not in kept:
                kept.append(value)
            if len(kept) == limit:
                break
        return cls(kept, code_bits)

    # Core API ---------------------------------------------------------
    @property
    def values(self) -> Tuple[int, ...]:
        """The frequent values in code order."""
        return tuple(self._decode)

    @property
    def num_values(self) -> int:
        """How many frequent values are actually registered."""
        return len(self._decode)

    def is_frequent(self, value: int) -> bool:
        """True when ``value`` has a code."""
        return value in self._encode

    def encode(self, value: int) -> int:
        """Code for ``value``; the infrequent code when it has none."""
        return self._encode.get(value, self.infrequent_code)

    def decode(self, code: int) -> int:
        """Value for a frequent ``code``.

        Raises ``ConfigurationError`` for the infrequent code or an
        unassigned code — callers must test against
        :attr:`infrequent_code` first, mirroring the hardware's valid-bit
        check.
        """
        if code == self.infrequent_code or not 0 <= code < len(self._decode):
            raise ConfigurationError(f"code {code} does not name a frequent value")
        return self._decode[code]

    # Line-granular helpers ------------------------------------------------
    def encode_line(self, words: Sequence[int]) -> List[int]:
        """Encode a whole line of words into a list of codes."""
        get = self._encode.get
        infrequent = self.infrequent_code
        return [get(word, infrequent) for word in words]

    def merge_line(self, memory_words: List[int], codes: Sequence[int]) -> None:
        """Overlay the frequent values named by ``codes`` onto a line
        fetched from memory (the FVC→DMC merge of §3), in place."""
        infrequent = self.infrequent_code
        decode = self._decode
        for index, code in enumerate(codes):
            if code != infrequent:
                memory_words[index] = decode[code]

    def count_frequent(self, codes: Sequence[int]) -> int:
        """Number of non-infrequent codes in a line."""
        infrequent = self.infrequent_code
        return sum(1 for code in codes if code != infrequent)

    def __repr__(self) -> str:
        rendered = ", ".join(format(v, "x") for v in self._decode)
        return f"FrequentValueEncoder({self.code_bits}b: [{rendered}])"
