"""The raw value-centric FVC array (paper §3, Fig. 8).

Each entry holds a tag plus one ``code_bits``-wide subfield per word of
the corresponding DMC line.  A subfield either names one of the frequent
values or carries the reserved *infrequent* code.  Per-word dirty bits
track values written while resident (FVC write hits), which must be
flushed to memory on eviction.

This module is the passive storage structure; the §3 transfer protocol
between DMC, FVC and memory lives in :mod:`repro.fvc.system`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.words import is_power_of_two
from repro.fvc.encoding import FrequentValueEncoder

_INVALID = -1


class FrequentValueCacheArray:
    """Direct-mapped array of compressed line entries.

    Parameters
    ----------
    entries:
        Number of entries (power of two; the paper sweeps 64–4096).
    words_per_line:
        Subfields per entry — equals the DMC's words per line.
    encoder:
        The frequent-value code shared with the rest of the system.
    """

    def __init__(
        self,
        entries: int,
        words_per_line: int,
        encoder: FrequentValueEncoder,
    ) -> None:
        if not is_power_of_two(entries):
            raise ConfigurationError(f"FVC entries={entries} must be a power of two")
        if not is_power_of_two(words_per_line):
            raise ConfigurationError(
                f"words_per_line={words_per_line} must be a power of two"
            )
        self.entries = entries
        self.words_per_line = words_per_line
        self.encoder = encoder
        self._mask = entries - 1
        self._tags: List[int] = [_INVALID] * entries
        # Parallel per-entry lists of word codes and per-word dirty flags.
        self._codes: List[Optional[List[int]]] = [None] * entries
        self._dirty: List[Optional[List[bool]]] = [None] * entries
        # Occupancy counters for the Fig. 11 compression study.
        self.valid_entries = 0
        self.frequent_words = 0

    # Address mapping ------------------------------------------------------
    def index_of(self, line_addr: int) -> int:
        """Entry index for a line address (direct mapping)."""
        return line_addr & self._mask

    # Lookup -----------------------------------------------------------
    def probe(self, line_addr: int) -> bool:
        """True when ``line_addr`` is resident."""
        return self._tags[line_addr & self._mask] == line_addr

    def codes_for(self, line_addr: int) -> Optional[List[int]]:
        """The entry's code list when resident, else ``None``."""
        index = line_addr & self._mask
        if self._tags[index] == line_addr:
            return self._codes[index]
        return None

    def read_word(self, line_addr: int, word_index: int) -> Optional[int]:
        """Decoded value of one word, or ``None`` when not readable
        (entry absent, or the word carries the infrequent code)."""
        index = line_addr & self._mask
        if self._tags[index] != line_addr:
            return None
        code = self._codes[index][word_index]  # type: ignore[index]
        if code == self.encoder.infrequent_code:
            return None
        return self.encoder.decode(code)

    def write_word(self, line_addr: int, word_index: int, value: int) -> bool:
        """FVC write hit: store ``value``'s code if the entry is resident
        and ``value`` is frequent.  Returns True on success."""
        index = line_addr & self._mask
        if self._tags[index] != line_addr:
            return False
        code = self.encoder.encode(value)
        if code == self.encoder.infrequent_code:
            return False
        codes = self._codes[index]
        if codes[word_index] == self.encoder.infrequent_code:  # type: ignore[index]
            self.frequent_words += 1
        codes[word_index] = code  # type: ignore[index]
        self._dirty[index][word_index] = True  # type: ignore[index]
        return True

    # Installation / eviction ------------------------------------------
    def install(
        self,
        line_addr: int,
        codes: List[int],
        dirty: Optional[List[bool]] = None,
    ) -> Optional[Tuple[int, List[int], List[bool]]]:
        """Install an entry, returning the displaced one (if any) as
        ``(line_addr, codes, dirty)`` so the caller can flush it."""
        if len(codes) != self.words_per_line:
            raise ConfigurationError(
                f"install of {len(codes)} codes into "
                f"{self.words_per_line}-word entries"
            )
        index = line_addr & self._mask
        displaced = self._extract(index)
        self._tags[index] = line_addr
        self._codes[index] = codes
        self._dirty[index] = dirty if dirty is not None else [False] * len(codes)
        self.valid_entries += 1
        self.frequent_words += self.encoder.count_frequent(codes)
        return displaced

    def invalidate(self, line_addr: int) -> Optional[Tuple[int, List[int], List[bool]]]:
        """Invalidate ``line_addr`` if resident, returning the entry."""
        index = line_addr & self._mask
        if self._tags[index] != line_addr:
            return None
        return self._extract(index)

    def _extract(self, index: int) -> Optional[Tuple[int, List[int], List[bool]]]:
        tag = self._tags[index]
        if tag == _INVALID:
            return None
        codes = self._codes[index]
        dirty = self._dirty[index]
        self._tags[index] = _INVALID
        self._codes[index] = None
        self._dirty[index] = None
        self.valid_entries -= 1
        self.frequent_words -= self.encoder.count_frequent(codes)  # type: ignore[arg-type]
        return tag, codes, dirty  # type: ignore[return-value]

    # Occupancy / storage ------------------------------------------------
    @property
    def frequent_fraction(self) -> float:
        """Mean fraction of frequent-coded words across valid entries
        (instantaneous; Fig. 11 time-averages this)."""
        if not self.valid_entries:
            return 0.0
        return self.frequent_words / (self.valid_entries * self.words_per_line)

    def resident_line_addresses(self) -> List[int]:
        """Line addresses of all valid entries (for invariant checks)."""
        return [tag for tag in self._tags if tag != _INVALID]

    def storage_bits(self, address_bits: int = 32) -> int:
        """Total SRAM bits: per entry one valid bit, the tag, and
        ``words_per_line`` code subfields plus their dirty bits."""
        index_bits = (self.entries - 1).bit_length()
        line_offset_bits = (self.words_per_line * 4 - 1).bit_length()
        tag_bits = address_bits - index_bits - line_offset_bits
        per_entry = 1 + tag_bits + self.words_per_line * (self.encoder.code_bits + 1)
        return self.entries * per_entry

    def data_storage_bytes(self) -> int:
        """Data-array bytes only (the paper's "0.375 KB FVC" figures
        count ``entries × words × code_bits``)."""
        return (self.entries * self.words_per_line * self.encoder.code_bits + 7) // 8


class SetAssociativeFvcArray:
    """Set-associative (LRU) variant of the FVC array (extension).

    The paper's FVC is direct-mapped; this variant explores whether the
    FVC itself benefits from associativity (e.g. when hot lines a cache
    size apart contend for one FVC entry, as the conflict pairs of the
    m88ksim/perl analogs do).  Same interface as
    :class:`FrequentValueCacheArray`, so :class:`repro.fvc.system.FvcSystem`
    can use either.
    """

    def __init__(
        self,
        entries: int,
        words_per_line: int,
        encoder: FrequentValueEncoder,
        ways: int = 2,
    ) -> None:
        if not is_power_of_two(entries):
            raise ConfigurationError(f"FVC entries={entries} must be a power of two")
        if not is_power_of_two(words_per_line):
            raise ConfigurationError(
                f"words_per_line={words_per_line} must be a power of two"
            )
        if not is_power_of_two(ways) or ways > entries:
            raise ConfigurationError(f"bad FVC associativity {ways}")
        self.entries = entries
        self.words_per_line = words_per_line
        self.encoder = encoder
        self.ways = ways
        self._num_sets = entries // ways
        self._mask = self._num_sets - 1
        # Per-set MRU-first lists of [tag, codes, dirty].
        self._sets: List[List[list]] = [[] for _ in range(self._num_sets)]
        self.valid_entries = 0
        self.frequent_words = 0

    # Lookup -----------------------------------------------------------
    def _find(self, line_addr: int) -> Optional[list]:
        bucket = self._sets[line_addr & self._mask]
        for position, entry in enumerate(bucket):
            if entry[0] == line_addr:
                if position:
                    del bucket[position]
                    bucket.insert(0, entry)
                return entry
        return None

    def probe(self, line_addr: int) -> bool:
        """True when ``line_addr`` is resident."""
        return self._find(line_addr) is not None

    def codes_for(self, line_addr: int) -> Optional[List[int]]:
        """The entry's code list when resident, else ``None``."""
        entry = self._find(line_addr)
        return entry[1] if entry is not None else None

    def read_word(self, line_addr: int, word_index: int) -> Optional[int]:
        """Decoded value of one word, or ``None`` when not readable."""
        entry = self._find(line_addr)
        if entry is None:
            return None
        code = entry[1][word_index]
        if code == self.encoder.infrequent_code:
            return None
        return self.encoder.decode(code)

    def write_word(self, line_addr: int, word_index: int, value: int) -> bool:
        """FVC write hit; returns True when the value was frequent and
        the entry resident."""
        entry = self._find(line_addr)
        if entry is None:
            return False
        code = self.encoder.encode(value)
        if code == self.encoder.infrequent_code:
            return False
        if entry[1][word_index] == self.encoder.infrequent_code:
            self.frequent_words += 1
        entry[1][word_index] = code
        entry[2][word_index] = True
        return True

    # Installation / eviction ------------------------------------------
    def install(
        self,
        line_addr: int,
        codes: List[int],
        dirty: Optional[List[bool]] = None,
    ) -> Optional[Tuple[int, List[int], List[bool]]]:
        """Install an entry; returns the LRU entry displaced (if any)."""
        if len(codes) != self.words_per_line:
            raise ConfigurationError(
                f"install of {len(codes)} codes into "
                f"{self.words_per_line}-word entries"
            )
        displaced = self.invalidate(line_addr)
        bucket = self._sets[line_addr & self._mask]
        if displaced is None and len(bucket) >= self.ways:
            victim = bucket.pop()
            self.valid_entries -= 1
            self.frequent_words -= self.encoder.count_frequent(victim[1])
            displaced = (victim[0], victim[1], victim[2])
        bucket.insert(
            0,
            [
                line_addr,
                codes,
                dirty if dirty is not None else [False] * len(codes),
            ],
        )
        self.valid_entries += 1
        self.frequent_words += self.encoder.count_frequent(codes)
        return displaced

    def invalidate(self, line_addr: int) -> Optional[Tuple[int, List[int], List[bool]]]:
        """Invalidate ``line_addr`` if resident, returning the entry."""
        bucket = self._sets[line_addr & self._mask]
        for position, entry in enumerate(bucket):
            if entry[0] == line_addr:
                del bucket[position]
                self.valid_entries -= 1
                self.frequent_words -= self.encoder.count_frequent(entry[1])
                return entry[0], entry[1], entry[2]
        return None

    # Occupancy ----------------------------------------------------------
    @property
    def frequent_fraction(self) -> float:
        """Mean fraction of frequent-coded words across valid entries."""
        if not self.valid_entries:
            return 0.0
        return self.frequent_words / (self.valid_entries * self.words_per_line)

    def resident_line_addresses(self) -> List[int]:
        """Line addresses of all valid entries."""
        return [entry[0] for bucket in self._sets for entry in bucket]

    def data_storage_bytes(self) -> int:
        """Data-array bytes (same arithmetic as the direct-mapped FVC)."""
        return (self.entries * self.words_per_line * self.encoder.code_bits + 7) // 8
