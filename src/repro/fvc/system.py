"""The combined conventional-cache + FVC system (paper §3, Figs. 6 and 8).

Protocol summary, as implemented here:

* Both structures are probed in parallel; an access hits overall iff it
  hits in exactly one of them (contents are exclusive by construction).
* **Main-cache hit** — behaves exactly as without the FVC.
* **FVC read hit** — tag match and the word's code names a frequent
  value; the value is decoded and returned.
* **FVC write hit** — tag match and the written value is frequent; the
  word's code is replaced and the word marked dirty.
* **Tag match, infrequent word** — a miss: the line is fetched from
  memory, the FVC's (possibly newer) frequent words are merged over it,
  the FVC entry dies, and the merged line enters the main cache.
* **Miss in both, write of a frequent value** — the paper's special
  case: the line is allocated *in the FVC* with only the written word's
  code valid, avoiding the memory fetch entirely.  It still counts as a
  miss (the paper's "eliminates or delays" future misses).  Default-off
  in this reproduction; see :class:`FvcSystemConfig`.
* **Miss in both, otherwise** — a conventional fill.  The displaced
  main-cache line is written back if dirty, and the identities of its
  frequent-valued words enter the FVC.

Accounting matches the paper (DESIGN.md "fidelity notes"): miss rate
counts overall misses; traffic counts words exchanged with memory —
whole lines for fills and write-backs, and only the dirty words for FVC
entry flushes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.mainmem import MainMemory
from repro.cache.stats import CacheStats
from repro.fvc.cache import FrequentValueCacheArray, SetAssociativeFvcArray
from repro.fvc.encoding import FrequentValueEncoder


@dataclass(frozen=True)
class FvcSystemConfig:
    """Behavioural switches (defaults reproduce the paper's design).

    Attributes
    ----------
    write_allocate_frequent:
        Allocate a write of a frequent value directly into the FVC on a
        double miss (§3's "second situation").  The paper reports this
        exception as performance-neutral-or-positive on SPEC95; on the
        analog suite's allocation-heavy write streams it *adds* misses
        (a fresh line whose first written word is frequent but whose
        later words are not costs two misses instead of one), so the
        default here is off and the paper's exact rule is quantified by
        the dedicated ablation benchmark (see DESIGN.md §5).
    insert_empty_lines:
        Insert a line into the FVC on eviction even when none of its
        words is frequent.  The paper leaves this implicit; inserting
        all-infrequent entries only pollutes the FVC, so the default is
        off (see DESIGN.md §5).
    exclusive:
        Keep contents exclusive (paper design).  The inclusive ablation
        leaves the FVC entry valid when its line is promoted to the main
        cache, spending FVC capacity for no extra hits.
    verify_values:
        Cross-check every value the system returns for a load against
        the traced value — an end-to-end consistency oracle used by the
        test suite (slower; off in experiments).
    occupancy_sample_interval:
        Accesses between Fig. 11 occupancy samples (0 disables).
    """

    write_allocate_frequent: bool = False
    insert_empty_lines: bool = False
    exclusive: bool = True
    verify_values: bool = False
    occupancy_sample_interval: int = 1024


class FvcSystem:
    """A write-back main cache (direct-mapped or set-associative, LRU)
    augmented with a direct-mapped frequent value cache.

    Parameters
    ----------
    geometry:
        Main-cache geometry; ``geometry.ways`` may exceed 1 (Fig. 14).
    fvc_entries:
        Number of FVC entries (64–4096 in the paper's sweep).
    encoder:
        The frequent-value code to exploit (1/2/3 bits for top 1/3/7).
    config:
        Optional :class:`FvcSystemConfig`.
    fvc_ways:
        FVC associativity (1 = the paper's direct-mapped organisation;
        >1 selects the set-associative extension array).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fvc_entries: int,
        encoder: FrequentValueEncoder,
        config: Optional[FvcSystemConfig] = None,
        fvc_ways: int = 1,
    ) -> None:
        self.geometry = geometry
        self.encoder = encoder
        self.config = config or FvcSystemConfig()
        self.memory = MainMemory()
        if fvc_ways == 1:
            self.fvc = FrequentValueCacheArray(
                entries=fvc_entries,
                words_per_line=geometry.words_per_line,
                encoder=encoder,
            )
        else:
            # Extension beyond the paper: an associative FVC array.
            self.fvc = SetAssociativeFvcArray(
                entries=fvc_entries,
                words_per_line=geometry.words_per_line,
                encoder=encoder,
                ways=fvc_ways,
            )
        self.stats = CacheStats()
        # Hit breakdown.
        self.main_hits = 0
        self.fvc_read_hits = 0
        self.fvc_write_hits = 0
        self.fvc_write_allocates = 0
        self.fvc_infrequent_misses = 0
        # Main cache: per-set MRU-first lists of [line_addr, dirty, data].
        self._sets: List[List[list]] = [[] for _ in range(geometry.num_sets)]
        #: When a list, receives the line address of every memory
        #: write-back (dirty main-cache victims and FVC entry flushes) —
        #: the hierarchy composition reads it to direct L2 writes.
        self.victim_log: Optional[List[int]] = None
        # Fig. 11 occupancy accumulator.
        self._occupancy_sum = 0.0
        self._occupancy_samples = 0
        self._access_counter = 0

    # ------------------------------------------------------------------
    # The access protocol
    # ------------------------------------------------------------------
    def access(self, op: int, byte_addr: int, value: int) -> bool:
        """Simulate one access; returns True on an overall hit.

        ``value`` is the traced value: the value returned for a load and
        the value written for a store (trace-driven simulation has both).
        """
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        word_index = (byte_addr >> 2) & geom.word_mask
        stats = self.stats
        config = self.config

        self._access_counter += 1
        interval = config.occupancy_sample_interval
        if interval and self._access_counter % interval == 0:
            self._occupancy_sum += self.fvc.frequent_fraction
            self._occupancy_samples += 1

        # --- Main-cache probe -----------------------------------------
        entries = self._sets[line_addr & geom.set_mask]
        for position, entry in enumerate(entries):
            if entry[0] == line_addr:
                if position:
                    del entries[position]
                    entries.insert(0, entry)
                if op:
                    entry[2][word_index] = value
                    entry[1] = 1
                    stats.write_hits += 1
                else:
                    if config.verify_values and entry[2][word_index] != value:
                        raise AssertionError(
                            f"main-cache value mismatch at {byte_addr:#x}: "
                            f"cached {entry[2][word_index]:#x}, traced {value:#x}"
                        )
                    stats.read_hits += 1
                self.main_hits += 1
                return True

        return self._miss(op, line_addr, word_index, value)

    def _miss(
        self, op: int, line_addr: int, word_index: int, value: int
    ) -> bool:
        """Main-cache miss: FVC probe, then the §3 miss protocol.

        Shared by :meth:`access` and :meth:`simulate_batch` so both
        replay paths are bit-identical.  Returns True on an FVC hit.
        """
        geom = self.geometry
        stats = self.stats
        config = self.config

        # --- FVC probe --------------------------------------------------
        fvc = self.fvc
        codes = fvc.codes_for(line_addr)
        if codes is not None:
            infrequent = self.encoder.infrequent_code
            if op == 0:
                code = codes[word_index]
                if code != infrequent:
                    if config.verify_values:
                        decoded = self.encoder.decode(code)
                        if decoded != value:
                            addr = (line_addr << geom.line_shift) + word_index * 4
                            raise AssertionError(
                                f"FVC value mismatch at {addr:#x}: "
                                f"decoded {decoded:#x}, traced {value:#x}"
                            )
                    stats.read_hits += 1
                    self.fvc_read_hits += 1
                    return True
            else:
                write_code = self.encoder.encode(value)
                if write_code != infrequent:
                    fvc.write_word(line_addr, word_index, value)
                    stats.write_hits += 1
                    self.fvc_write_hits += 1
                    return True
            # Tag match but the word involved is infrequent: fetch the
            # line, merge the FVC's frequent words over it, promote to
            # the main cache, and retire the FVC entry.  If any merged
            # word was written while FVC-resident, memory is stale for
            # it, so the promoted line must carry the dirty bit.
            self.fvc_infrequent_misses += 1
            line = self.memory.read_line(line_addr, geom.words_per_line)
            self.encoder.merge_line(line, codes)
            promoted_dirty = False
            if config.exclusive:
                entry = fvc.invalidate(line_addr)
                if entry is not None:
                    promoted_dirty = any(entry[2])
            self._fill_main(line_addr, line, dirty=promoted_dirty)
            self._finish_miss(op, line_addr, word_index, value)
            return False

        # --- Miss in both ----------------------------------------------
        if (
            op
            and config.write_allocate_frequent
            and self.encoder.is_frequent(value)
        ):
            # Allocate the write into the FVC without touching memory.
            new_codes = [self.encoder.infrequent_code] * geom.words_per_line
            new_codes[word_index] = self.encoder.encode(value)
            dirty = [False] * geom.words_per_line
            dirty[word_index] = True
            displaced = fvc.install(line_addr, new_codes, dirty)
            if displaced is not None:
                self._flush_fvc_entry(displaced)
            self.fvc_write_allocates += 1
            stats.write_misses += 1
            return False

        line = self.memory.read_line(line_addr, geom.words_per_line)
        self._fill_main(line_addr, line)
        self._finish_miss(op, line_addr, word_index, value)
        return False

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace of ``(op, addr, value)`` records
        through the per-access API."""
        access = self.access
        for op, byte_addr, value in records:
            access(op, byte_addr, value)
        return self.stats

    def simulate_batch(
        self, records: Iterable[Tuple[int, int, int]]
    ) -> CacheStats:
        """Replay a whole trace through the hot-loop fast path.

        Bit-identical to :meth:`simulate`: the dominant case — a main-
        cache hit — is handled inline with geometry, set storage, the
        occupancy-sampling counter and the hit counters all in locals;
        everything else funnels into the same :meth:`_miss` the
        per-access API uses.
        """
        geom = self.geometry
        line_shift = geom.line_shift
        set_mask = geom.set_mask
        word_mask = geom.word_mask
        sets = self._sets
        config = self.config
        interval = config.occupancy_sample_interval
        verify = config.verify_values
        fvc = self.fvc
        miss = self._miss
        counter = self._access_counter
        read_hits = write_hits = main_hits = 0
        for op, byte_addr, value in records:
            counter += 1
            if interval and counter % interval == 0:
                self._occupancy_sum += fvc.frequent_fraction
                self._occupancy_samples += 1
            line_addr = byte_addr >> line_shift
            entries = sets[line_addr & set_mask]
            for position, entry in enumerate(entries):
                if entry[0] == line_addr:
                    if position:
                        del entries[position]
                        entries.insert(0, entry)
                    word_index = (byte_addr >> 2) & word_mask
                    if op:
                        entry[2][word_index] = value
                        entry[1] = 1
                        write_hits += 1
                    else:
                        if verify and entry[2][word_index] != value:
                            raise AssertionError(
                                f"main-cache value mismatch at {byte_addr:#x}: "
                                f"cached {entry[2][word_index]:#x}, "
                                f"traced {value:#x}"
                            )
                        read_hits += 1
                    main_hits += 1
                    break
            else:
                miss(op, line_addr, (byte_addr >> 2) & word_mask, value)
        self._access_counter = counter
        self.main_hits += main_hits
        stats = self.stats
        stats.read_hits += read_hits
        stats.write_hits += write_hits
        return stats

    # ------------------------------------------------------------------
    # Fill / eviction plumbing
    # ------------------------------------------------------------------
    def _finish_miss(
        self, op: int, line_addr: int, word_index: int, value: int
    ) -> None:
        """Apply the missing access to the just-filled MRU line."""
        entry = self._sets[line_addr & self.geometry.set_mask][0]
        if op:
            entry[2][word_index] = value
            entry[1] = 1
            self.stats.write_misses += 1
        else:
            if self.config.verify_values and entry[2][word_index] != value:
                raise AssertionError(
                    f"fill value mismatch at line {line_addr:#x} word "
                    f"{word_index}: filled {entry[2][word_index]:#x}, "
                    f"traced {value:#x}"
                )
            self.stats.read_misses += 1

    def _fill_main(
        self, line_addr: int, data: List[int], dirty: bool = False
    ) -> None:
        """Install ``data`` as the MRU line, displacing the LRU line of a
        full set into memory (if dirty) and the FVC (frequent words).

        ``dirty`` pre-marks the installed line — used when it carries
        merged FVC words that memory does not have yet."""
        geom = self.geometry
        stats = self.stats
        entries = self._sets[line_addr & geom.set_mask]
        if len(entries) >= geom.ways:
            victim = entries.pop()
            victim_addr, victim_dirty, victim_data = victim
            if victim_dirty:
                self.memory.write_line(victim_addr, victim_data)
                stats.writebacks += 1
                stats.writeback_words += geom.words_per_line
                if self.victim_log is not None:
                    self.victim_log.append(victim_addr)
            self._insert_into_fvc(victim_addr, victim_data)
        entries.insert(0, [line_addr, 1 if dirty else 0, data])
        stats.fills += 1
        stats.fill_words += geom.words_per_line

    def _insert_into_fvc(self, line_addr: int, data: List[int]) -> None:
        """Record the frequent-word identities of an evicted line."""
        codes = self.encoder.encode_line(data)
        if not self.config.insert_empty_lines:
            if self.encoder.count_frequent(codes) == 0:
                return
        displaced = self.fvc.install(line_addr, codes)
        if displaced is not None:
            self._flush_fvc_entry(displaced)

    def _flush_fvc_entry(
        self, entry: Tuple[int, List[int], List[bool]]
    ) -> None:
        """Write an evicted FVC entry's dirty words back to memory.

        Only words written while resident differ from memory, so the
        flush is word-granular — one of the traffic savings of the
        value-centric design.
        """
        line_addr, codes, dirty = entry
        base = line_addr << self.geometry.line_shift
        flushed = 0
        decode = self.encoder.decode
        for word_index, is_dirty in enumerate(dirty):
            if is_dirty:
                self.memory.write_word(
                    base + word_index * 4, decode(codes[word_index])
                )
                flushed += 1
        if flushed:
            self.stats.writebacks += 1
            self.stats.writeback_words += flushed
            if self.victim_log is not None:
                self.victim_log.append(line_addr)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fvc_hits(self) -> int:
        """Hits provided by the FVC (read + write)."""
        return self.fvc_read_hits + self.fvc_write_hits

    @property
    def mean_fvc_frequent_fraction(self) -> float:
        """Time-averaged fraction of frequent words in valid FVC lines
        (the Fig. 11 measurement)."""
        if not self._occupancy_samples:
            return self.fvc.frequent_fraction
        return self._occupancy_sum / self._occupancy_samples

    def main_resident_lines(self) -> List[int]:
        """Line addresses resident in the main cache."""
        return [
            entry[0] for entries in self._sets for entry in entries
        ]

    def check_exclusive(self) -> bool:
        """True when no line is resident in both structures."""
        main = set(self.main_resident_lines())
        return not main.intersection(self.fvc.resident_line_addresses())
