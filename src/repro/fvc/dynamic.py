"""Online frequent-value identification (extension; paper §2 "finding
frequently accessed values" + reference [11]).

The paper configures the FVC from an offline profiling run, observing
that the top values stabilise within a small fraction of execution
(Table 3).  This module closes the loop in "hardware": a Space-Saving
summary watches the value stream during a warm-up window (the FVC stays
idle), then the observed top values are locked into the encoder and the
FVC starts operating — no profiling run required.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig
from repro.profiling.topk import SpaceSaving


class DynamicFvcSystem:
    """A DMC+FVC system that discovers its frequent values online.

    Parameters
    ----------
    geometry, fvc_entries, config:
        As for :class:`FvcSystem`.
    code_bits:
        Code width; the system locks in ``2**code_bits - 1`` values.
    warmup_accesses:
        Length of the observation window.  Table 3 suggests a few
        percent of execution suffices for most programs.
    summary_counters:
        Size of the Space-Saving summary (hardware cost knob).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fvc_entries: int,
        code_bits: int,
        warmup_accesses: int = 100_000,
        summary_counters: int = 64,
        config: Optional[FvcSystemConfig] = None,
    ) -> None:
        if warmup_accesses <= 0:
            raise ConfigurationError("warm-up window must be positive")
        if summary_counters < FrequentValueEncoder.capacity(code_bits):
            raise ConfigurationError(
                "summary must have at least as many counters as the "
                "encoder has value slots"
            )
        self.code_bits = code_bits
        self.warmup_accesses = warmup_accesses
        self._summary = SpaceSaving(summary_counters)
        # Until the swap the encoder is empty: nothing is frequent, the
        # FVC never fills, and the system behaves as a bare main cache.
        self._system = FvcSystem(
            geometry,
            fvc_entries,
            FrequentValueEncoder([], code_bits),
            config=config,
        )
        self._seen = 0
        self.locked = False

    # ------------------------------------------------------------------
    def access(self, op: int, byte_addr: int, value: int) -> bool:
        """Simulate one access; returns True on an overall hit."""
        if not self.locked:
            self._summary.add(value)
            self._seen += 1
            if self._seen >= self.warmup_accesses:
                self._lock_values()
        return self._system.access(op, byte_addr, value)

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace of ``(op, addr, value)`` records."""
        access = self.access
        for op, byte_addr, value in records:
            access(op, byte_addr, value)
        return self.stats

    def _lock_values(self) -> None:
        """Freeze the observed top values into the encoder."""
        capacity = FrequentValueEncoder.capacity(self.code_bits)
        values = self._summary.top_values(capacity)
        encoder = FrequentValueEncoder(values, self.code_bits)
        # The FVC is necessarily empty (nothing was frequent), so the
        # encoder swap cannot orphan any stored codes.
        self._system.encoder = encoder
        self._system.fvc.encoder = encoder
        self.locked = True

    # Delegation ---------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Combined statistics (including the warm-up window)."""
        return self._system.stats

    @property
    def frequent_values(self) -> Tuple[int, ...]:
        """The locked-in value set (empty before the swap)."""
        return self._system.encoder.values

    @property
    def fvc_hits(self) -> int:
        """Hits provided by the FVC after lock-in."""
        return self._system.fvc_hits

    @property
    def system(self) -> FvcSystem:
        """The underlying static system (for invariant checks)."""
        return self._system
