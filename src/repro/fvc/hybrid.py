"""Hybrid FVC + victim cache (the conclusion's "creative ways").

The paper closes by suggesting the frequent-value phenomenon "can be
exploited in many creative ways"; Fig. 15 shows the FVC and the victim
cache have complementary strengths (compressed reach vs full-line
coverage).  This extension combines them with a *content-routed*
eviction policy:

* a line evicted from the main cache whose frequent-word fraction is
  at least ``route_threshold`` goes to the FVC (its reloads are mostly
  servable from codes);
* any other line goes to a small fully-associative victim buffer,
  which serves whole lines regardless of their values.

Contents stay mutually exclusive across all three structures.  The
``ext-hybrid`` experiment compares the hybrid against its parts at the
same storage split.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.mainmem import MainMemory
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError
from repro.fvc.cache import FrequentValueCacheArray
from repro.fvc.encoding import FrequentValueEncoder


class HybridFvcVictimSystem:
    """Direct-mapped main cache + content-routed FVC and victim buffer.

    Parameters
    ----------
    geometry:
        Main-cache geometry (direct-mapped).
    fvc_entries:
        FVC size (compressed entries).
    victim_entries:
        Victim-buffer size (full uncompressed lines, fully associative).
    encoder:
        The frequent-value code.
    route_threshold:
        Minimum frequent-word fraction for an evicted line to be routed
        to the FVC instead of the victim buffer.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fvc_entries: int,
        victim_entries: int,
        encoder: FrequentValueEncoder,
        route_threshold: float = 0.5,
    ) -> None:
        if geometry.ways != 1:
            raise ConfigurationError("hybrid system augments a direct-mapped cache")
        if victim_entries <= 0:
            raise ConfigurationError("victim buffer needs at least one entry")
        if not 0.0 <= route_threshold <= 1.0:
            raise ConfigurationError("route threshold must lie in [0, 1]")
        self.geometry = geometry
        self.encoder = encoder
        self.route_threshold = route_threshold
        self.memory = MainMemory()
        self.fvc = FrequentValueCacheArray(
            entries=fvc_entries,
            words_per_line=geometry.words_per_line,
            encoder=encoder,
        )
        self.victim_entries = victim_entries
        # Victim buffer: MRU-first [line_addr, dirty, data].
        self._victims: List[list] = []
        # Main cache: per-set [line_addr, dirty, data] or None.
        self._lines: List[Optional[list]] = [None] * geometry.num_sets
        self.stats = CacheStats()
        self.main_hits = 0
        self.fvc_hits = 0
        self.victim_hits = 0
        self.routed_to_fvc = 0
        self.routed_to_victim = 0

    # ------------------------------------------------------------------
    def access(self, op: int, byte_addr: int, value: int) -> bool:
        """Simulate one access; returns True on an overall hit."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        word = (byte_addr >> 2) & geom.word_mask
        index = line_addr & geom.set_mask
        stats = self.stats

        resident = self._lines[index]
        if resident is not None and resident[0] == line_addr:
            if op:
                resident[2][word] = value
                resident[1] = 1
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            self.main_hits += 1
            return True

        # FVC probe (compressed path).
        codes = self.fvc.codes_for(line_addr)
        if codes is not None:
            infrequent = self.encoder.infrequent_code
            if op == 0 and codes[word] != infrequent:
                stats.read_hits += 1
                self.fvc_hits += 1
                return True
            if op == 1 and self.encoder.is_frequent(value):
                self.fvc.write_word(line_addr, word, value)
                stats.write_hits += 1
                self.fvc_hits += 1
                return True
            entry = self.fvc.invalidate(line_addr)
            line = self.memory.read_line(line_addr, geom.words_per_line)
            self.encoder.merge_line(line, codes)
            dirty = 1 if entry is not None and any(entry[2]) else 0
            self._fill(line_addr, line, dirty)
            self._apply(op, index, word, value)
            return False

        # Victim-buffer probe (whole-line path): swap on hit.
        for position, victim in enumerate(self._victims):
            if victim[0] == line_addr:
                del self._victims[position]
                displaced = self._lines[index]
                self._lines[index] = [line_addr, victim[1], victim[2]]
                if displaced is not None:
                    self._victims.insert(0, displaced)
                    self._trim_victims()
                entry = self._lines[index]
                if op:
                    entry[2][word] = value
                    entry[1] = 1
                    stats.write_hits += 1
                else:
                    stats.read_hits += 1
                self.victim_hits += 1
                return True

        # Miss everywhere: conventional fill; route the displaced line.
        line = self.memory.read_line(line_addr, geom.words_per_line)
        self._fill(line_addr, line, 0)
        self._apply(op, index, word, value)
        return False

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace of ``(op, addr, value)`` records."""
        access = self.access
        for op, byte_addr, value in records:
            access(op, byte_addr, value)
        return self.stats

    # Internal plumbing --------------------------------------------------
    def _apply(self, op: int, index: int, word: int, value: int) -> None:
        entry = self._lines[index]
        if op:
            entry[2][word] = value
            entry[1] = 1
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1

    def _fill(self, line_addr: int, data: List[int], dirty: int) -> None:
        geom = self.geometry
        index = line_addr & geom.set_mask
        displaced = self._lines[index]
        self._lines[index] = [line_addr, dirty, data]
        self.stats.fills += 1
        self.stats.fill_words += geom.words_per_line
        if displaced is None:
            return
        victim_addr, victim_dirty, victim_data = displaced
        codes = self.encoder.encode_line(victim_data)
        frequent = self.encoder.count_frequent(codes)
        if frequent / geom.words_per_line >= self.route_threshold:
            # Compressed route: write back first (the FVC keeps codes
            # only), then store the identities.
            if victim_dirty:
                self.memory.write_line(victim_addr, victim_data)
                self.stats.writebacks += 1
                self.stats.writeback_words += geom.words_per_line
            displaced_entry = self.fvc.install(victim_addr, codes)
            if displaced_entry is not None:
                self._flush_fvc_entry(displaced_entry)
            self.routed_to_fvc += 1
        else:
            # Whole-line route: the buffer keeps the dirty data.
            self._victims.insert(0, displaced)
            self._trim_victims()
            self.routed_to_victim += 1

    def _trim_victims(self) -> None:
        if len(self._victims) <= self.victim_entries:
            return
        evicted = self._victims.pop()
        if evicted[1]:
            self.memory.write_line(evicted[0], evicted[2])
            self.stats.writebacks += 1
            self.stats.writeback_words += self.geometry.words_per_line

    def _flush_fvc_entry(self, entry) -> None:
        line_addr, codes, dirty = entry
        base = line_addr << self.geometry.line_shift
        flushed = 0
        for word_index, is_dirty in enumerate(dirty):
            if is_dirty:
                self.memory.write_word(
                    base + word_index * 4,
                    self.encoder.decode(codes[word_index]),
                )
                flushed += 1
        if flushed:
            self.stats.writebacks += 1
            self.stats.writeback_words += flushed

    # Introspection ------------------------------------------------------
    def check_exclusive(self) -> bool:
        """No line may live in more than one structure."""
        main = {entry[0] for entry in self._lines if entry is not None}
        fvc = set(self.fvc.resident_line_addresses())
        victims = {victim[0] for victim in self._victims}
        return not (main & fvc or main & victims or fvc & victims)
