"""The frequent value cache (FVC) — the paper's core contribution.

* :mod:`repro.fvc.encoding` — the k-bit frequent-value code (Fig. 7);
* :mod:`repro.fvc.cache` — the raw value-centric cache array;
* :mod:`repro.fvc.system` — the combined DMC+FVC protocol of §3;
* :mod:`repro.fvc.dynamic` — online value identification (extension);
* :mod:`repro.fvc.hybrid` — content-routed FVC + victim buffer
  (extension of the conclusion's "creative ways");
* :mod:`repro.fvc.compression` — the compression cache of the paper's
  reference [11] (extension);
* the victim cache itself lives in :mod:`repro.cache.victim`
  (re-exported here for the Fig. 15 comparison).
"""

from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.cache import FrequentValueCacheArray, SetAssociativeFvcArray
from repro.fvc.system import FvcSystem, FvcSystemConfig
from repro.fvc.dynamic import DynamicFvcSystem
from repro.fvc.hybrid import HybridFvcVictimSystem
from repro.fvc.compression import CompressedCache
from repro.cache.victim import VictimCacheSystem

__all__ = [
    "FrequentValueEncoder",
    "FrequentValueCacheArray",
    "SetAssociativeFvcArray",
    "FvcSystem",
    "FvcSystemConfig",
    "DynamicFvcSystem",
    "HybridFvcVictimSystem",
    "CompressedCache",
    "VictimCacheSystem",
]
