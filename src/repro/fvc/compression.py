"""Frequent-value *compression* cache (the paper's reference [11]).

The FVC paper's own forward pointer — "Frequent Value Compression in
Data Caches" (Yang, Zhang, Gupta) — moves the compression from a side
structure into the cache proper: each physical line slot can hold
either **one uncompressed line** or **two compressed lines**, where a
line is compressible when at least half of its words are frequent
values (the frequent words shrink to k-bit codes, leaving room for the
other line's compressed image in the same slot).

This module implements that design as an extension, so the repository
covers the research line the paper spawned:

* a line with more than ``W/2`` infrequent words is stored
  uncompressed and owns its whole slot;
* a compressible line occupies half a slot; each set can therefore
  hold up to two compressible lines (primary + buddy);
* values are reconstructed on access (frequent words via the decode
  registers, infrequent words from the stored remainder) — random
  access within the line is preserved, as in the FVC;
* replacement: an incoming uncompressed line evicts everything in the
  slot; an incoming compressible line evicts only the buddy half when
  one exists (LRU between the two halves).

Effective capacity therefore floats between 1x and 2x the physical
size depending on the program's frequent value content — exactly the
phenomenon Fig. 11 measures for the FVC.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.mainmem import MainMemory
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError
from repro.fvc.encoding import FrequentValueEncoder


class CompressedCache:
    """Direct-mapped-by-slot cache holding up to two compressed lines
    per slot.

    Parameters
    ----------
    geometry:
        The *physical* geometry (size, line bytes); ``ways`` must be 1.
        Effective capacity reaches twice this when everything
        compresses.
    encoder:
        The frequent-value code used for compression.
    """

    def __init__(
        self, geometry: CacheGeometry, encoder: FrequentValueEncoder
    ) -> None:
        if geometry.ways != 1:
            raise ConfigurationError(
                "CompressedCache models the direct-mapped organisation"
            )
        self.geometry = geometry
        self.encoder = encoder
        self.memory = MainMemory()
        self.stats = CacheStats()
        # Per slot: list of [line_addr, dirty, data, compressed] with at
        # most one uncompressed entry or two compressed ones; MRU first.
        self._slots: List[List[list]] = [
            [] for _ in range(geometry.num_sets)
        ]
        self.compressed_residencies = 0
        self.uncompressed_residencies = 0

    # ------------------------------------------------------------------
    def _compressible(self, data: List[int]) -> bool:
        """True when at least half of the words are frequent values."""
        frequent = sum(1 for word in data if self.encoder.is_frequent(word))
        return 2 * frequent >= len(data)

    def access(self, op: int, byte_addr: int, value: int) -> bool:
        """Simulate one access; returns True on a hit."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        word = (byte_addr >> 2) & geom.word_mask
        slot = self._slots[line_addr & geom.set_mask]
        stats = self.stats

        for position, entry in enumerate(slot):
            if entry[0] != line_addr:
                continue
            if position:
                del slot[position]
                slot.insert(0, entry)
            if op:
                entry[2][word] = value
                entry[1] = 1
                # A store can change the line's compressibility; the
                # slot is re-packed lazily at replacement time, but an
                # entry that stops compressing while sharing a slot
                # must push its buddy out now (no space for both).
                was_compressed = entry[3]
                entry[3] = self._compressible(entry[2])
                if was_compressed and not entry[3] and len(slot) > 1:
                    self._evict(slot, keep=entry)
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            return True

        # Miss: fetch and install.
        data = self.memory.read_line(line_addr, geom.words_per_line)
        if op:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
        stats.fills += 1
        stats.fill_words += geom.words_per_line
        incoming_compressed = self._compressible(data)
        if incoming_compressed:
            self.compressed_residencies += 1
            # Make room: at most one buddy may stay, and only if it is
            # itself compressed.
            while len(slot) >= 2 or (slot and not slot[0][3]):
                self._evict_lru(slot)
        else:
            self.uncompressed_residencies += 1
            while slot:
                self._evict_lru(slot)
        slot.insert(0, [line_addr, 1 if op else 0, data, incoming_compressed])
        if op:
            entry = slot[0]
            entry[2][word] = value
            # The store may have broken the fetched line's
            # compressibility; re-check and push out a buddy if so.
            entry[3] = self._compressible(entry[2])
            if not entry[3] and len(slot) > 1:
                self._evict(slot, keep=entry)
        return False

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace of ``(op, addr, value)`` records."""
        access = self.access
        for op, byte_addr, value in records:
            access(op, byte_addr, value)
        return self.stats

    # Internal -----------------------------------------------------------
    def _evict_lru(self, slot: List[list]) -> None:
        entry = slot.pop()
        self._write_back(entry)

    def _evict(self, slot: List[list], keep: list) -> None:
        """Evict every entry except ``keep``."""
        for entry in list(slot):
            if entry is not keep:
                slot.remove(entry)
                self._write_back(entry)

    def _write_back(self, entry: list) -> None:
        if entry[1]:
            self.memory.write_line(entry[0], entry[2])
            self.stats.writebacks += 1
            self.stats.writeback_words += self.geometry.words_per_line

    # Introspection ------------------------------------------------------
    def resident_lines(self) -> int:
        """Lines currently resident (up to 2x the physical slots)."""
        return sum(len(slot) for slot in self._slots)

    def compression_ratio(self) -> float:
        """Share of installs that entered in compressed form."""
        total = self.compressed_residencies + self.uncompressed_residencies
        if not total:
            return 0.0
        return self.compressed_residencies / total

    def check_slot_invariant(self) -> bool:
        """Each slot holds one uncompressed line or ≤2 compressed —
        with compressibility recomputed from the actual contents, so a
        stale flag also fails the check."""
        for slot in self._slots:
            if len(slot) > 2:
                return False
            if len(slot) == 2:
                for entry in slot:
                    if not entry[3] or not self._compressible(entry[2]):
                        return False
        return True
