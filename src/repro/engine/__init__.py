"""The experiment engine: shared trace persistence and parallel fan-out.

Three cooperating layers make the figure/table suite cheap to rerun:

* :mod:`repro.engine.trace_cache` — a content-addressed, disk-persistent
  cache of generated workload traces, so each ``(workload, input)`` pair
  is synthesised once per machine rather than once per experiment run;
* :mod:`repro.engine.cells` — picklable simulation-cell descriptions
  (``workload x cache-configuration``) and the worker that executes one;
* :mod:`repro.engine.runner` — the :class:`~concurrent.futures.\
ProcessPoolExecutor`-based fan-out with deterministic, submission-order
  result merging.

The cache simulators' ``simulate_batch`` fast paths (hoisted locals,
inlined hit handling) are the per-core half of the same story; the
engine is the across-core half.
"""

from repro.engine.cells import CellResult, SimCell, run_cell
from repro.engine.runner import RunCancelled, run_cells, run_experiments
from repro.engine.trace_cache import (
    TRACE_CACHE_VERSION,
    TraceCache,
    default_cache_dir,
    default_trace_cache,
)

__all__ = [
    "TRACE_CACHE_VERSION",
    "TraceCache",
    "default_cache_dir",
    "default_trace_cache",
    "SimCell",
    "CellResult",
    "RunCancelled",
    "run_cell",
    "run_cells",
    "run_experiments",
]
