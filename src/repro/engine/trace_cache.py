"""Content-addressed, disk-persistent trace cache.

Workload traces are pure functions of ``(workload, input, data seed)``,
so they can be persisted once per machine and shared by every
experiment, benchmark and worker process.  Entries are columnar v3
trace bytes (:func:`repro.trace.io.trace_to_columnar_bytes`), zlib-
compressed and wrapped in a sha256 integrity envelope
(:mod:`repro.common.integrity`), under a directory resolved as:

1. ``$REPRO_TRACE_CACHE_DIR`` when set;
2. ``$XDG_CACHE_HOME/repro-fvc/traces`` when ``XDG_CACHE_HOME`` is set;
3. ``~/.cache/repro-fvc/traces`` otherwise.

``REPRO_TRACE_CACHE=off`` (also ``0``/``no``/``false``) disables disk
persistence entirely — :func:`default_trace_cache` then returns ``None``
and the in-process LRU (:class:`repro.workloads.store.TraceStore`) is
the only caching layer.

The file name is content-addressed: a SHA-256 digest over the workload
name, input name, the input's data seed, and
:data:`TRACE_CACHE_VERSION`.  Bump the version constant whenever
workload generation or the entry layout changes semantically — stale
entries then simply stop being addressed and can be removed with
``repro-fvc cache clear``.

Corrupt entries (failed envelope check, undecodable payload) are never
served and never silently swallowed: :meth:`TraceCache.load`
quarantines them as ``<name>.corrupt`` for post-mortem inspection and
reports a miss, so the caller regenerates and re-persists a good entry
— the cache self-heals.  ``repro-fvc cache verify`` runs the same
check over every entry without serving any.
"""

from __future__ import annotations

import hashlib
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.common.errors import IntegrityError, TraceFormatError
from repro.common.integrity import (
    CORRUPT_SUFFIX,
    quarantine,
    read_enveloped,
    write_enveloped,
)
from repro.trace.io import (
    trace_from_bytes,
    trace_header_from_bytes,
    trace_to_columnar_bytes,
)
from repro.trace.trace import Trace

#: Bump to invalidate every persisted trace (e.g. after changing
#: workload generation semantically).  Part of every entry's content
#: address.  The payload *kind* is identified by suffix and magic, not
#: by this number: version 2 addresses serve both envelope kinds below.
TRACE_CACHE_VERSION = 2

#: Entry file suffix for columnar (v3) payloads — what ``store`` writes.
ENTRY_SUFFIX = ".trcbe"

#: Entry file suffix for compact (v2) payloads.  Entries written by
#: earlier releases keep working: ``load`` falls back to this suffix at
#: the same content address, and ``entries``/``verify``/``clear`` cover
#: both kinds.
COMPACT_SUFFIX = ".trc2e"

_ENTRY_SUFFIXES = (ENTRY_SUFFIX, COMPACT_SUFFIX)

_LEGACY_SUFFIX = ".trc2.gz"

_DISABLE_VALUES = ("off", "0", "no", "false")


def default_cache_dir() -> Path:
    """The trace-cache directory the environment selects."""
    env = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-fvc" / "traces"


def default_trace_cache() -> Optional["TraceCache"]:
    """A :class:`TraceCache` over the default directory, or ``None``
    when ``REPRO_TRACE_CACHE`` disables persistence."""
    if os.environ.get("REPRO_TRACE_CACHE", "").lower() in _DISABLE_VALUES:
        return None
    return TraceCache(default_cache_dir())


class TraceCache:
    """Disk-persistent, in-process-memoised store of generated traces.

    ``get`` resolves a trace through three layers: the in-process memo,
    the on-disk entry, and finally workload synthesis (which persists
    the result for every later process on the machine).  The counters
    ``memory_hits`` / ``disk_hits`` / ``synthesised`` / ``stores`` /
    ``corrupt_quarantined`` make each layer's contribution observable.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self._memo: Dict[Tuple[str, str], Trace] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.synthesised = 0
        self.stores = 0
        self.corrupt_quarantined = 0

    # Content addressing ----------------------------------------------
    def _data_seed(self, workload_name: str, input_name: str) -> int:
        from repro.workloads.registry import get_workload

        return get_workload(workload_name).input_named(input_name).data_seed

    def key(self, workload_name: str, input_name: str = "ref") -> str:
        """The content hash addressing one ``(workload, input)`` trace."""
        seed = self._data_seed(workload_name, input_name)
        material = (
            f"fvtr|v{TRACE_CACHE_VERSION}|{workload_name}|{input_name}|"
            f"seed={seed}"
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:20]

    def path_for(self, workload_name: str, input_name: str = "ref") -> Path:
        """On-disk location of one entry (may not exist yet)."""
        digest = self.key(workload_name, input_name)
        return (
            self.directory
            / f"{workload_name}-{input_name}-{digest}{ENTRY_SUFFIX}"
        )

    def _candidate_paths(
        self, workload_name: str, input_name: str
    ) -> Tuple[Path, ...]:
        """Load order for one entry: columnar first, then a compact
        entry persisted by an earlier release at the same address."""
        columnar = self.path_for(workload_name, input_name)
        return columnar, columnar.with_suffix(COMPACT_SUFFIX)

    # Individual layers ------------------------------------------------
    def _quarantine(self, path: Path) -> None:
        quarantine(path)
        self.corrupt_quarantined += 1
        if obs.enabled():
            obs.registry().counter(
                "trace_cache_corrupt_quarantined_total"
            ).inc()

    def load(self, workload_name: str, input_name: str = "ref") -> Optional[Trace]:
        """Read one entry from disk, or ``None`` when absent/corrupt.

        A corrupt entry (truncated write that escaped the rename
        discipline, bit rot, tampering) is quarantined as
        ``<name>.corrupt`` — not unlinked, not served — and reported as
        a miss so the caller regenerates it.
        """
        for path in self._candidate_paths(workload_name, input_name):
            if not path.exists():
                continue
            try:
                payload = read_enveloped(path, site="trace_cache.read")
                trace = trace_from_bytes(
                    zlib.decompress(payload), source=str(path)
                )
            except (IntegrityError, TraceFormatError, zlib.error, EOFError):
                self._quarantine(path)
                continue
            except OSError:
                continue
            self.disk_hits += 1
            if obs.enabled():
                obs.registry().counter("trace_cache_disk_hits_total").inc()
            return trace
        return None

    def store(self, trace: Trace) -> Path:
        """Persist ``trace`` (enveloped; atomic temp + fsync + rename)."""
        from repro.obs import tracing

        path = self.path_for(trace.workload, trace.input_name)
        with tracing.span(
            "trace_cache.store",
            key=f"{trace.workload}/{trace.input_name}",
        ):
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = zlib.compress(trace_to_columnar_bytes(trace), 6)
            write_enveloped(path, payload, site="trace_cache.write")
        self.stores += 1
        if obs.enabled():
            obs.registry().counter("trace_cache_stores_total").inc()
        return path

    def load_or_generate(
        self, workload_name: str, input_name: str = "ref"
    ) -> Trace:
        """Disk layer: read the entry, synthesising and persisting on a
        miss.  (No in-process memoisation — see :meth:`get`.)"""
        from repro.obs import tracing

        with tracing.span(
            "trace_cache.load",
            key=f"{workload_name}/{input_name}",
        ) as span:
            trace = self.load(workload_name, input_name)
            if trace is not None:
                if span is not None:
                    span.attrs["outcome"] = "disk_hit"
                return trace
            from repro.workloads.registry import get_workload

            trace = get_workload(workload_name).generate_trace(input_name)
            self.synthesised += 1
            if obs.enabled():
                obs.registry().counter("trace_cache_synthesised_total").inc()
            if span is not None:
                span.attrs["outcome"] = "synthesised"
            try:
                self.store(trace)
            except OSError:
                pass  # read-only cache dir: serve the trace uncached
        return trace

    def get(self, workload_name: str, input_name: str = "ref") -> Trace:
        """Full resolution: memo, then disk, then synthesis."""
        memo_key = (workload_name, input_name)
        cached = self._memo.get(memo_key)
        if cached is not None:
            self.memory_hits += 1
            if obs.enabled():
                obs.registry().counter("trace_cache_memory_hits_total").inc()
            return cached
        trace = self.load_or_generate(workload_name, input_name)
        self._memo[memo_key] = trace
        return trace

    def ensure(self, workload_name: str, input_name: str = "ref") -> Path:
        """Guarantee the on-disk entry exists (parallel-run pre-warm)."""
        path = self.path_for(workload_name, input_name)
        if not path.exists():
            self.get(workload_name, input_name)
        return path

    # Introspection / maintenance --------------------------------------
    def entries(self) -> List[Tuple[Path, str, str, int]]:
        """All valid entries as ``(path, workload, input, records)``."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self._entry_paths():
            try:
                payload = read_enveloped(path)
                _, workload, input_name, count, _ = trace_header_from_bytes(
                    zlib.decompress(payload), source=str(path)
                )
            except (IntegrityError, TraceFormatError, zlib.error, OSError, EOFError):
                continue
            found.append((path, workload, input_name, count))
        return found

    def _entry_paths(self):
        paths = []
        for suffix in _ENTRY_SUFFIXES:
            paths.extend(self.directory.glob(f"*{suffix}"))
        return sorted(paths)

    def verify(self) -> Dict[str, int]:
        """Check every entry's envelope and payload without serving any.

        Corrupt entries are quarantined as ``<name>.corrupt``; stale
        ``*.tmp`` droppings from killed writers are swept.  Returns
        ``{"checked", "ok", "quarantined", "tmp_removed"}``.
        """
        checked = ok = quarantined = tmp_removed = 0
        if not self.directory.is_dir():
            return {
                "checked": 0, "ok": 0, "quarantined": 0, "tmp_removed": 0,
            }
        for path in self._entry_paths():
            checked += 1
            try:
                payload = read_enveloped(path)
                trace_header_from_bytes(
                    zlib.decompress(payload), source=str(path)
                )
            except (IntegrityError, TraceFormatError, zlib.error, EOFError):
                self._quarantine(path)
                quarantined += 1
            except OSError:
                continue
            else:
                ok += 1
        for stale in sorted(self.directory.glob("*.tmp")):
            try:
                stale.unlink()
                tmp_removed += 1
            except OSError:
                pass
        return {
            "checked": checked,
            "ok": ok,
            "quarantined": quarantined,
            "tmp_removed": tmp_removed,
        }

    def clear(self) -> int:
        """Delete every entry (including legacy-format and quarantined
        ones); returns the number removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        patterns = (
            f"*{ENTRY_SUFFIX}",
            f"*{COMPACT_SUFFIX}",
            f"*{_LEGACY_SUFFIX}",
            f"*{CORRUPT_SUFFIX}",
        )
        for pattern in patterns:
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        self._memo.clear()
        return removed

    def stats(self) -> Dict[str, int]:
        """Layer-by-layer resolution counters."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "synthesised": self.synthesised,
            "stores": self.stores,
            "corrupt_quarantined": self.corrupt_quarantined,
        }

    def __repr__(self) -> str:
        return (
            f"TraceCache({self.directory}, mem={self.memory_hits}, "
            f"disk={self.disk_hits}, synth={self.synthesised})"
        )
