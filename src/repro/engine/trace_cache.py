"""Content-addressed, disk-persistent trace cache.

Workload traces are pure functions of ``(workload, input, data seed)``,
so they can be persisted once per machine and shared by every
experiment, benchmark and worker process.  Entries are stored in the
compact v2 trace format (:func:`repro.trace.io.write_trace_compact`),
gzip-compressed, under a directory resolved as:

1. ``$REPRO_TRACE_CACHE_DIR`` when set;
2. ``$XDG_CACHE_HOME/repro-fvc/traces`` when ``XDG_CACHE_HOME`` is set;
3. ``~/.cache/repro-fvc/traces`` otherwise.

``REPRO_TRACE_CACHE=off`` (also ``0``/``no``/``false``) disables disk
persistence entirely — :func:`default_trace_cache` then returns ``None``
and the in-process LRU (:class:`repro.workloads.store.TraceStore`) is
the only caching layer.

The file name is content-addressed: a SHA-256 digest over the workload
name, input name, the input's data seed, and
:data:`TRACE_CACHE_VERSION`.  Bump the version constant whenever
workload generation changes semantically — stale entries then simply
stop being addressed and can be removed with ``repro-fvc cache clear``.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.common.errors import TraceFormatError
from repro.trace.io import read_trace_any, read_trace_header, write_trace_compact
from repro.trace.trace import Trace

#: Bump to invalidate every persisted trace (e.g. after changing a
#: workload's generation logic).  Part of every entry's content address.
TRACE_CACHE_VERSION = 1

_DISABLE_VALUES = ("off", "0", "no", "false")


def default_cache_dir() -> Path:
    """The trace-cache directory the environment selects."""
    env = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-fvc" / "traces"


def default_trace_cache() -> Optional["TraceCache"]:
    """A :class:`TraceCache` over the default directory, or ``None``
    when ``REPRO_TRACE_CACHE`` disables persistence."""
    if os.environ.get("REPRO_TRACE_CACHE", "").lower() in _DISABLE_VALUES:
        return None
    return TraceCache(default_cache_dir())


class TraceCache:
    """Disk-persistent, in-process-memoised store of generated traces.

    ``get`` resolves a trace through three layers: the in-process memo,
    the on-disk entry, and finally workload synthesis (which persists
    the result for every later process on the machine).  The counters
    ``memory_hits`` / ``disk_hits`` / ``synthesised`` / ``stores`` make
    each layer's contribution observable.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self._memo: Dict[Tuple[str, str], Trace] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.synthesised = 0
        self.stores = 0

    # Content addressing ----------------------------------------------
    def _data_seed(self, workload_name: str, input_name: str) -> int:
        from repro.workloads.registry import get_workload

        return get_workload(workload_name).input_named(input_name).data_seed

    def key(self, workload_name: str, input_name: str = "ref") -> str:
        """The content hash addressing one ``(workload, input)`` trace."""
        seed = self._data_seed(workload_name, input_name)
        material = (
            f"fvtr|v{TRACE_CACHE_VERSION}|{workload_name}|{input_name}|"
            f"seed={seed}"
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:20]

    def path_for(self, workload_name: str, input_name: str = "ref") -> Path:
        """On-disk location of one entry (may not exist yet)."""
        digest = self.key(workload_name, input_name)
        return self.directory / f"{workload_name}-{input_name}-{digest}.trc2.gz"

    # Individual layers ------------------------------------------------
    def load(self, workload_name: str, input_name: str = "ref") -> Optional[Trace]:
        """Read one entry from disk, or ``None`` when absent/corrupt."""
        path = self.path_for(workload_name, input_name)
        if not path.exists():
            return None
        try:
            trace = read_trace_any(path)
        except (TraceFormatError, OSError, EOFError):
            # A truncated write (killed process) must not poison the
            # cache: drop the entry and fall back to synthesis.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.disk_hits += 1
        return trace

    def store(self, trace: Trace) -> Path:
        """Persist ``trace`` (atomically: temp file + rename)."""
        path = self.path_for(trace.workload, trace.input_name)
        self.directory.mkdir(parents=True, exist_ok=True)
        # The temp name must keep the ".gz" suffix: the trace writer
        # picks gzip framing off the file name.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), suffix=".tmp.gz"
        )
        os.close(fd)
        try:
            write_trace_compact(trace, tmp_name)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def load_or_generate(
        self, workload_name: str, input_name: str = "ref"
    ) -> Trace:
        """Disk layer: read the entry, synthesising and persisting on a
        miss.  (No in-process memoisation — see :meth:`get`.)"""
        trace = self.load(workload_name, input_name)
        if trace is not None:
            return trace
        from repro.workloads.registry import get_workload

        trace = get_workload(workload_name).generate_trace(input_name)
        self.synthesised += 1
        try:
            self.store(trace)
        except OSError:
            pass  # read-only cache dir: serve the trace uncached
        return trace

    def get(self, workload_name: str, input_name: str = "ref") -> Trace:
        """Full resolution: memo, then disk, then synthesis."""
        memo_key = (workload_name, input_name)
        cached = self._memo.get(memo_key)
        if cached is not None:
            self.memory_hits += 1
            return cached
        trace = self.load_or_generate(workload_name, input_name)
        self._memo[memo_key] = trace
        return trace

    def ensure(self, workload_name: str, input_name: str = "ref") -> Path:
        """Guarantee the on-disk entry exists (parallel-run pre-warm)."""
        path = self.path_for(workload_name, input_name)
        if not path.exists():
            self.get(workload_name, input_name)
        return path

    # Introspection / maintenance --------------------------------------
    def entries(self) -> List[Tuple[Path, str, str, int]]:
        """All valid entries as ``(path, workload, input, records)``."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in sorted(self.directory.glob("*.trc2.gz")):
            try:
                _, workload, input_name, count, _ = read_trace_header(path)
            except (TraceFormatError, OSError, EOFError):
                continue
            found.append((path, workload, input_name, count))
        return found

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.trc2.gz"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._memo.clear()
        return removed

    def stats(self) -> Dict[str, int]:
        """Layer-by-layer resolution counters."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "synthesised": self.synthesised,
            "stores": self.stores,
        }

    def __repr__(self) -> str:
        return (
            f"TraceCache({self.directory}, mem={self.memory_hits}, "
            f"disk={self.disk_hits}, synth={self.synthesised})"
        )
