"""Simulation cells: picklable ``workload x cache-config`` work units.

A :class:`SimCell` describes one simulation the experiment suite needs —
a baseline cache, a DMC+FVC system, or a 3C classification, over one
workload trace — compactly enough to ship to a worker process.  The
worker regenerates nothing it can share: traces come through the
content-addressed trace cache, and the encoder is rebuilt from the
trace's (memoised) access profile, so two cells over the same workload
pay for the trace exactly once per process and once per machine.

:func:`run_cell` is the single execution path used both sequentially
(by the experiments' ``run``) and in parallel (by
:func:`repro.engine.runner.run_cells`), which is what makes the
parallel results bit-identical to the sequential ones.  It is also
where the runtime sanitizer (:mod:`repro.analysis.sanitize`, enabled
by ``REPRO_SANITIZE=1``) hooks in: because the checks live on the one
shared path, sanitized parallel runs exercise exactly the invariants
sanitized sequential runs do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class SimCell:
    """One simulation work unit.

    ``kind`` selects the simulator:

    * ``"baseline"`` — :class:`DirectMappedCache` /
      :class:`SetAssociativeCache` per ``ways``;
    * ``"fvc"`` — :class:`repro.fvc.system.FvcSystem` with
      ``fvc_entries`` entries exploiting the top ``top_values`` values;
    * ``"classify"`` — 3C miss classification
      (:func:`repro.cache.classify.classify_misses`).
    """

    workload: str
    input_name: str = "ref"
    kind: str = "baseline"
    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    ways: int = 1
    fvc_entries: int = 512
    top_values: int = 7

    def geometry(self) -> CacheGeometry:
        """The cache geometry this cell simulates."""
        return CacheGeometry(self.size_bytes, self.line_bytes, ways=self.ways)


@dataclass
class CellResult:
    """Picklable outcome of one cell.

    ``stats`` is the :meth:`repro.cache.stats.CacheStats.as_dict`
    snapshot; ``extras`` carries simulator-specific counters (FVC hit
    breakdown, 3C class counts).
    """

    cell: SimCell
    stats: Dict[str, int]
    extras: Dict[str, int] = field(default_factory=dict)

    def cache_stats(self) -> CacheStats:
        """Rebuild a :class:`CacheStats` from the snapshot."""
        stats = CacheStats()
        for name in CacheStats.__slots__:
            setattr(stats, name, self.stats[name])
        return stats


def _sanitize_check(cell: SimCell, check, *args) -> None:
    """Run one sanitizer check, prefixing violations with cell context."""
    from repro.analysis.sanitize import SanitizeViolation

    try:
        check(*args)
    except SanitizeViolation as exc:
        raise SanitizeViolation(
            f"{cell.kind} cell {cell.workload}/{cell.input_name}: {exc}"
        ) from exc


def cell_span_key(cell: SimCell) -> str:
    """The content-derived span key for a cell: every field that selects
    the simulation, so the same cell has the same span id in every run
    and every process (see :mod:`repro.obs.tracing`)."""
    return (
        f"{cell.kind}/{cell.workload}/{cell.input_name}/"
        f"{cell.size_bytes}/{cell.line_bytes}/{cell.ways}/"
        f"{cell.fvc_entries}/{cell.top_values}"
    )


def _record_cell_metrics(references: int, elapsed: float) -> None:
    """Feed the opt-in hot-loop accounting (no-op unless REPRO_OBS=1)."""
    from repro import obs

    if not obs.enabled():
        return
    registry = obs.registry()
    registry.counter("engine_cells_total").inc()
    registry.counter("engine_cell_references_total").inc(references)
    registry.histogram("engine_cell_seconds").observe(elapsed)


def run_cell(cell: SimCell, store=None) -> CellResult:
    """Execute one cell against the given trace store (defaults to the
    process-wide :data:`repro.workloads.store.shared_store`)."""
    # Imported lazily: cells are constructed in contexts (CLI parsing,
    # planning) that should not pay for the experiment stack.
    from repro.faults.sites import fault_point
    from repro.obs import tracing
    from repro.workloads.store import shared_store

    fault_point("engine.cell")
    if store is None:
        store = shared_store
    with tracing.span(
        "engine.cell",
        key=cell_span_key(cell),
        attrs={
            "workload": cell.workload,
            "input": cell.input_name,
            "kind": cell.kind,
        },
    ):
        started = time.perf_counter()
        trace = store.get(cell.workload, cell.input_name)
        result = _simulate(cell, trace)
        _record_cell_metrics(len(trace.records), time.perf_counter() - started)
    return result


def _simulate(cell: SimCell, trace) -> CellResult:
    """Dispatch one cell to its simulator (the observable unit of
    :func:`run_cell`; callers go through ``run_cell``, never here)."""
    from repro.analysis import sanitize
    from repro.kernels import dispatch

    geometry = cell.geometry()
    sanitizing = sanitize.enabled()

    if cell.kind == "baseline":
        stats = dispatch.try_baseline_stats(trace, geometry)
        if stats is not None:
            return CellResult(cell=cell, stats=stats.as_dict())
        if geometry.ways == 1:
            simulator = DirectMappedCache(geometry)
        else:
            simulator = SetAssociativeCache(geometry)
        stats = simulator.simulate_batch(trace.records)
        if sanitizing:
            _sanitize_check(
                cell, sanitize.check_baseline, simulator, len(trace.records)
            )
        return CellResult(cell=cell, stats=stats.as_dict())

    if cell.kind == "fvc":
        from repro.experiments.common import encoder_for
        from repro.fvc.system import FvcSystem

        replayed = dispatch.try_fvc_replay(
            trace, geometry, cell.fvc_entries, encoder_for(trace, cell.top_values)
        )
        if replayed is not None:
            stats, extras = replayed
            return CellResult(cell=cell, stats=stats.as_dict(), extras=extras)
        system = FvcSystem(
            geometry,
            cell.fvc_entries,
            encoder_for(trace, cell.top_values),
            config=sanitize.sanitized_fvc_config() if sanitizing else None,
        )
        audit = sanitize.attach_fvc_system(system) if sanitizing else None
        stats = system.simulate_batch(trace.records)
        if sanitizing:
            _sanitize_check(
                cell, sanitize.check_fvc_system, system, len(trace.records), audit
            )
        return CellResult(
            cell=cell,
            stats=stats.as_dict(),
            extras={
                "main_hits": system.main_hits,
                "fvc_hits": system.fvc_hits,
                "fvc_read_hits": system.fvc_read_hits,
                "fvc_write_hits": system.fvc_write_hits,
            },
        )

    if cell.kind == "classify":
        from repro.cache.classify import classify_misses

        result = classify_misses(trace.records, geometry)
        if sanitizing:
            _sanitize_check(
                cell,
                sanitize.check_access_count,
                result.accesses,
                len(trace.records),
            )
        return CellResult(
            cell=cell,
            stats=CacheStats().as_dict(),
            extras={
                "accesses": result.accesses,
                "compulsory": result.compulsory,
                "capacity": result.capacity,
                "conflict": result.conflict,
            },
        )

    raise ConfigurationError(f"unknown cell kind {cell.kind!r}")
