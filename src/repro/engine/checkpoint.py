"""Checkpoint/resume for engine runs.

A :class:`RunCheckpoint` persists each completed
:class:`~repro.engine.cells.CellResult` as its own content-addressed
record the moment the cell finishes, so a run killed at any point —
power loss, OOM kill, an injected ``crash`` fault — resumes by
re-running only the cells whose records are missing.  Because
:func:`repro.engine.cells.run_cell` is deterministic, a resumed run's
merged results are bit-identical to an uninterrupted run's; the chaos
suite asserts exactly that.

Layout: one file per cell, ``cell-<key>.ckpt``, where ``<key>`` is a
sha256 digest over the cell's full field tuple and
:data:`CHECKPOINT_VERSION`.  Records are canonical JSON wrapped in the
same sha256 integrity envelope as every other durable artifact
(:mod:`repro.common.integrity`) and published with the same atomic
temp + ``fsync`` + rename discipline, so a record either exists and
verifies or does not exist — a crash mid-save costs one cell, never a
corrupt resume.  A record that fails verification is quarantined as
``<name>.corrupt`` and its cell simply re-runs.

Checkpoints are an engine-level feature: both the sequential and the
parallel paths of :func:`repro.engine.runner.run_cells` consult the
same records, so a run interrupted under ``--jobs 8`` can resume under
``--jobs 1`` (or vice versa) without losing work.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro import obs
from repro.common.errors import IntegrityError
from repro.common.integrity import quarantine, read_enveloped, write_enveloped
from repro.engine.cells import CellResult, SimCell
from repro.obs import tracing

#: Part of every record's content address; bump on any change to the
#: record schema or to cell/result semantics that invalidates old
#: checkpoints.
CHECKPOINT_VERSION = 1

#: Schema tag embedded in every record.
RECORD_SCHEMA = "repro.checkpoint/1"


def cell_key(cell: SimCell) -> str:
    """Content address of one cell's checkpoint record."""
    fields = dataclasses.asdict(cell)
    material = json.dumps(
        {"version": CHECKPOINT_VERSION, "cell": fields},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:24]


class RunCheckpoint:
    """Per-cell durable progress for one engine run.

    Counters: ``restored`` (cells answered from records this run),
    ``saved`` (records written this run), ``corrupt_quarantined``.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.restored = 0
        self.saved = 0
        self.corrupt_quarantined = 0

    def path_for(self, cell: SimCell) -> Path:
        """On-disk location of one cell's record (may not exist)."""
        return self.directory / f"cell-{cell_key(cell)}.ckpt"

    def load(self, cell: SimCell) -> Optional[CellResult]:
        """The persisted result for ``cell``, or ``None``.

        A record that fails its envelope check or does not decode is
        quarantined and reported missing, so the cell re-runs.
        """
        path = self.path_for(cell)
        if not path.exists():
            return None
        with tracing.span("checkpoint.load", key=cell_key(cell)) as span:
            try:
                payload = read_enveloped(path, site="checkpoint.read")
                record = json.loads(payload.decode("utf-8"))
                if record.get("schema") != RECORD_SCHEMA:
                    raise IntegrityError(
                        f"{path}: unexpected record schema "
                        f"{record.get('schema')!r}"
                    )
                restored_cell = SimCell(**record["cell"])
                if restored_cell != cell:
                    raise IntegrityError(f"{path}: record is for another cell")
                result = CellResult(
                    cell=restored_cell,
                    stats=dict(record["stats"]),
                    extras=dict(record.get("extras", {})),
                )
            except OSError:
                return None
            except (IntegrityError, ValueError, KeyError, TypeError):
                quarantine(path)
                self.corrupt_quarantined += 1
                if obs.enabled():
                    obs.registry().counter(
                        "checkpoint_corrupt_quarantined_total"
                    ).inc()
                if span is not None:
                    span.attrs["outcome"] = "quarantined"
                return None
            if span is not None:
                span.attrs["outcome"] = "restored"
        self.restored += 1
        if obs.enabled():
            obs.registry().counter("checkpoint_restored_total").inc()
        return result

    def save(self, result: CellResult) -> Path:
        """Durably persist one completed cell's result."""
        self.directory.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": RECORD_SCHEMA,
            "cell": dataclasses.asdict(result.cell),
            "stats": dict(result.stats),
            "extras": dict(result.extras),
        }
        payload = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        path = self.path_for(result.cell)
        with tracing.span("checkpoint.save", key=cell_key(result.cell)):
            write_enveloped(path, payload, site="checkpoint.write")
        self.saved += 1
        if obs.enabled():
            obs.registry().counter("checkpoint_saved_total").inc()
        return path

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (for ``run --checkpoint`` reporting)."""
        return {
            "restored": self.restored,
            "saved": self.saved,
            "corrupt_quarantined": self.corrupt_quarantined,
        }

    def __repr__(self) -> str:
        return (
            f"RunCheckpoint({self.directory}, restored={self.restored}, "
            f"saved={self.saved})"
        )
