"""Parallel fan-out of simulation cells and whole experiments.

Both entry points preserve submission order — ``ProcessPoolExecutor
.map`` yields results in input order regardless of completion order —
so a parallel run merges into exactly the rows a sequential run
produces.  Determinism of the *values* comes from the cells themselves:
every worker replays the same content-addressed trace through the same
simulator construction path (:func:`repro.engine.cells.run_cell`).

Before fanning out, the parent pre-warms the on-disk trace cache for
every distinct ``(workload, input)`` pair the cells reference, so the
expensive synthesis happens once and workers only deserialise.  When
disk persistence is disabled (``REPRO_TRACE_CACHE=off``) workers fall
back to synthesising their own traces — slower, still correct.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence

from repro.engine.cells import CellResult, SimCell, run_cell
from repro.engine.trace_cache import default_trace_cache

#: ``progress(done, total)`` — invoked after each cell completes, in
#: cell order, from the submitting process (never from a pool worker).
ProgressHook = Callable[[int, int], None]

#: ``executor(cells, progress=..., should_cancel=..., store=...)`` —
#: an alternative cell-execution strategy (e.g. the cluster
#: scheduler's :meth:`repro.cluster.coordinator.ClusterScheduler
#: .run_cells`).  Must return one :class:`CellResult` per cell, in
#: input order, computed through :func:`run_cell` semantics so results
#: stay bit-identical to a local run.
CellExecutor = Callable[..., List[CellResult]]


class RunCancelled(Exception):
    """Raised by :func:`run_cells` when ``should_cancel`` fires.

    Cancellation is cooperative and cell-granular: the run stops at the
    next cell boundary, so a caller (e.g. the ``repro.service`` job
    workers) can abandon a long sweep without killing the process.
    """

#: Workers keep their stores small: cells are grouped by workload, so a
#: handful of resident traces covers the stream each worker sees.
_WORKER_STORE_TRACES = 4

_worker_store = None


def _get_worker_store():
    """The per-process trace store used by pool workers (lazy)."""
    global _worker_store
    if _worker_store is None:
        from repro.workloads.store import TraceStore

        _worker_store = TraceStore(
            max_traces=_WORKER_STORE_TRACES, disk_cache=default_trace_cache()
        )
    return _worker_store


def _run_cell_worker(cell: SimCell) -> CellResult:
    return run_cell(cell, _get_worker_store())


def _prewarm_traces(cells: Sequence[SimCell], store) -> None:
    """Materialise every referenced trace into the on-disk cache."""
    cache = default_trace_cache()
    if cache is None:
        return
    seen = set()
    for cell in cells:
        key = (cell.workload, cell.input_name)
        if key in seen:
            continue
        seen.add(key)
        if cache.path_for(*key).exists():
            continue
        if store is not None:
            # Generate through the caller's store so the parent keeps
            # the trace resident too, then persist it for the workers.
            cache.store(store.get(*key))
        else:
            cache.ensure(*key)


def default_jobs() -> int:
    """A sensible worker count: the machine's cores, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def run_cells(
    cells: Iterable[SimCell],
    jobs: int = 1,
    store=None,
    progress: Optional[ProgressHook] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
    checkpoint=None,
    executor: Optional[CellExecutor] = None,
) -> List[CellResult]:
    """Execute cells, in parallel when ``jobs > 1``.

    Results come back in cell order whatever the completion order, so
    merging is deterministic; and each cell runs the same code path as
    a sequential call, so the merged statistics are bit-identical to a
    ``jobs=1`` run.

    ``progress(done, total)`` is called after each completed cell (in
    cell order, from this process).  ``should_cancel()`` is polled at
    cell boundaries; returning true raises :class:`RunCancelled`.
    Neither hook affects the computed results.

    ``checkpoint`` (a :class:`repro.engine.checkpoint.RunCheckpoint`)
    makes the run resumable: cells with a persisted record are answered
    from disk, freshly-computed cells are persisted the moment they
    finish, and because every cell is deterministic the merged results
    are bit-identical to an uninterrupted, checkpoint-free run.

    ``executor`` replaces the local fan-out entirely (``jobs`` is then
    ignored for the pending cells): the callable receives the cells
    that still need computing and must return their results in input
    order.  Checkpoint restore/save and progress accounting still
    happen here, so an executor-backed run composes with both.
    """
    cells = list(cells)
    total = len(cells)

    def _completed(done: int) -> None:
        if progress is not None:
            progress(done, total)

    def _check_cancel() -> None:
        if should_cancel is not None and should_cancel():
            raise RunCancelled(f"cancelled after {done}/{total} cells")

    done = 0
    results: List[Optional[CellResult]] = [None] * total
    pending: List[int] = []
    for index, cell in enumerate(cells):
        restored = checkpoint.load(cell) if checkpoint is not None else None
        if restored is not None:
            results[index] = restored
            done += 1
        else:
            pending.append(index)
    if done:
        _completed(done)

    def _record(index: int, result: CellResult) -> None:
        nonlocal done
        results[index] = result
        if checkpoint is not None:
            checkpoint.save(result)
        done += 1
        _completed(done)

    if executor is not None and pending:
        pending_cells = [cells[index] for index in pending]

        def _executor_progress(exec_done: int, _exec_total: int) -> None:
            # Interim counts from the executor map onto the overall
            # run: restored cells are already reported, executor cells
            # land on top.  _record re-reports each final count, which
            # is harmless — progress is monotone and observational.
            _completed(done + exec_done)

        exec_results = executor(
            pending_cells,
            progress=_executor_progress if progress is not None else None,
            should_cancel=should_cancel,
            store=store,
        )
        for index, result in zip(pending, exec_results):
            _check_cancel()
            _record(index, result)
        return results  # type: ignore[return-value]
    if jobs <= 1 or len(pending) <= 1:
        for index in pending:
            _check_cancel()
            _record(index, run_cell(cells[index], store))
        return results  # type: ignore[return-value]
    pending_cells = [cells[index] for index in pending]
    _prewarm_traces(pending_cells, store)
    workers = min(jobs, len(pending_cells))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for index, result in zip(pending, pool.map(_run_cell_worker, pending_cells)):
            _check_cancel()
            _record(index, result)
    return results  # type: ignore[return-value]


def _run_experiment_worker(args) -> "object":
    experiment_id, fast = args
    from repro.experiments.registry import get_experiment

    return get_experiment(experiment_id).run(_get_worker_store(), fast=fast)


def run_experiments(
    experiment_ids: Sequence[str],
    jobs: int = 1,
    fast: bool = False,
    store=None,
) -> List["object"]:
    """Run whole experiments across a process pool.

    Returns one :class:`~repro.experiments.base.ExperimentResult` per
    id, in input order.  Used by ``repro-fvc run all --jobs N``; single
    experiments parallelise at cell granularity instead (see
    :meth:`repro.experiments.base.Experiment.run_with_engine`).
    """
    from repro.experiments.registry import get_experiment

    ids = list(experiment_ids)
    if jobs <= 1 or len(ids) <= 1:
        return [get_experiment(i).run(store, fast=fast) for i in ids]
    cache = default_trace_cache()
    if cache is not None and store is not None:
        # Pre-warm the traces every experiment leans on, once.
        from repro.experiments.common import FVL_NAMES
        from repro.experiments.common import input_for

        for name in FVL_NAMES:
            if not cache.path_for(name, input_for(fast)).exists():
                cache.store(store.get(name, input_for(fast)))
    workers = min(jobs, len(ids))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_experiment_worker, [(i, fast) for i in ids]))
