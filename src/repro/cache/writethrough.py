"""Write-through cache (the paper's §1 foil).

The paper restricts itself to write-back caches "because write-through
caches are known to generate much higher levels of traffic".  This
simulator makes that premise checkable: every store sends its word to
memory immediately (hit or miss).  Allocation policy matches the
write-back baseline (write-allocate) so the two differ only in the
write policy under comparison.  The dedicated benchmark compares the
policies' traffic.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError

_INVALID = -1


class WriteThroughCache:
    """Direct-mapped write-through, write-allocate cache."""

    def __init__(self, geometry: CacheGeometry) -> None:
        if geometry.ways != 1:
            raise ConfigurationError(
                "WriteThroughCache models the direct-mapped baseline only"
            )
        self.geometry = geometry
        self.stats = CacheStats()
        self._tags = [_INVALID] * geometry.num_sets

    def access(self, op: int, byte_addr: int) -> bool:
        """Simulate one access; returns True on a hit."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        index = line_addr & geom.set_mask
        stats = self.stats
        hit = self._tags[index] == line_addr
        if op:
            # Every store writes through: one word on the bus.
            stats.writebacks += 1
            stats.writeback_words += 1
            if hit:
                stats.write_hits += 1
                return True
            stats.write_misses += 1
            stats.fills += 1
            stats.fill_words += geom.words_per_line
            self._tags[index] = line_addr
            return False
        if hit:
            stats.read_hits += 1
            return True
        stats.read_misses += 1
        stats.fills += 1
        stats.fill_words += geom.words_per_line
        self._tags[index] = line_addr
        return False

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace of ``(op, addr, value)`` records."""
        access = self.access
        for op, byte_addr, _ in records:
            access(op, byte_addr)
        return self.stats
