"""Set-associative (LRU) and fully-associative write-back caches."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats


class SetAssociativeCache:
    """Write-back, write-allocate set-associative cache with true LRU.

    Each set is a recency-ordered list of ``[line_addr, dirty]`` entries,
    most recent first.  Associativities in the experiments are small (2–4
    ways, plus small fully-associative victim-cache-sized structures), so
    the list scan beats fancier structures.

    When :attr:`victim_log` is set to a list, every dirty eviction
    appends the written-back line's address (hierarchy composition).
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.stats = CacheStats()
        self._sets: List[List[List[int]]] = [
            [] for _ in range(geometry.num_sets)
        ]
        #: When a list, receives the line address of every dirty victim.
        self.victim_log: Optional[List[int]] = None

    @classmethod
    def fully_associative(
        cls, num_lines: int, line_bytes: int
    ) -> "SetAssociativeCache":
        """A fully-associative LRU cache of ``num_lines`` lines."""
        geometry = CacheGeometry(
            size_bytes=num_lines * line_bytes,
            line_bytes=line_bytes,
            ways=num_lines,
        )
        return cls(geometry)

    def access(self, op: int, byte_addr: int) -> bool:
        """Simulate one access; returns True on a hit."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        entries = self._sets[line_addr & geom.set_mask]
        stats = self.stats
        for position, entry in enumerate(entries):
            if entry[0] == line_addr:
                if position:
                    del entries[position]
                    entries.insert(0, entry)
                if op:
                    entry[1] = 1
                    stats.write_hits += 1
                else:
                    stats.read_hits += 1
                return True
        # Miss: evict LRU if the set is full, then fill MRU.
        if len(entries) >= geom.ways:
            victim = entries.pop()
            if victim[1]:
                stats.writebacks += 1
                stats.writeback_words += geom.words_per_line
                if self.victim_log is not None:
                    self.victim_log.append(victim[0])
        entries.insert(0, [line_addr, 1 if op else 0])
        stats.fills += 1
        stats.fill_words += geom.words_per_line
        if op:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
        return False

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace (records of ``(op, addr, value)``)
        through the per-access API."""
        access = self.access
        for op, byte_addr, _ in records:
            access(op, byte_addr)
        return self.stats

    def simulate_batch(
        self, records: Iterable[Tuple[int, int, int]]
    ) -> CacheStats:
        """Replay a whole trace through the hot-loop fast path.

        Bit-identical to :meth:`simulate`, with geometry, set storage
        and statistics counters hoisted into locals so the inner loop
        performs no attribute lookups or method calls.
        """
        geom = self.geometry
        shift = geom.line_shift
        mask = geom.set_mask
        ways = geom.ways
        words = geom.words_per_line
        sets = self._sets
        log = self.victim_log
        read_hits = write_hits = read_misses = write_misses = 0
        fills = writebacks = 0
        for op, byte_addr, _ in records:
            line_addr = byte_addr >> shift
            entries = sets[line_addr & mask]
            for position, entry in enumerate(entries):
                if entry[0] == line_addr:
                    if position:
                        del entries[position]
                        entries.insert(0, entry)
                    if op:
                        entry[1] = 1
                        write_hits += 1
                    else:
                        read_hits += 1
                    break
            else:
                if len(entries) >= ways:
                    victim = entries.pop()
                    if victim[1]:
                        writebacks += 1
                        if log is not None:
                            log.append(victim[0])
                entries.insert(0, [line_addr, 1 if op else 0])
                fills += 1
                if op:
                    write_misses += 1
                else:
                    read_misses += 1
        stats = self.stats
        stats.read_hits += read_hits
        stats.write_hits += write_hits
        stats.read_misses += read_misses
        stats.write_misses += write_misses
        stats.fills += fills
        stats.fill_words += fills * words
        stats.writebacks += writebacks
        stats.writeback_words += writebacks * words
        return stats

    def contains(self, byte_addr: int) -> bool:
        """True when the line holding ``byte_addr`` is resident."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        entries = self._sets[line_addr & geom.set_mask]
        return any(entry[0] == line_addr for entry in entries)

    def resident_lines(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(entries) for entries in self._sets)
