"""Main-memory backing store for the cache simulators.

Holds the authoritative word values during trace replay.  Replaying the
trace's stores against this zero-initialised memory reproduces every
value the traced program observed (see :meth:`WordMemory.mark_dead` for
why), so the value-centric simulators can reconstruct full line contents
on fills.
"""

from __future__ import annotations

from typing import Dict, List


class MainMemory:
    """Sparse word store with line-granular read/write helpers."""

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def read_word(self, byte_addr: int) -> int:
        """Read one word (unbacked locations read as zero)."""
        return self._words.get(byte_addr >> 2, 0)

    def write_word(self, byte_addr: int, value: int) -> None:
        """Write one word."""
        self._words[byte_addr >> 2] = value

    def read_line(self, line_addr: int, words_per_line: int) -> List[int]:
        """Read a whole line; ``line_addr`` is ``byte_addr >> line_shift``."""
        base_waddr = line_addr * words_per_line
        get = self._words.get
        return [get(base_waddr + offset, 0) for offset in range(words_per_line)]

    def write_line(self, line_addr: int, data: List[int]) -> None:
        """Write a whole line."""
        base_waddr = line_addr * len(data)
        words = self._words
        for offset, value in enumerate(data):
            words[base_waddr + offset] = value

    def __len__(self) -> int:
        return len(self._words)
