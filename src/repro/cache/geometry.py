"""Cache geometry: sizes, line shapes, and address decomposition."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.words import WORD_BYTES, is_power_of_two, log2_int


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a cache: total size, line size, and associativity.

    All three quantities must be powers of two, matching the paper's
    configurations (DMC of 4–64 KB, lines of 16/32/64 bytes, 1/2/4 ways).

    The derived fields give the address decomposition used by every
    simulator: a byte address ``a`` maps to line address ``a >>
    line_shift``, set index ``line_addr & (num_sets - 1)``, and tag
    ``line_addr >> set_shift``.
    """

    size_bytes: int
    line_bytes: int
    ways: int = 1

    def __post_init__(self) -> None:
        for name, value in (
            ("size_bytes", self.size_bytes),
            ("line_bytes", self.line_bytes),
            ("ways", self.ways),
        ):
            if not is_power_of_two(value):
                raise ConfigurationError(f"{name}={value} must be a power of two")
        if self.line_bytes < WORD_BYTES:
            raise ConfigurationError("line must hold at least one word")
        if self.size_bytes < self.line_bytes * self.ways:
            raise ConfigurationError(
                "cache must hold at least one full set "
                f"(size={self.size_bytes}, line={self.line_bytes}, ways={self.ways})"
            )

    # Derived shape ------------------------------------------------------
    @property
    def num_lines(self) -> int:
        """Total number of lines in the cache."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / ways)."""
        return self.num_lines // self.ways

    @property
    def words_per_line(self) -> int:
        """Words in one line."""
        return self.line_bytes // WORD_BYTES

    @property
    def line_shift(self) -> int:
        """Right shift turning a byte address into a line address."""
        return log2_int(self.line_bytes)

    @property
    def set_shift(self) -> int:
        """Right shift turning a line address into a tag."""
        return log2_int(self.num_sets)

    @property
    def set_mask(self) -> int:
        """Mask selecting the set index from a line address."""
        return self.num_sets - 1

    @property
    def word_mask(self) -> int:
        """Mask selecting the word-in-line index from a word address."""
        return self.words_per_line - 1

    # Address helpers ------------------------------------------------------
    def line_address(self, byte_addr: int) -> int:
        """Line address containing ``byte_addr``."""
        return byte_addr >> self.line_shift

    def set_index(self, byte_addr: int) -> int:
        """Set index for ``byte_addr``."""
        return (byte_addr >> self.line_shift) & self.set_mask

    def tag(self, byte_addr: int) -> int:
        """Tag for ``byte_addr``."""
        return byte_addr >> (self.line_shift + self.set_shift)

    def word_index(self, byte_addr: int) -> int:
        """Word-within-line index for ``byte_addr``."""
        return (byte_addr >> 2) & self.word_mask

    def describe(self) -> str:
        """Short human-readable form, e.g. ``16KB/32B/direct``."""
        assoc = "direct" if self.ways == 1 else f"{self.ways}-way"
        if self.ways == self.num_lines:
            assoc = "fully-assoc"
        return f"{self.size_bytes // 1024}KB/{self.line_bytes}B/{assoc}"
