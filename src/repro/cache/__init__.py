"""Trace-driven cache simulators.

Implements the conventional side of the paper's evaluation: write-back,
write-allocate direct-mapped and set-associative caches, Jouppi's victim
cache, a main-memory backing store, hit/miss/traffic statistics, and 3C
miss classification.  The value-centric FVC lives in :mod:`repro.fvc` and
builds on the geometry and statistics defined here.
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.cache.mainmem import MainMemory
from repro.cache.direct import DirectMappedCache
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.victim import VictimCacheSystem
from repro.cache.writethrough import WriteThroughCache
from repro.cache.hierarchy import TwoLevelFvcSystem, TwoLevelSystem
from repro.cache.classify import MissClassification, classify_misses

__all__ = [
    "CacheGeometry",
    "CacheStats",
    "MainMemory",
    "DirectMappedCache",
    "SetAssociativeCache",
    "VictimCacheSystem",
    "WriteThroughCache",
    "TwoLevelSystem",
    "TwoLevelFvcSystem",
    "MissClassification",
    "classify_misses",
]
