"""3C miss classification: compulsory / capacity / conflict.

Used to explain the set-associativity results (Fig. 14): the FVC removes
a mix of conflict and capacity misses, so benchmarks whose FVC gains were
mostly conflict misses (m88ksim, perl, li) lose the benefit once the base
cache becomes set-associative, while capacity-bound benchmarks (vortex,
gcc, go) keep it.

Classification follows Hill's standard definitions:

* **compulsory** — first-ever reference to the line;
* **capacity** — non-compulsory miss that a fully-associative LRU cache
  of the same total size would also take;
* **conflict** — the remainder (hit in the fully-associative cache, miss
  in the actual one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.direct import DirectMappedCache


@dataclass(frozen=True)
class MissClassification:
    """Counts of each miss class plus the totals they came from."""

    accesses: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def misses(self) -> int:
        """Total misses classified."""
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_rate(self) -> float:
        """Misses / accesses."""
        return self.misses / self.accesses if self.accesses else 0.0

    def fraction(self, kind: str) -> float:
        """Fraction of all misses of the given kind
        (``"compulsory"``/``"capacity"``/``"conflict"``)."""
        total = self.misses
        return getattr(self, kind) / total if total else 0.0


def classify_misses(
    records: Iterable[Tuple[int, int, int]], geometry: CacheGeometry
) -> MissClassification:
    """Classify every miss the ``geometry`` cache takes on the trace.

    Runs the target cache and a same-size fully-associative LRU cache
    side by side in a single pass.
    """
    if geometry.ways == 1:
        target = DirectMappedCache(geometry)
    else:
        target = SetAssociativeCache(geometry)
    ideal = SetAssociativeCache.fully_associative(
        num_lines=geometry.num_lines, line_bytes=geometry.line_bytes
    )
    seen_lines = set()
    line_shift = geometry.line_shift
    accesses = compulsory = capacity = conflict = 0
    for op, byte_addr, _ in records:
        accesses += 1
        target_hit = target.access(op, byte_addr)
        ideal_hit = ideal.access(op, byte_addr)
        line_addr = byte_addr >> line_shift
        first_touch = line_addr not in seen_lines
        if first_touch:
            seen_lines.add(line_addr)
        if target_hit:
            continue
        if first_touch:
            compulsory += 1
        elif ideal_hit:
            conflict += 1
        else:
            capacity += 1
    return MissClassification(
        accesses=accesses,
        compulsory=compulsory,
        capacity=capacity,
        conflict=conflict,
    )
