"""Write-back, write-allocate direct-mapped cache (the paper's DMC)."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError

#: Tag value meaning "invalid line" (real tags are non-negative).
_INVALID = -1


class DirectMappedCache:
    """The baseline DMC of the paper: direct-mapped, write-back,
    write-allocate.

    Tracks tags and dirty bits only — the conventional experiments need
    miss rates and traffic, not data contents.  (The combined DMC+FVC
    system in :mod:`repro.fvc.system` keeps its own data-carrying DMC,
    because eviction there must inspect word values.)
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        if geometry.ways != 1:
            raise ConfigurationError(
                "DirectMappedCache requires ways=1; "
                "use SetAssociativeCache for wider geometries"
            )
        self.geometry = geometry
        self.stats = CacheStats()
        self._tags = [_INVALID] * geometry.num_sets
        self._dirty = [False] * geometry.num_sets

    def access(self, op: int, byte_addr: int) -> bool:
        """Simulate one access; returns True on a hit."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        index = line_addr & geom.set_mask
        stats = self.stats
        if self._tags[index] == line_addr:
            if op:  # store
                self._dirty[index] = True
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            return True
        # Miss: evict (write back if dirty), then fill.
        if self._dirty[index]:
            stats.writebacks += 1
            stats.writeback_words += geom.words_per_line
        self._tags[index] = line_addr
        stats.fills += 1
        stats.fill_words += geom.words_per_line
        if op:
            self._dirty[index] = True
            stats.write_misses += 1
        else:
            self._dirty[index] = False
            stats.read_misses += 1
        return False

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace (records of ``(op, addr, value)``)."""
        access = self.access
        for op, byte_addr, _ in records:
            access(op, byte_addr)
        return self.stats

    def contains(self, byte_addr: int) -> bool:
        """True when the line holding ``byte_addr`` is resident."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        return self._tags[line_addr & geom.set_mask] == line_addr

    def flush(self) -> None:
        """Invalidate every line, writing back dirty ones."""
        geom = self.geometry
        for index in range(geom.num_sets):
            if self._tags[index] != _INVALID and self._dirty[index]:
                self.stats.writebacks += 1
                self.stats.writeback_words += geom.words_per_line
            self._tags[index] = _INVALID
            self._dirty[index] = False
