"""Write-back, write-allocate direct-mapped cache (the paper's DMC)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError

#: Tag value meaning "invalid line" (real tags are non-negative).
_INVALID = -1


class DirectMappedCache:
    """The baseline DMC of the paper: direct-mapped, write-back,
    write-allocate.

    Tracks tags and dirty bits only — the conventional experiments need
    miss rates and traffic, not data contents.  (The combined DMC+FVC
    system in :mod:`repro.fvc.system` keeps its own data-carrying DMC,
    because eviction there must inspect word values.)

    Dirty state lives in a ``bytearray`` (one byte per set): dense,
    allocation-free, and its items are small ints the batch loop can
    test and assign without boxing.

    When :attr:`victim_log` is set to a list, every dirty eviction
    appends the written-back line's address — the hierarchy composition
    uses this to direct L2 write-backs at the *victim* line.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        if geometry.ways != 1:
            raise ConfigurationError(
                "DirectMappedCache requires ways=1; "
                "use SetAssociativeCache for wider geometries"
            )
        self.geometry = geometry
        self.stats = CacheStats()
        self._tags = [_INVALID] * geometry.num_sets
        self._dirty = bytearray(geometry.num_sets)
        #: When a list, receives the line address of every dirty victim.
        self.victim_log: Optional[List[int]] = None

    def access(self, op: int, byte_addr: int) -> bool:
        """Simulate one access; returns True on a hit."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        index = line_addr & geom.set_mask
        stats = self.stats
        if self._tags[index] == line_addr:
            if op:  # store
                self._dirty[index] = 1
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            return True
        # Miss: evict (write back if dirty), then fill.
        if self._dirty[index]:
            stats.writebacks += 1
            stats.writeback_words += geom.words_per_line
            if self.victim_log is not None:
                self.victim_log.append(self._tags[index])
        self._tags[index] = line_addr
        stats.fills += 1
        stats.fill_words += geom.words_per_line
        if op:
            self._dirty[index] = 1
            stats.write_misses += 1
        else:
            self._dirty[index] = 0
            stats.read_misses += 1
        return False

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace (records of ``(op, addr, value)``)
        through the per-access API."""
        access = self.access
        for op, byte_addr, _ in records:
            access(op, byte_addr)
        return self.stats

    def simulate_batch(
        self, records: Iterable[Tuple[int, int, int]]
    ) -> CacheStats:
        """Replay a whole trace through the hot-loop fast path.

        Bit-identical to :meth:`simulate` — same tags, dirty bits and
        statistics — but with the geometry shifts/masks, the tag and
        dirty stores, and the statistics counters all hoisted into
        locals, so the inner loop does no attribute lookups and no
        method calls.
        """
        geom = self.geometry
        shift = geom.line_shift
        mask = geom.set_mask
        words = geom.words_per_line
        tags = self._tags
        dirty = self._dirty
        log = self.victim_log
        read_hits = write_hits = read_misses = write_misses = 0
        fills = writebacks = 0
        for op, byte_addr, _ in records:
            line_addr = byte_addr >> shift
            index = line_addr & mask
            if tags[index] == line_addr:
                if op:
                    dirty[index] = 1
                    write_hits += 1
                else:
                    read_hits += 1
            else:
                if dirty[index]:
                    writebacks += 1
                    if log is not None:
                        log.append(tags[index])
                tags[index] = line_addr
                fills += 1
                if op:
                    dirty[index] = 1
                    write_misses += 1
                else:
                    dirty[index] = 0
                    read_misses += 1
        stats = self.stats
        stats.read_hits += read_hits
        stats.write_hits += write_hits
        stats.read_misses += read_misses
        stats.write_misses += write_misses
        stats.fills += fills
        stats.fill_words += fills * words
        stats.writebacks += writebacks
        stats.writeback_words += writebacks * words
        return stats

    def contains(self, byte_addr: int) -> bool:
        """True when the line holding ``byte_addr`` is resident."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        return self._tags[line_addr & geom.set_mask] == line_addr

    def flush(self) -> None:
        """Invalidate every line, writing back dirty ones."""
        geom = self.geometry
        for index in range(geom.num_sets):
            if self._tags[index] != _INVALID and self._dirty[index]:
                self.stats.writebacks += 1
                self.stats.writeback_words += geom.words_per_line
                if self.victim_log is not None:
                    self.victim_log.append(self._tags[index])
            self._tags[index] = _INVALID
            self._dirty[index] = 0
