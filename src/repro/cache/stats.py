"""Hit/miss and traffic statistics shared by every cache simulator."""

from __future__ import annotations


class CacheStats:
    """Mutable counters accumulated during a simulation.

    Traffic is measured in *words* moved between the cache system and
    main memory, the paper's proxy for off-chip power: each line fill
    moves ``words_per_line`` words in, each line write-back moves
    ``words_per_line`` words out, and the FVC's word-granular flushes
    move exactly the dirty words.
    """

    __slots__ = (
        "read_hits",
        "read_misses",
        "write_hits",
        "write_misses",
        "fills",
        "writebacks",
        "fill_words",
        "writeback_words",
    )

    def __init__(self) -> None:
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.fills = 0
        self.writebacks = 0
        self.fill_words = 0
        self.writeback_words = 0

    # Aggregates ---------------------------------------------------------
    @property
    def accesses(self) -> int:
        """Total accesses simulated."""
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def hits(self) -> int:
        """Total hits."""
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        """Total misses."""
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0.0 when no accesses were simulated)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits / accesses."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def traffic_words(self) -> int:
        """Total words exchanged with main memory."""
        return self.fill_words + self.writeback_words

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one."""
        for field in CacheStats.__slots__:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def as_dict(self) -> dict:
        """Plain-dict snapshot (for reports and JSON output)."""
        snapshot = {field: getattr(self, field) for field in CacheStats.__slots__}
        snapshot["accesses"] = self.accesses
        snapshot["misses"] = self.misses
        snapshot["miss_rate"] = self.miss_rate
        snapshot["traffic_words"] = self.traffic_words
        return snapshot

    def __repr__(self) -> str:
        return (
            f"CacheStats(accesses={self.accesses}, "
            f"miss_rate={100 * self.miss_rate:.3f}%, "
            f"traffic={self.traffic_words} words)"
        )
