"""Jouppi's victim cache: a DMC backed by a tiny fully-associative buffer.

The paper compares the FVC against this design (Fig. 15): lines evicted
from the DMC enter the victim cache; a DMC miss that hits in the victim
cache swaps the two lines.  Because the victim cache holds whole
uncompressed lines and is fully associative, it must stay very small —
exactly the property the FVC's compression sidesteps.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError

_INVALID = -1


class VictimCacheSystem:
    """A direct-mapped cache plus an ``n``-entry fully-associative victim
    buffer with LRU replacement and line swapping on victim hits.

    ``stats`` reports the combined behaviour (an access hits overall iff
    it hits in the DMC or the victim cache); ``dmc_hits`` / ``vc_hits``
    split the hits by provider.
    """

    def __init__(self, geometry: CacheGeometry, victim_entries: int) -> None:
        if geometry.ways != 1:
            raise ConfigurationError("victim cache augments a direct-mapped cache")
        if victim_entries <= 0:
            raise ConfigurationError("victim cache needs at least one entry")
        self.geometry = geometry
        self.victim_entries = victim_entries
        self.stats = CacheStats()
        self.dmc_hits = 0
        self.vc_hits = 0
        self._tags = [_INVALID] * geometry.num_sets
        self._dirty = [False] * geometry.num_sets
        # Victim buffer: recency-ordered [line_addr, dirty], MRU first.
        self._victims: List[List[int]] = []

    # ------------------------------------------------------------------
    def access(self, op: int, byte_addr: int) -> bool:
        """Simulate one access; returns True on an overall hit."""
        geom = self.geometry
        line_addr = byte_addr >> geom.line_shift
        index = line_addr & geom.set_mask
        stats = self.stats
        if self._tags[index] == line_addr:
            self.dmc_hits += 1
            if op:
                self._dirty[index] = True
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            return True
        # Probe the victim buffer.
        victims = self._victims
        for position, entry in enumerate(victims):
            if entry[0] == line_addr:
                # Victim hit: swap the DMC line with the victim entry.
                del victims[position]
                self._swap_in(index, line_addr, bool(entry[1]), position=0)
                self.vc_hits += 1
                if op:
                    self._dirty[index] = True
                    stats.write_hits += 1
                else:
                    stats.read_hits += 1
                return True
        # Full miss: fill from memory, displaced DMC line goes to the buffer.
        self._evict_to_victim(index)
        self._tags[index] = line_addr
        self._dirty[index] = bool(op)
        stats.fills += 1
        stats.fill_words += geom.words_per_line
        if op:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
        return False

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace (records of ``(op, addr, value)``)."""
        access = self.access
        for op, byte_addr, _ in records:
            access(op, byte_addr)
        return self.stats

    # Internal helpers -------------------------------------------------
    def _swap_in(
        self, index: int, line_addr: int, dirty: bool, position: int
    ) -> None:
        """Install ``line_addr`` in DMC set ``index``; the displaced DMC
        line (if any) takes the victim-buffer slot at ``position``."""
        old_tag = self._tags[index]
        old_dirty = self._dirty[index]
        self._tags[index] = line_addr
        self._dirty[index] = dirty
        if old_tag != _INVALID:
            self._victims.insert(position, [old_tag, 1 if old_dirty else 0])
            self._trim_victims()

    def _evict_to_victim(self, index: int) -> None:
        """Move the DMC line at ``index`` (if valid) into the buffer."""
        tag = self._tags[index]
        if tag == _INVALID:
            return
        self._victims.insert(0, [tag, 1 if self._dirty[index] else 0])
        self._trim_victims()

    def _trim_victims(self) -> None:
        """Enforce the buffer capacity, writing back a dirty LRU victim."""
        if len(self._victims) <= self.victim_entries:
            return
        evicted = self._victims.pop()
        if evicted[1]:
            self.stats.writebacks += 1
            self.stats.writeback_words += self.geometry.words_per_line

    # Introspection ------------------------------------------------------
    def victim_resident(self, byte_addr: int) -> bool:
        """True when the line holding ``byte_addr`` sits in the buffer."""
        line_addr = byte_addr >> self.geometry.line_shift
        return any(entry[0] == line_addr for entry in self._victims)

    def storage_bytes(self) -> int:
        """Victim-buffer storage: data plus full line-address tags.

        Used by the equal-storage comparison of Fig. 15 (a 16-entry VC
        against a 128-entry FVC).
        """
        tag_bits = 32 - self.geometry.line_shift
        per_entry_bits = self.geometry.line_bytes * 8 + tag_bits + 2  # +valid+dirty
        return (self.victim_entries * per_entry_bits + 7) // 8
