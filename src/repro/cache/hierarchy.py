"""Two-level cache hierarchy (context for the L1-focused FVC study).

The paper evaluates the FVC beside an on-chip L1 in isolation; a
downstream adopter's first question is how the design composes with an
L2.  This substrate provides the conventional two-level baseline — an
L1 (direct-mapped or set-associative) backed by a unified set-
associative L2 — and a variant whose L1 is the DMC+FVC system, so the
`ext-hierarchy` experiment can ask whether the FVC's savings survive
when an L2 already filters the traffic.

Miss accounting: ``stats`` (the L1's) defines hits the processor sees;
``l2_stats`` counts the L1 miss stream's behaviour at L2.  Global miss
rate = L2 misses / processor accesses.

Write-backs are issued at the *victim* line's address: the L1
simulators log each dirty eviction's line address (``victim_log``),
and the hierarchy replays those addresses into the L2 — the physically
correct composition (an earlier approximation wrote the incoming
access's address instead, mis-steering L2 write traffic to the wrong
set whenever victim and newcomer differed in their L2 index bits).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig


class TwoLevelSystem:
    """Conventional L1 + unified L2 (both write-back, write-allocate).

    The L2 sees one read access per L1 fill and one write access per L1
    write-back (at the written-back line's own address) — the standard
    trace-driven composition.
    """

    def __init__(
        self, l1_geometry: CacheGeometry, l2_geometry: CacheGeometry
    ) -> None:
        if l2_geometry.size_bytes < l1_geometry.size_bytes:
            raise ConfigurationError("L2 must be at least as large as L1")
        if l2_geometry.line_bytes < l1_geometry.line_bytes:
            raise ConfigurationError("L2 lines must cover L1 lines")
        self.l1_geometry = l1_geometry
        self.l2_geometry = l2_geometry
        if l1_geometry.ways == 1:
            self._l1 = DirectMappedCache(l1_geometry)
        else:
            self._l1 = SetAssociativeCache(l1_geometry)
        self._l1.victim_log = []
        self._l2 = SetAssociativeCache(l2_geometry)

    @property
    def stats(self) -> CacheStats:
        """L1 statistics (processor-visible hits and misses)."""
        return self._l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        """L2 statistics over the L1 miss/write-back stream."""
        return self._l2.stats

    def access(self, op: int, byte_addr: int) -> bool:
        """One processor access; returns True on an L1 hit."""
        l1 = self._l1
        log = l1.victim_log
        log.clear()
        before_fills = l1.stats.fills
        hit = l1.access(op, byte_addr)
        if l1.stats.fills > before_fills:
            self._l2.access(0, byte_addr)  # fill = L2 read
        if log:
            shift = self.l1_geometry.line_shift
            for victim_line in log:
                self._l2.access(1, victim_line << shift)
        return hit

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace of ``(op, addr, value)`` records."""
        access = self.access
        for op, byte_addr, _ in records:
            access(op, byte_addr)
        return self.stats

    def simulate_batch(
        self, records: Iterable[Tuple[int, int, int]]
    ) -> CacheStats:
        """Replay a whole trace with the composition loop's attribute
        lookups hoisted into locals (bit-identical to :meth:`simulate`)."""
        l1 = self._l1
        l1_access = l1.access
        l1_stats = l1.stats
        l2_access = self._l2.access
        log = l1.victim_log
        shift = self.l1_geometry.line_shift
        fills = l1_stats.fills
        for op, byte_addr, _ in records:
            log.clear()
            l1_access(op, byte_addr)
            new_fills = l1_stats.fills
            if new_fills > fills:
                fills = new_fills
                l2_access(0, byte_addr)
            if log:
                for victim_line in log:
                    l2_access(1, victim_line << shift)
        return self.stats

    @property
    def global_miss_rate(self) -> float:
        """L2 misses per processor access."""
        accesses = self.stats.accesses
        return self._l2.stats.misses / accesses if accesses else 0.0


class TwoLevelFvcSystem:
    """DMC+FVC as the L1, backed by the same unified L2.

    L1-side write-backs — dirty main-cache victims and word-granular
    FVC entry flushes alike — reach the L2 at the flushed line's own
    address via the L1's ``victim_log``.
    """

    def __init__(
        self,
        l1_geometry: CacheGeometry,
        l2_geometry: CacheGeometry,
        fvc_entries: int,
        encoder: FrequentValueEncoder,
        config: Optional[FvcSystemConfig] = None,
    ) -> None:
        if l2_geometry.size_bytes < l1_geometry.size_bytes:
            raise ConfigurationError("L2 must be at least as large as L1")
        self.l1_geometry = l1_geometry
        self.l2_geometry = l2_geometry
        self._l1 = FvcSystem(l1_geometry, fvc_entries, encoder, config=config)
        self._l1.victim_log = []
        self._l2 = SetAssociativeCache(l2_geometry)

    @property
    def stats(self) -> CacheStats:
        """L1 (DMC+FVC) statistics."""
        return self._l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        """L2 statistics over the L1 miss/write-back stream."""
        return self._l2.stats

    @property
    def fvc_hits(self) -> int:
        """Hits served from the compressed codes."""
        return self._l1.fvc_hits

    def access(self, op: int, byte_addr: int, value: int) -> bool:
        """One processor access; returns True on an L1-side hit."""
        l1 = self._l1
        log = l1.victim_log
        log.clear()
        before_fills = l1.stats.fills
        hit = l1.access(op, byte_addr, value)
        if l1.stats.fills > before_fills:
            self._l2.access(0, byte_addr)
        if log:
            shift = self.l1_geometry.line_shift
            for victim_line in log:
                self._l2.access(1, victim_line << shift)
        return hit

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace of ``(op, addr, value)`` records."""
        access = self.access
        for op, byte_addr, value in records:
            access(op, byte_addr, value)
        return self.stats

    def simulate_batch(
        self, records: Iterable[Tuple[int, int, int]]
    ) -> CacheStats:
        """Replay a whole trace with the composition loop's attribute
        lookups hoisted into locals (bit-identical to :meth:`simulate`)."""
        l1 = self._l1
        l1_access = l1.access
        l1_stats = l1.stats
        l2_access = self._l2.access
        log = l1.victim_log
        shift = self.l1_geometry.line_shift
        fills = l1_stats.fills
        for op, byte_addr, value in records:
            log.clear()
            l1_access(op, byte_addr, value)
            new_fills = l1_stats.fills
            if new_fills > fills:
                fills = new_fills
                l2_access(0, byte_addr)
            if log:
                for victim_line in log:
                    l2_access(1, victim_line << shift)
        return self.stats

    @property
    def global_miss_rate(self) -> float:
        """L2 misses per processor access."""
        accesses = self.stats.accesses
        return self._l2.stats.misses / accesses if accesses else 0.0
