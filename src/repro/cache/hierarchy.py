"""Two-level cache hierarchy (context for the L1-focused FVC study).

The paper evaluates the FVC beside an on-chip L1 in isolation; a
downstream adopter's first question is how the design composes with an
L2.  This substrate provides the conventional two-level baseline — an
L1 (direct-mapped or set-associative) backed by a unified set-
associative L2 — and a variant whose L1 is the DMC+FVC system, so the
`ext-hierarchy` experiment can ask whether the FVC's savings survive
when an L2 already filters the traffic.

Miss accounting: ``stats`` (the L1's) defines hits the processor sees;
``l2_stats`` counts the L1 miss stream's behaviour at L2.  Global miss
rate = L2 misses / processor accesses.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.common.errors import ConfigurationError
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig


class TwoLevelSystem:
    """Conventional L1 + unified L2 (both write-back, write-allocate).

    The L2 sees one read access per L1 fill and one write access per L1
    write-back — the standard trace-driven composition.
    """

    def __init__(
        self, l1_geometry: CacheGeometry, l2_geometry: CacheGeometry
    ) -> None:
        if l2_geometry.size_bytes < l1_geometry.size_bytes:
            raise ConfigurationError("L2 must be at least as large as L1")
        if l2_geometry.line_bytes < l1_geometry.line_bytes:
            raise ConfigurationError("L2 lines must cover L1 lines")
        self.l1_geometry = l1_geometry
        self.l2_geometry = l2_geometry
        if l1_geometry.ways == 1:
            self._l1 = DirectMappedCache(l1_geometry)
        else:
            self._l1 = SetAssociativeCache(l1_geometry)
        self._l2 = SetAssociativeCache(l2_geometry)

    @property
    def stats(self) -> CacheStats:
        """L1 statistics (processor-visible hits and misses)."""
        return self._l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        """L2 statistics over the L1 miss/write-back stream."""
        return self._l2.stats

    def access(self, op: int, byte_addr: int) -> bool:
        """One processor access; returns True on an L1 hit."""
        before_fills = self._l1.stats.fills
        before_writebacks = self._l1.stats.writebacks
        hit = self._l1.access(op, byte_addr)
        if self._l1.stats.fills > before_fills:
            self._l2.access(0, byte_addr)  # fill = L2 read
        if self._l1.stats.writebacks > before_writebacks:
            # The written-back line's address is unknown to the L1 API;
            # modelling it as a write to the same set index slightly
            # understates L2 write traffic but keeps the composition
            # trace-driven.  Fill-path reads dominate the L2 anyway.
            self._l2.access(1, byte_addr)
        return hit

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace of ``(op, addr, value)`` records."""
        access = self.access
        for op, byte_addr, _ in records:
            access(op, byte_addr)
        return self.stats

    @property
    def global_miss_rate(self) -> float:
        """L2 misses per processor access."""
        accesses = self.stats.accesses
        return self._l2.stats.misses / accesses if accesses else 0.0


class TwoLevelFvcSystem:
    """DMC+FVC as the L1, backed by the same unified L2."""

    def __init__(
        self,
        l1_geometry: CacheGeometry,
        l2_geometry: CacheGeometry,
        fvc_entries: int,
        encoder: FrequentValueEncoder,
        config: Optional[FvcSystemConfig] = None,
    ) -> None:
        if l2_geometry.size_bytes < l1_geometry.size_bytes:
            raise ConfigurationError("L2 must be at least as large as L1")
        self.l1_geometry = l1_geometry
        self.l2_geometry = l2_geometry
        self._l1 = FvcSystem(l1_geometry, fvc_entries, encoder, config=config)
        self._l2 = SetAssociativeCache(l2_geometry)

    @property
    def stats(self) -> CacheStats:
        """L1 (DMC+FVC) statistics."""
        return self._l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        """L2 statistics over the L1 miss/write-back stream."""
        return self._l2.stats

    @property
    def fvc_hits(self) -> int:
        """Hits served from the compressed codes."""
        return self._l1.fvc_hits

    def access(self, op: int, byte_addr: int, value: int) -> bool:
        """One processor access; returns True on an L1-side hit."""
        before_fills = self._l1.stats.fills
        before_writebacks = self._l1.stats.writebacks
        hit = self._l1.access(op, byte_addr, value)
        if self._l1.stats.fills > before_fills:
            self._l2.access(0, byte_addr)
        if self._l1.stats.writebacks > before_writebacks:
            self._l2.access(1, byte_addr)
        return hit

    def simulate(self, records: Iterable[Tuple[int, int, int]]) -> CacheStats:
        """Replay a whole trace of ``(op, addr, value)`` records."""
        access = self.access
        for op, byte_addr, value in records:
            access(op, byte_addr, value)
        return self.stats

    @property
    def global_miss_rate(self) -> float:
        """L2 misses per processor access."""
        accesses = self.stats.accesses
        return self._l2.stats.misses / accesses if accesses else 0.0
