"""Reuse-distance (LRU stack distance) profiling.

The classic Mattson measurement: for each access, how many *distinct*
lines were touched since the previous access to the same line.  A fully
associative LRU cache of C lines hits exactly the accesses with
distance < C, so the histogram is a cache-size-independent fingerprint
of a trace's locality.

It also explains the FVC's reach precisely, which is how the analog
suite was calibrated: a side FVC of E entries extends the effective
line capacity from C to at most C+E *for frequent-valued words*, so
the misses it can remove are the accesses whose stack distance falls
in ``[C, C+E)`` (times the frequent-word fraction).  The helper
:func:`fvc_catchable_fraction` computes that band's share.

The implementation uses the standard Fenwick-tree formulation:
O(N log U) for N accesses over U distinct lines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple


class _Fenwick:
    """Binary indexed tree over access timestamps."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


@dataclass(frozen=True)
class ReuseProfile:
    """Histogram of stack distances plus the cold (first-touch) count.

    ``histogram[d]`` counts line accesses whose LRU stack distance was
    exactly ``d`` distinct lines; first touches are ``cold_accesses``.
    """

    histogram: Dict[int, int]
    cold_accesses: int
    total_accesses: int

    def hits_at_capacity(self, lines: int) -> int:
        """Accesses a fully-associative LRU cache of ``lines`` lines
        would hit."""
        return sum(
            count for distance, count in self.histogram.items()
            if distance < lines
        )

    def miss_rate_at_capacity(self, lines: int) -> float:
        """Fully-associative LRU miss rate at the given capacity."""
        if not self.total_accesses:
            return 0.0
        return 1.0 - self.hits_at_capacity(lines) / self.total_accesses

    def band_fraction(self, low: int, high: int) -> float:
        """Share of all accesses with stack distance in ``[low, high)``."""
        if not self.total_accesses:
            return 0.0
        in_band = sum(
            count for distance, count in self.histogram.items()
            if low <= distance < high
        )
        return in_band / self.total_accesses

    def working_set_lines(self, coverage: float = 0.95) -> int:
        """Smallest capacity hitting ``coverage`` of the non-cold hits."""
        reusable = self.total_accesses - self.cold_accesses
        if reusable <= 0:
            return 0
        needed = coverage * reusable
        running = 0
        for distance in sorted(self.histogram):
            running += self.histogram[distance]
            if running >= needed:
                return distance + 1
        return max(self.histogram, default=0) + 1


def reuse_distance_profile(
    records: Iterable[Tuple[int, int, int]], line_bytes: int = 32
) -> ReuseProfile:
    """Compute the line-granular stack-distance histogram of a trace."""
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise ValueError("line_bytes must be a positive power of two")
    shift = line_bytes.bit_length() - 1
    records = list(records)
    tree = _Fenwick(len(records) + 1)
    last_position: Dict[int, int] = {}
    histogram: Counter = Counter()
    cold = 0
    total = 0
    for position, (_, address, _) in enumerate(records):
        line = address >> shift
        total += 1
        previous = last_position.get(line)
        if previous is None:
            cold += 1
        else:
            # Distinct lines touched strictly after `previous`.
            distance = tree.prefix_sum(len(records)) - tree.prefix_sum(previous)
            histogram[distance] += 1
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[line] = position
    return ReuseProfile(
        histogram=dict(histogram), cold_accesses=cold, total_accesses=total
    )


def fvc_catchable_fraction(
    profile: ReuseProfile,
    dmc_lines: int,
    fvc_entries: int,
    frequent_word_fraction: float = 1.0,
) -> float:
    """Upper-bound estimate of the miss share a side FVC can remove.

    Accesses with stack distance in ``[dmc_lines, dmc_lines +
    fvc_entries)`` miss the cache but could be held by the FVC — when
    the accessed word is a frequent value, hence the scaling factor.
    """
    if not 0.0 <= frequent_word_fraction <= 1.0:
        raise ValueError("frequent_word_fraction must lie in [0, 1]")
    band = profile.band_fraction(dmc_lines, dmc_lines + fvc_entries)
    return band * frequent_word_fraction
