"""Coverage over execution time (paper Fig. 3).

Combines two measurements at each point of execution:

* from the *trace*: cumulative accesses, cumulative accesses involving
  the top-1/3/7/10 accessed values, and distinct values accessed so far
  (the right-hand graph of Fig. 3);
* from *occurrence snapshots*: live locations, locations holding the
  top-1/3/7/10 occurring values, and distinct values in memory (the
  left-hand graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.profiling.access import profile_accessed_values
from repro.profiling.occurrence import OccurrenceProfile
from repro.trace.trace import Trace

_DEPTHS = (1, 3, 7, 10)


@dataclass(frozen=True)
class TimelinePoint:
    """One point on the Fig. 3 curves.

    ``covered_accesses[i]`` / ``covered_locations[i]`` give the counts
    for the top ``(1, 3, 7, 10)[i]`` values, so consecutive differences
    reproduce the bands between the paper's curves.
    """

    access_count: int
    cumulative_accesses: int
    covered_accesses: Tuple[int, int, int, int]
    distinct_values_accessed: int
    live_locations: int
    covered_locations: Tuple[int, int, int, int]
    distinct_values_in_memory: int


def profile_timeline(
    trace: Trace,
    occurrence: OccurrenceProfile,
    depths: Sequence[int] = _DEPTHS,
) -> List[TimelinePoint]:
    """Build the Fig. 3 curves, one point per occurrence snapshot.

    The value rankings are the full-run rankings (the paper plots the
    locations/accesses of the *final* top-10 values over time).
    """
    access_profile = profile_accessed_values(trace)
    accessed_sets = [set(access_profile.top_values(k)) for k in depths]
    occurring_sets = [set(occurrence.top_values(k)) for k in depths]

    checkpoints = sorted(s.access_count for s in occurrence.samples)
    by_count = {s.access_count: s for s in occurrence.samples}

    points: List[TimelinePoint] = []
    records = trace.records
    position = 0
    covered = [0] * len(depths)
    seen_values: set = set()
    for checkpoint in checkpoints:
        limit = min(checkpoint, len(records))
        while position < limit:
            value = records[position][2]
            seen_values.add(value)
            for index, wanted in enumerate(accessed_sets):
                if value in wanted:
                    covered[index] += 1
            position += 1
        sample = by_count[checkpoint]
        covered_locations = tuple(
            sum(sample.counts.get(v, 0) for v in wanted)
            for wanted in occurring_sets
        )
        points.append(
            TimelinePoint(
                access_count=checkpoint,
                cumulative_accesses=position,
                covered_accesses=tuple(covered),  # type: ignore[arg-type]
                distinct_values_accessed=len(seen_values),
                live_locations=sample.live_locations,
                covered_locations=covered_locations,  # type: ignore[arg-type]
                distinct_values_in_memory=len(sample.counts),
            )
        )
    return points
