"""Constant-address analysis (paper Table 4).

An address is *constant* when every access to it over the whole
execution observes the same value — the paper's bridge between frequent
value locality and classic load value locality.  The six FVL benchmarks
score high (61–99%, except li's heavily mutated cons cells at 29%);
compress and ijpeg score near zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.trace.trace import Trace


@dataclass(frozen=True)
class ConstancyResult:
    """Counts of constant vs mutating referenced addresses."""

    referenced_addresses: int
    constant_addresses: int

    @property
    def constant_fraction(self) -> float:
        """Fraction of referenced addresses that stayed constant."""
        if not self.referenced_addresses:
            return 0.0
        return self.constant_addresses / self.referenced_addresses


def profile_constancy(trace: Trace) -> ConstancyResult:
    """Classify every referenced address as constant or mutating.

    The paper treats each allocation of a reused address separately; the
    trace does not carry allocation events, so reuse with a different
    value counts as mutation here — a strictly conservative
    approximation (it can only lower the constant fraction).
    """
    first_value: Dict[int, int] = {}
    mutated: set = set()
    for _, address, value in trace.records:
        known = first_value.get(address)
        if known is None:
            first_value[address] = value
        elif known != value:
            mutated.add(address)
    referenced = len(first_value)
    return ConstancyResult(
        referenced_addresses=referenced,
        constant_addresses=referenced - len(mutated),
    )
