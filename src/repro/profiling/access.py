"""Frequently *accessed* values (paper §2, Fig. 1/2 and Table 1).

A value's access frequency is the number of load/store records carrying
it, accumulated over the entire execution — exactly the paper's
measurement, and the ranking that configures the FVC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.profiling.topk import ExactTopK
from repro.trace.trace import Trace


@dataclass(frozen=True)
class AccessProfile:
    """Ranked accessed values with coverage helpers.

    ``ranked`` holds ``(value, access count)`` pairs, most frequent
    first, truncated to the requested depth.
    """

    total_accesses: int
    distinct_values: int
    ranked: Tuple[Tuple[int, int], ...]

    def top_values(self, k: int) -> List[int]:
        """The ``k`` most frequently accessed values."""
        return [value for value, _ in self.ranked[:k]]

    def coverage(self, k: int) -> float:
        """Fraction of all accesses involving the top ``k`` values
        (the right-hand bars of Fig. 1)."""
        if not self.total_accesses:
            return 0.0
        covered = sum(count for _, count in self.ranked[:k])
        return covered / self.total_accesses

    def coverage_profile(self, ks: Sequence[int] = (1, 3, 7, 10)) -> List[float]:
        """Coverage at each requested depth."""
        return [self.coverage(k) for k in ks]


def profile_accessed_values(
    trace: Trace, depth: int = 32
) -> AccessProfile:
    """Rank the values involved in a trace's accesses.

    ``depth`` bounds how many ranked values are retained; 32 comfortably
    covers every study in the paper (which never looks past the top 10).
    """
    counter = ExactTopK()
    add = counter.add
    for _, _, value in trace.records:
        add(value)
    return AccessProfile(
        total_accesses=counter.total,
        distinct_values=counter.distinct,
        ranked=tuple(counter.top(depth)),
    )
