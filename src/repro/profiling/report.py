"""Consolidated frequent-value-locality report for one workload.

Bundles the §2 measurements (access coverage, occurrence coverage,
constancy, stability) into one text report — the CLI's ``report``
command and a convenient one-call API for notebook use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.words import word_to_hex
from repro.profiling.access import AccessProfile, profile_accessed_values
from repro.profiling.constancy import ConstancyResult, profile_constancy
from repro.profiling.occurrence import OccurrenceProfile, profile_occurring_values
from repro.profiling.stability import StabilityResult, profile_stability
from repro.trace.trace import Trace
from repro.workloads.base import Workload


@dataclass(frozen=True)
class FvlReport:
    """All §2 measurements for one (workload, input) pair."""

    workload_name: str
    input_name: str
    accesses: int
    access: AccessProfile
    occurrence: Optional[OccurrenceProfile]
    constancy: ConstancyResult
    stability: StabilityResult

    @property
    def exhibits_fvl(self) -> bool:
        """The paper's informal criterion: a handful of values covering
        a large share of accesses."""
        return self.access.coverage(10) > 0.25

    def format(self) -> str:
        """Multi-line text rendering of the whole study."""
        lines: List[str] = [
            f"frequent value locality report: {self.workload_name} "
            f"({self.input_name} input, {self.accesses:,} accesses)",
            "",
            "top accessed values (rank, value, share):",
        ]
        for rank, (value, count) in enumerate(self.access.ranked[:10], 1):
            share = 100 * count / max(1, self.access.total_accesses)
            lines.append(f"  {rank:2d}. {word_to_hex(value):>10s}  {share:5.1f}%")
        lines.append("")
        lines.append(
            "access coverage  : "
            + "  ".join(
                f"top{k}={100 * self.access.coverage(k):.1f}%"
                for k in (1, 3, 7, 10)
            )
        )
        if self.occurrence is not None:
            lines.append(
                "location coverage: "
                + "  ".join(
                    f"top{k}={100 * self.occurrence.coverage(k):.1f}%"
                    for k in (1, 3, 7, 10)
                )
            )
        lines.append(
            f"constant addrs   : {100 * self.constancy.constant_fraction:.1f}% "
            f"of {self.constancy.referenced_addresses:,} referenced"
        )
        stable = self.stability.membership_stable_at
        lines.append(
            "values found     : "
            + "  ".join(
                f"top{k}@{100 * stable[k]:.0f}%" for k in sorted(stable)
            )
            + " of execution (membership in the running top-10)"
        )
        lines.append("")
        verdict = "exhibits" if self.exhibits_fvl else "does NOT exhibit"
        lines.append(f"verdict: {self.workload_name} {verdict} frequent "
                     "value locality")
        return "\n".join(lines)


def build_report(
    workload: Workload,
    input_name: str = "ref",
    trace: Optional[Trace] = None,
    include_occurrence: bool = True,
) -> FvlReport:
    """Run every §2 measurement for one workload input.

    ``trace`` may be supplied to avoid regenerating it; the occurrence
    study always needs its own instrumented run (it samples live
    memory), so ``include_occurrence=False`` skips it for speed.
    """
    if trace is None:
        trace = workload.generate_trace(input_name)
    occurrence = None
    if include_occurrence:
        occurrence = profile_occurring_values(
            workload, input_name,
            sample_interval=max(1, len(trace) // 12),
        )
    return FvlReport(
        workload_name=workload.name,
        input_name=input_name,
        accesses=len(trace),
        access=profile_accessed_values(trace),
        occurrence=occurrence,
        constancy=profile_constancy(trace),
        stability=profile_stability(trace, ks=(1, 3, 7), checkpoints=100),
    )
