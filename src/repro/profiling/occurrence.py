"""Frequently *occurring* values (paper §2).

Occurrence is a property of memory contents, not of the access stream:
every ``sample_interval`` accesses the profiler snapshots the values of
all *live* locations (referenced and not deallocated — the paper's
locations of "interest") and averages across snapshots, standing in for
the paper's every-10M-instructions sampling.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class OccurrenceSample:
    """One snapshot of live memory."""

    access_count: int
    live_locations: int
    counts: Dict[int, int]


@dataclass(frozen=True)
class OccurrenceProfile:
    """All snapshots plus the aggregate occurrence ranking."""

    samples: Tuple[OccurrenceSample, ...]
    ranked: Tuple[Tuple[int, int], ...]

    def top_values(self, k: int) -> List[int]:
        """The ``k`` most frequently occurring values (aggregate)."""
        return [value for value, _ in self.ranked[:k]]

    def coverage(self, k: int) -> float:
        """Mean fraction of live locations occupied by the aggregate
        top-``k`` values (the left-hand bars of Fig. 1)."""
        return self.coverage_of(self.top_values(k))

    def coverage_of(self, values: Sequence[int]) -> float:
        """Mean fraction of live locations holding any of ``values``."""
        wanted = set(values)
        fractions = []
        for sample in self.samples:
            if not sample.live_locations:
                continue
            held = sum(sample.counts.get(value, 0) for value in wanted)
            fractions.append(held / sample.live_locations)
        if not fractions:
            return 0.0
        return sum(fractions) / len(fractions)

    def coverage_profile(self, ks: Sequence[int] = (1, 3, 7, 10)) -> List[float]:
        """Coverage at each requested depth."""
        return [self.coverage(k) for k in ks]

    @property
    def mean_distinct_values(self) -> float:
        """Mean number of distinct values per snapshot (the bottom curve
        of Fig. 3's locations graph)."""
        if not self.samples:
            return 0.0
        return sum(len(s.counts) for s in self.samples) / len(self.samples)


class OccurrenceCollector:
    """The sampler hook handed to :class:`WordMemory`.

    Collects one :class:`OccurrenceSample` per invocation; attach via
    ``AddressSpace(sample_interval=..., sampler=collector)``.
    """

    def __init__(self) -> None:
        self._samples: List[OccurrenceSample] = []

    def __call__(self, memory) -> None:
        counts = Counter(memory.live_values())
        self._samples.append(
            OccurrenceSample(
                access_count=memory.access_count,
                live_locations=memory.live_count,
                counts=dict(counts),
            )
        )

    def build_profile(self, depth: int = 32) -> OccurrenceProfile:
        """Aggregate the snapshots into an :class:`OccurrenceProfile`."""
        aggregate: Counter = Counter()
        for sample in self._samples:
            aggregate.update(sample.counts)
        ranked = sorted(aggregate.items(), key=lambda item: (-item[1], item[0]))
        return OccurrenceProfile(
            samples=tuple(self._samples),
            ranked=tuple(ranked[:depth]),
        )

    @property
    def sample_count(self) -> int:
        """Snapshots collected so far."""
        return len(self._samples)


def profile_occurring_values(
    workload, input_name: str, sample_interval: int = 50_000, depth: int = 32
) -> OccurrenceProfile:
    """Run ``workload`` while sampling live memory every
    ``sample_interval`` accesses.

    ``workload`` is any object with the
    :meth:`repro.workloads.base.Workload.execute` signature.
    """
    collector = OccurrenceCollector()
    workload.execute(
        input_name,
        record=None,
        sample_interval=sample_interval,
        sampler=collector,
    )
    return collector.build_profile(depth)
