"""Spatial distribution of frequent values (paper Fig. 5).

The paper takes a mid-execution snapshot of referenced memory, breaks it
into blocks of 800 consecutive referenced locations, views each block as
100 lines of 8 words, and plots the average number of frequent values
per line in each block.  A flat curve means the frequent values are
spread uniformly — the property that makes a uniformly indexed FVC
effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, pstdev
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class SpatialProfile:
    """Per-block frequent-value densities.

    ``per_block`` holds, for each block of ``block_words`` consecutive
    referenced locations, the mean count of frequent values per
    ``line_words``-word line.
    """

    block_words: int
    line_words: int
    per_block: Tuple[float, ...]

    @property
    def mean_density(self) -> float:
        """Grand mean of frequent values per line."""
        return mean(self.per_block) if self.per_block else 0.0

    @property
    def stdev_density(self) -> float:
        """Population standard deviation across blocks — the paper's
        uniformity claim is a small value here relative to the mean."""
        return pstdev(self.per_block) if len(self.per_block) > 1 else 0.0

    @property
    def uniformity(self) -> float:
        """Coefficient of variation (stdev / mean); lower is flatter."""
        grand = self.mean_density
        return self.stdev_density / grand if grand else 0.0


def profile_spatial_distribution(
    live_items: Sequence[Tuple[int, int]],
    frequent_values: Sequence[int],
    block_words: int = 800,
    line_words: int = 8,
) -> SpatialProfile:
    """Compute Fig. 5 from a live-memory snapshot.

    Parameters
    ----------
    live_items:
        ``(byte_address, value)`` pairs of the referenced locations
        (e.g. ``WordMemory.live_items()`` at mid-execution).
    frequent_values:
        The frequent value set (the paper uses the top 7 occurring).
    """
    if block_words <= 0 or line_words <= 0 or block_words % line_words:
        raise ValueError(
            "block_words must be a positive multiple of line_words"
        )
    wanted = set(frequent_values)
    ordered = sorted(live_items)
    flags = [1 if value in wanted else 0 for _, value in ordered]

    densities: List[float] = []
    lines_per_block = block_words // line_words
    for start in range(0, len(flags) - block_words + 1, block_words):
        block = flags[start : start + block_words]
        per_line = [
            sum(block[line_start : line_start + line_words])
            for line_start in range(0, block_words, line_words)
        ]
        densities.append(sum(per_line) / lines_per_block)
    return SpatialProfile(
        block_words=block_words,
        line_words=line_words,
        per_block=tuple(densities),
    )
