"""Frequent value locality profilers (paper §2).

Every measurement of the paper's characterisation study has a module
here:

* :mod:`repro.profiling.topk` — exact and streaming top-k counters;
* :mod:`repro.profiling.access` — frequently *accessed* values (Fig. 1/2
  right-hand bars, Table 1 "accessed" columns);
* :mod:`repro.profiling.occurrence` — frequently *occurring* values via
  sampled snapshots of live memory (Fig. 1/2 left-hand bars, Table 1
  "occurring" columns);
* :mod:`repro.profiling.timeline` — coverage curves over execution
  (Fig. 3);
* :mod:`repro.profiling.spatial` — frequent-value density across memory
  blocks (Fig. 5);
* :mod:`repro.profiling.stability` — when the top-k set stabilises
  (Table 3);
* :mod:`repro.profiling.constancy` — addresses whose value never changes
  (Table 4);
* :mod:`repro.profiling.sensitivity` — top-k overlap across inputs
  (Table 2).
"""

from repro.profiling.topk import ExactTopK, MisraGries, SpaceSaving
from repro.profiling.access import AccessProfile, profile_accessed_values
from repro.profiling.occurrence import OccurrenceProfile, profile_occurring_values
from repro.profiling.timeline import TimelinePoint, profile_timeline
from repro.profiling.spatial import SpatialProfile, profile_spatial_distribution
from repro.profiling.stability import StabilityResult, profile_stability
from repro.profiling.constancy import ConstancyResult, profile_constancy
from repro.profiling.sensitivity import OverlapResult, top_value_overlap
from repro.profiling.reuse import (
    ReuseProfile,
    fvc_catchable_fraction,
    reuse_distance_profile,
)

__all__ = [
    "ExactTopK",
    "MisraGries",
    "SpaceSaving",
    "AccessProfile",
    "profile_accessed_values",
    "OccurrenceProfile",
    "profile_occurring_values",
    "TimelinePoint",
    "profile_timeline",
    "SpatialProfile",
    "profile_spatial_distribution",
    "StabilityResult",
    "profile_stability",
    "ConstancyResult",
    "profile_constancy",
    "OverlapResult",
    "top_value_overlap",
    "ReuseProfile",
    "reuse_distance_profile",
    "fvc_catchable_fraction",
]
