"""Top-k frequency counting: exact and streaming.

The paper finds frequent values by profiling a full run (exact counts).
A hardware implementation — and the dynamic-FVC extension in
:mod:`repro.fvc.dynamic` — needs bounded state, so two classic streaming
summaries are provided as well:

* **Misra–Gries**: with ``k`` counters, any value whose true frequency
  exceeds ``n / (k + 1)`` is guaranteed to be retained;
* **Space-Saving** (Metwally et al.): additionally carries count
  estimates with bounded overestimation error, making the final ranking
  usable directly.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple


class ExactTopK:
    """Exact value-frequency counter (a thin, intent-revealing wrapper
    over :class:`collections.Counter`)."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self.total = 0

    def add(self, value: int) -> None:
        """Count one observation."""
        self._counts[value] += 1
        self.total += 1

    def add_many(self, values: Iterable[int]) -> None:
        """Count a batch of observations."""
        batch = Counter(values)
        self._counts.update(batch)
        self.total += sum(batch.values())

    def top(self, k: int) -> List[Tuple[int, int]]:
        """The ``k`` most frequent ``(value, count)`` pairs, ties broken
        by value for determinism."""
        ranked = sorted(self._counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def top_values(self, k: int) -> List[int]:
        """Just the values of :meth:`top`."""
        return [value for value, _ in self.top(k)]

    def count(self, value: int) -> int:
        """Exact count of ``value``."""
        return self._counts[value]

    def coverage(self, k: int) -> float:
        """Fraction of all observations covered by the top ``k`` values."""
        if not self.total:
            return 0.0
        return sum(count for _, count in self.top(k)) / self.total

    @property
    def distinct(self) -> int:
        """Number of distinct values observed."""
        return len(self._counts)


class MisraGries:
    """Misra–Gries heavy-hitters summary with ``k`` counters.

    Guarantees: after ``n`` observations, every value with true count
    greater than ``n / (k + 1)`` is present, and each reported count
    understates the true count by at most ``n / (k + 1)``.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("MisraGries needs at least one counter")
        self.k = k
        self._counts: Dict[int, int] = {}
        self.total = 0

    def add(self, value: int) -> None:
        """Process one observation."""
        counts = self._counts
        self.total += 1
        if value in counts:
            counts[value] += 1
        elif len(counts) < self.k:
            counts[value] = 1
        else:
            # Decrement everything; drop the zeros.
            for key in list(counts):
                counts[key] -= 1
                if not counts[key]:
                    del counts[key]

    def candidates(self) -> List[Tuple[int, int]]:
        """Surviving ``(value, lower-bound count)`` pairs, by count."""
        return sorted(self._counts.items(), key=lambda item: (-item[1], item[0]))

    def top_values(self, k: int) -> List[int]:
        """The ``k`` best candidates (a superset guarantee, not a
        ranking guarantee — see class docstring)."""
        return [value for value, _ in self.candidates()[:k]]


class SpaceSaving:
    """Space-Saving summary with ``k`` monitored values.

    Each monitored value carries an estimated count and a maximum
    overestimation error; any value with true count above ``n / k`` is
    guaranteed to be monitored.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("SpaceSaving needs at least one counter")
        self.k = k
        self._counts: Dict[int, int] = {}
        self._errors: Dict[int, int] = {}
        self.total = 0

    def add(self, value: int) -> None:
        """Process one observation."""
        counts = self._counts
        self.total += 1
        if value in counts:
            counts[value] += 1
            return
        if len(counts) < self.k:
            counts[value] = 1
            self._errors[value] = 0
            return
        # Replace the minimum-count victim.
        victim = min(counts, key=lambda key: (counts[key], key))
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[value] = floor + 1
        self._errors[value] = floor

    def estimate(self, value: int) -> int:
        """Estimated count of ``value`` (0 when unmonitored).  Never
        understates the true count of a monitored value."""
        return self._counts.get(value, 0)

    def estimates(self) -> List[Tuple[int, int, int]]:
        """``(value, estimated count, max error)`` by estimated count."""
        return sorted(
            (
                (value, count, self._errors[value])
                for value, count in self._counts.items()
            ),
            key=lambda item: (-item[1], item[0]),
        )

    def top_values(self, k: int) -> List[int]:
        """The ``k`` values with the highest estimated counts."""
        return [value for value, _, _ in self.estimates()[:k]]

    def guaranteed_top(self) -> List[int]:
        """Values whose estimate minus error beats every other value's
        estimate — provably among the true heavy hitters."""
        estimates = self.estimates()
        guaranteed = []
        for index, (value, count, error) in enumerate(estimates):
            rivals = estimates[index + 1 :]
            if all(count - error >= rival[1] for rival in rivals):
                guaranteed.append(value)
            else:
                break
        return guaranteed
