"""Input sensitivity of the frequent value set (paper Table 2).

The paper compares the top-7 and top-10 accessed values between the
reference input and the test/train inputs, reporting ``X/Y`` — how many
of the top-``Y`` values for the alternate input also rank in the
top-``Y`` for the reference input.  Small values (0, 1, -1, tags)
transfer across inputs; large pointer values often do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.profiling.access import AccessProfile, profile_accessed_values
from repro.trace.trace import Trace


@dataclass(frozen=True)
class OverlapResult:
    """Top-value overlap between an alternate input and the reference.

    ``overlap[k]`` is the ``X`` of the paper's ``X/k`` notation.
    """

    overlap: Dict[int, int]
    shared_values: Dict[int, Tuple[int, ...]]

    def as_fractions(self) -> Dict[int, float]:
        """Overlap expressed as ``X / k``."""
        return {k: count / k for k, count in self.overlap.items()}

    def format(self) -> str:
        """The paper's ``X/Y`` rendering, e.g. ``"7/7 10/10"``."""
        return " ".join(f"{x}/{k}" for k, x in sorted(self.overlap.items()))


def top_value_overlap(
    reference: AccessProfile,
    alternate: AccessProfile,
    ks: Sequence[int] = (7, 10),
) -> OverlapResult:
    """Overlap of the alternate input's top-``k`` values with the
    reference input's top-``k`` values, for each ``k``."""
    overlap: Dict[int, int] = {}
    shared: Dict[int, Tuple[int, ...]] = {}
    for k in ks:
        ref_set = set(reference.top_values(k))
        alt_top: List[int] = alternate.top_values(k)
        common = tuple(value for value in alt_top if value in ref_set)
        overlap[k] = len(common)
        shared[k] = common
    return OverlapResult(overlap=overlap, shared_values=shared)


def trace_overlap(
    reference_trace: Trace, alternate_trace: Trace, ks: Sequence[int] = (7, 10)
) -> OverlapResult:
    """Convenience wrapper profiling both traces first."""
    return top_value_overlap(
        profile_accessed_values(reference_trace),
        profile_accessed_values(alternate_trace),
        ks=ks,
    )
