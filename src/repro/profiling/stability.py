"""Stability of the frequent value set over execution (paper Table 3).

Two measurements, both taken at regular checkpoints over the trace:

* **order stability** — the first point of execution after which the
  *ordered* top-k list never changes again (the paper's table);
* **membership stability** — the first point after which the final
  top-k values all appear in the running top-10 and never leave (the
  paper's relaxation for m88ksim: identity suffices to configure an
  FVC, ordering does not matter).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.trace.trace import Trace


@dataclass(frozen=True)
class StabilityResult:
    """Stability points as fractions of execution (0.0–1.0).

    ``order_stable_at[k]`` / ``membership_stable_at[k]`` give the
    earliest execution fraction from which the top-``k`` ordering (resp.
    membership in the top-10) is final.  A value of 0.0 means the very
    first checkpoint already matched.
    """

    checkpoints: int
    order_stable_at: Dict[int, float]
    membership_stable_at: Dict[int, float]


def profile_stability(
    trace: Trace,
    ks: Sequence[int] = (1, 3, 7),
    checkpoints: int = 200,
    membership_window: int = 10,
) -> StabilityResult:
    """Measure when each top-``k`` ranking stabilises over ``trace``."""
    if checkpoints <= 0:
        raise ValueError("need at least one checkpoint")
    records = trace.records
    if not records:
        raise ValueError("cannot measure stability of an empty trace")
    ks = sorted(set(ks))
    deepest = max(max(ks), membership_window)

    step = max(1, len(records) // checkpoints)
    counts: Counter = Counter()
    # Per-checkpoint ordered prefix of the running ranking.
    snapshots: List[Tuple[int, ...]] = []
    positions: List[int] = []
    for start in range(0, len(records), step):
        for record in records[start : start + step]:
            counts[record[2]] += 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        snapshots.append(tuple(value for value, _ in ranked[:deepest]))
        positions.append(min(start + step, len(records)))

    final = snapshots[-1]
    total = len(records)

    order_stable: Dict[int, float] = {}
    membership_stable: Dict[int, float] = {}
    for k in ks:
        final_order = final[:k]
        final_set = set(final[:k])
        # Scan backwards to the last checkpoint that breaks the property.
        order_from = 0
        membership_from = 0
        for index in range(len(snapshots) - 1, -1, -1):
            snapshot = snapshots[index]
            if order_from == 0 and snapshot[:k] != final_order:
                order_from = index + 1
            if membership_from == 0 and not final_set.issubset(
                set(snapshot[:membership_window])
            ):
                membership_from = index + 1
            if order_from and membership_from:
                break
        order_stable[k] = (
            positions[order_from - 1] / total if order_from else 0.0
        )
        membership_stable[k] = (
            positions[membership_from - 1] / total if membership_from else 0.0
        )
    return StabilityResult(
        checkpoints=len(snapshots),
        order_stable_at=order_stable,
        membership_stable_at=membership_stable,
    )
