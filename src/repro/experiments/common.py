"""Shared experiment plumbing: encoders, simulations, configuration
lists.

Centralising these keeps every experiment honest: all of them profile
values, build encoders, and replay caches exactly the same way.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig
from repro.kernels import dispatch
from repro.profiling.access import AccessProfile, profile_accessed_values
from repro.trace.trace import Trace

#: The six FVL benchmarks, paper presentation order.
FVL_NAMES: Tuple[str, ...] = ("go", "m88ksim", "gcc", "li", "perl", "vortex")
#: All eight SPECint95 analogs.
INT_NAMES: Tuple[str, ...] = FVL_NAMES + ("compress", "ijpeg")
#: The SPECfp95 analogs.
FP_NAMES: Tuple[str, ...] = ("swim", "tomcatv", "mgrid", "applu", "su2cor", "hydro2d")

#: Code widths and the value counts they exploit (paper: top 1 / 3 / 7).
CODE_BITS_BY_COUNT: Dict[int, int] = {1: 1, 3: 2, 7: 3}

#: DMC sizes (KB) and line sizes (bytes) swept in the evaluation.
DMC_SIZES_KB: Tuple[int, ...] = (4, 8, 16, 32, 64)
LINE_SIZES: Tuple[int, ...] = (16, 32, 64)

def access_profile(trace: Trace) -> AccessProfile:
    """Memoised access-value profile for a trace object.

    The memo lives on the trace itself (:meth:`repro.trace.trace.Trace
    .memo`), so it shares the trace's lifetime and invalidation — an
    external ``id()``-keyed table could serve another trace's profile
    once ids are recycled.
    """
    return trace.memo("access_profile", _profile)


def _profile(trace: Trace) -> AccessProfile:
    """Build the profile via whichever backend is active.

    Both paths rank by ``(-count, value)`` over identical counts, so the
    resulting profiles — and every encoder derived from them — are equal
    object-for-object regardless of backend.
    """
    if dispatch.kernels_active():
        from repro.kernels.columnar import KernelUnsupported, ranked_value_counts

        try:
            total, distinct, ranked = ranked_value_counts(trace, depth=32)
        except KernelUnsupported:
            pass
        else:
            return AccessProfile(
                total_accesses=total, distinct_values=distinct, ranked=ranked
            )
    return profile_accessed_values(trace)


def encoder_for(trace: Trace, top_values: int) -> FrequentValueEncoder:
    """The paper's configuration flow: profile the run, take the top
    ``top_values`` accessed values, encode them in the matching width."""
    code_bits = CODE_BITS_BY_COUNT[top_values]
    profile = access_profile(trace)
    return FrequentValueEncoder.for_top_values(
        profile.top_values(top_values), code_bits
    )


def baseline_stats(trace: Trace, geometry: CacheGeometry) -> CacheStats:
    """Miss statistics of the conventional cache alone."""
    stats = dispatch.try_baseline_stats(trace, geometry)
    if stats is not None:
        return stats
    if geometry.ways == 1:
        return DirectMappedCache(geometry).simulate_batch(trace.records)
    return SetAssociativeCache(geometry).simulate_batch(trace.records)


def fvc_stats(
    trace: Trace,
    geometry: CacheGeometry,
    fvc_entries: int,
    top_values: int,
    config: Optional[FvcSystemConfig] = None,
) -> Tuple[CacheStats, FvcSystem]:
    """Miss statistics of the cache + FVC system (and the system, for
    occupancy/breakdown inspection)."""
    system = FvcSystem(
        geometry, fvc_entries, encoder_for(trace, top_values), config=config
    )
    stats = system.simulate_batch(trace.records)
    return stats, system


def fvc_miss_stats(
    trace: Trace,
    geometry: CacheGeometry,
    fvc_entries: int,
    top_values: int,
    config: Optional[FvcSystemConfig] = None,
) -> CacheStats:
    """Miss statistics of the cache + FVC system when the simulated
    system itself is not needed afterwards — the kernel-eligible path.

    Only the default configuration is in the kernels' proven envelope;
    any custom ``config`` (and any kernel decline) replays the oracle.
    """
    if config is None:
        replayed = dispatch.try_fvc_replay(
            trace, geometry, fvc_entries, encoder_for(trace, top_values)
        )
        if replayed is not None:
            return replayed[0]
    return fvc_stats(trace, geometry, fvc_entries, top_values, config=config)[0]


def reduction_percent(base: CacheStats, improved: CacheStats) -> float:
    """Percentage reduction in miss rate (the paper's headline metric)."""
    if base.miss_rate == 0:
        return 0.0
    return 100.0 * (base.miss_rate - improved.miss_rate) / base.miss_rate


def input_for(fast: bool) -> str:
    """Reference inputs for real runs, test inputs for the fast mode."""
    return "test" if fast else "ref"
