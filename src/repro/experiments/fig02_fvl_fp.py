"""Fig. 2 — frequently encountered values in SPECfp95.

Same measurement as Fig. 1, over the floating-point analogs.  Paper
shape: the FP programs also show a high degree of frequent value
locality (zero-dominated grids, repeated coordinate constants).
"""

from __future__ import annotations

from repro.experiments.common import FP_NAMES
from repro.experiments.fig01_fvl import Fig01FrequentValues


class Fig02FrequentValuesFp(Fig01FrequentValues):
    """Occurrence and access coverage for the SPECfp95 analogs."""

    experiment_id = "fig2"
    title = "Frequently encountered values in SPECfp95 analogs"
    paper_reference = "Figure 2"

    def __init__(self) -> None:
        super().__init__(names=FP_NAMES)
