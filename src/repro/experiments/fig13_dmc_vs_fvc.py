"""Fig. 13 — a small FVC vs doubling the DMC.

For each line size the paper pairs a k-KB DMC augmented with a 512-entry
FVC against a 2k-KB DMC without one, for the two conflict-dominated
benchmarks (m88ksim, perl) and 1/3/7 exploited values.  Paper shape:
for these benchmarks the DMC+FVC configuration beats the doubled (and
even quadrupled) DMC, because the misses the FVC removes are conflict
misses between lines that alias at every tested size.

The cell plan is derived from the ``fig13`` spec in
:mod:`repro.sweeps.catalog` (doubled-DMC baseline + one DMC+FVC cell
per exploited-value count, per pair, per benchmark) for ``--jobs``
fan-out; the sequential run executes the identical cells in order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.cells import CellResult, SimCell
from repro.experiments.base import Experiment, ExperimentResult
from repro.sweeps.catalog import FIG13_BENCHMARKS, FIG13_PAIRS
from repro.workloads.store import TraceStore


def _fvc_data_kb(line_bytes: int, code_bits: int, entries: int = 512) -> float:
    """Data-array KB of the FVC (the paper's ".375Kb FVC" figures)."""
    words = line_bytes // 4
    return entries * words * code_bits / 8 / 1024


def _plan_shape(fast: bool):
    pairs = FIG13_PAIRS[:2] if fast else FIG13_PAIRS
    tops = (7,) if fast else (7, 3, 1)
    return pairs, tops


class Fig13DmcVsFvc(Experiment):
    """Small DMC + FVC against a doubled DMC."""

    experiment_id = "fig13"
    title = "DMC + FVC vs larger DMC (miss rates, m88ksim & perl analogs)"
    paper_reference = "Figure 13"

    def plan_cells(self, fast: bool = False) -> List[SimCell]:
        return self._plan_from_sweep(fast)

    def merge_cells(
        self,
        cells: Sequence[SimCell],
        results: Sequence[CellResult],
        fast: bool = False,
    ) -> ExperimentResult:
        pairs, tops = _plan_shape(fast)
        headers = [
            "benchmark",
            "line_B",
            "top_k",
            "fvc_data_KB",
            "small+FVC_miss_%",
            "small_KB",
            "double_miss_%",
            "double_KB",
            "fvc_wins",
        ]
        rows = []
        cursor = 0
        for name in FIG13_BENCHMARKS:
            for line_bytes, small_kb, double_kb in pairs:
                double_stats = results[cursor].cache_stats()
                cursor += 1
                for top in tops:
                    code_bits = {1: 1, 3: 2, 7: 3}[top]
                    stats = results[cursor].cache_stats()
                    cursor += 1
                    rows.append(
                        {
                            "benchmark": name,
                            "line_B": line_bytes,
                            "top_k": top,
                            "fvc_data_KB": round(
                                _fvc_data_kb(line_bytes, code_bits), 3
                            ),
                            "small+FVC_miss_%": round(100 * stats.miss_rate, 3),
                            "small_KB": small_kb,
                            "double_miss_%": round(
                                100 * double_stats.miss_rate, 3
                            ),
                            "double_KB": double_kb,
                            "fvc_wins": "yes"
                            if stats.miss_rate < double_stats.miss_rate
                            else "no",
                        }
                    )
        result = self._result(headers, rows)
        wins = sum(1 for row in rows if row["fvc_wins"] == "yes")
        result.notes.append(
            f"DMC+FVC beats the doubled DMC in {wins}/{len(rows)} pairings "
            "(paper: in all pairings for these two benchmarks)"
        )
        return result

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        cells = self.plan_cells(fast)
        return self.merge_cells(cells, self._run_cells(cells, store), fast)
