"""Fig. 1 — frequently encountered values in SPECint95.

For each integer analog, the fraction of live memory locations occupied
by the top 1/3/7/10 *occurring* values and the fraction of all accesses
involving the top 1/3/7/10 *accessed* values.  Paper shape: the first
six benchmarks exceed 50% location occupancy and ~50% access coverage
at depth 10; compress and ijpeg show very little of either.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import INT_NAMES, access_profile, input_for
from repro.profiling.occurrence import profile_occurring_values
from repro.workloads.registry import get_workload
from repro.workloads.store import TraceStore

_DEPTHS = (1, 3, 7, 10)


class Fig01FrequentValues(Experiment):
    """Occurrence and access coverage for the SPECint95 analogs."""

    experiment_id = "fig1"
    title = "Frequently encountered values in SPECint95 analogs"
    paper_reference = "Figure 1"

    def __init__(self, names: Sequence[str] = INT_NAMES) -> None:
        self.names = tuple(names)

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        headers = ["benchmark"]
        headers += [f"occ_top{k}_%" for k in _DEPTHS]
        headers += [f"acc_top{k}_%" for k in _DEPTHS]
        rows = []
        for name in self.names:
            workload = get_workload(name)
            occurrence = profile_occurring_values(
                workload,
                input_name,
                sample_interval=10_000 if fast else 40_000,
            )
            profile = access_profile(store.get(name, input_name))
            row = {"benchmark": name}
            for k in _DEPTHS:
                row[f"occ_top{k}_%"] = round(100 * occurrence.coverage(k), 1)
                row[f"acc_top{k}_%"] = round(100 * profile.coverage(k), 1)
            rows.append(row)
        result = self._result(headers, rows)
        result.notes.append(
            "occurrence = mean share of live locations holding the top-k "
            "values across periodic snapshots; access = share of all "
            "loads/stores involving the top-k accessed values"
        )
        return result
