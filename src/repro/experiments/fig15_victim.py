"""Fig. 15 — victim cache vs frequent value cache.

4 KB DMC with 8-word lines.  Two pairings, as in the paper:

* **equal storage** — a 16-entry fully-associative victim cache against
  a 128-entry top-7 FVC (tags included, the two take nearly the same
  SRAM);
* **equal access time** — a 4-entry victim cache (~9 ns, CAM search)
  against a 512-entry FVC (~6 ns, direct-mapped plus decode).

Paper shape: the VC wins the equal-storage comparison, the FVC wins the
equal-time comparison; both structures help a small DMC substantially.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.victim import VictimCacheSystem
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    FVL_NAMES,
    baseline_stats,
    fvc_miss_stats,
    input_for,
    reduction_percent,
)
from repro.fvc.cache import FrequentValueCacheArray
from repro.timing.cacti import DEFAULT_MODEL
from repro.workloads.store import TraceStore


class Fig15Victim(Experiment):
    """Victim cache vs FVC at equal storage and at equal access time."""

    experiment_id = "fig15"
    title = "Victim cache vs FVC (4KB DMC, 8 words/line, top 7)"
    paper_reference = "Figure 15"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        geometry = CacheGeometry(4 * 1024, 32)
        headers = [
            "benchmark",
            "base_miss_%",
            "vc16_red_%",
            "fvc128_red_%",
            "vc4_red_%",
            "fvc512_red_%",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            base = baseline_stats(trace, geometry)
            row = {
                "benchmark": name,
                "base_miss_%": round(100 * base.miss_rate, 3),
            }
            for label, victim_entries in (("vc16", 16), ("vc4", 4)):
                system = VictimCacheSystem(geometry, victim_entries)
                stats = system.simulate(trace.records)
                row[f"{label}_red_%"] = round(reduction_percent(base, stats), 1)
            for label, entries in (("fvc128", 128), ("fvc512", 512)):
                stats = fvc_miss_stats(trace, geometry, entries, top_values=7)
                row[f"{label}_red_%"] = round(reduction_percent(base, stats), 1)
            rows.append(row)
        result = self._result(headers, rows)

        # Document the pairings with the actual storage/time numbers.
        encoder_bits = 3
        fvc128 = FrequentValueCacheArray(128, 8, _dummy_encoder())
        vc16_bytes = VictimCacheSystem(geometry, 16).storage_bytes()
        result.notes.append(
            "equal storage: 16-entry VC = "
            f"{vc16_bytes} bytes vs 128-entry FVC = "
            f"{(fvc128.storage_bits() + 7) // 8} bytes (tags included)"
        )
        result.notes.append(
            "equal access time: 4-entry VC = "
            f"{DEFAULT_MODEL.fully_associative_access_ns(4, 32):.1f} ns vs "
            "512-entry FVC = "
            f"{DEFAULT_MODEL.fvc_access_ns(512, encoder_bits, 8):.1f} ns"
        )
        return result


def _dummy_encoder():
    """A top-7 encoder used only for storage accounting."""
    from repro.fvc.encoding import FrequentValueEncoder

    return FrequentValueEncoder(list(range(7)), 3)
