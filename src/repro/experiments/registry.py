"""Experiment registry: id → runner instance."""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.experiments.base import Experiment
from repro.experiments.fig01_fvl import Fig01FrequentValues
from repro.experiments.fig02_fvl_fp import Fig02FrequentValuesFp
from repro.experiments.fig03_timeline import Fig03Timeline
from repro.experiments.fig04_miss_attribution import Fig04MissAttribution
from repro.experiments.fig05_spatial import Fig05Spatial
from repro.experiments.table1_top_values import Table1TopValues
from repro.experiments.table2_sensitivity import Table2InputSensitivity
from repro.experiments.table3_stability import Table3Stability
from repro.experiments.table4_constancy import Table4Constancy
from repro.experiments.fig09_access_time import Fig09AccessTime
from repro.experiments.fig10_fvc_size import Fig10FvcSize
from repro.experiments.fig11_compression import Fig11Compression
from repro.experiments.fig12_value_count import Fig12ValueCount
from repro.experiments.fig13_dmc_vs_fvc import Fig13DmcVsFvc
from repro.experiments.fig14_associativity import Fig14Associativity
from repro.experiments.fig15_victim import Fig15Victim
from repro.experiments.ablations import (
    AblationDynamic,
    AblationInclusive,
    AblationInsertEmpty,
    AblationWriteAllocate,
)
from repro.experiments.extensions import (
    ExtCompressionCache,
    ExtCrossInput,
    ExtHierarchy,
    ExtPerformance,
    ExtEnergy,
    ExtFvcAssociativity,
    ExtHybrid,
    ExtWriteThroughTraffic,
)

#: Every experiment, paper order first, then the ablations.
EXPERIMENTS: Dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        Fig01FrequentValues(),
        Fig02FrequentValuesFp(),
        Fig03Timeline(),
        Fig04MissAttribution(),
        Fig05Spatial(),
        Table1TopValues(),
        Table2InputSensitivity(),
        Table3Stability(),
        Table4Constancy(),
        Fig09AccessTime(),
        Fig10FvcSize(),
        Fig11Compression(),
        Fig12ValueCount(),
        Fig13DmcVsFvc(),
        Fig14Associativity(),
        Fig15Victim(),
        AblationWriteAllocate(),
        AblationInclusive(),
        AblationInsertEmpty(),
        AblationDynamic(),
        ExtWriteThroughTraffic(),
        ExtEnergy(),
        ExtCrossInput(),
        ExtFvcAssociativity(),
        ExtHybrid(),
        ExtCompressionCache(),
        ExtHierarchy(),
        ExtPerformance(),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up a runner by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r} (have: {known})"
        ) from None


def experiment_ids() -> List[str]:
    """All registered experiment ids, registry order."""
    return list(EXPERIMENTS)


def registered_module_names() -> List[str]:
    """Module names (``repro.experiments.<name>``) of every registered
    experiment class, sorted and deduplicated.

    The REG001 lint rule cross-checks this registry against the
    ``fig*``/``table*`` modules on disk; this helper exposes the same
    coverage to tests and tooling.
    """
    return sorted(
        {type(exp).__module__.rsplit(".", 1)[-1] for exp in EXPERIMENTS.values()}
    )


def run_experiment(
    experiment_id: str,
    store=None,
    fast: bool = False,
    jobs: int = 1,
    checkpoint=None,
):
    """Run one experiment, fanning its simulation cells across ``jobs``
    worker processes when it decomposes (see
    :meth:`repro.experiments.base.Experiment.run_with_engine`).
    Deterministic: any ``jobs`` value produces identical results, with
    or without a ``checkpoint``
    (:class:`repro.engine.checkpoint.RunCheckpoint`)."""
    experiment = get_experiment(experiment_id)
    if jobs > 1 or checkpoint is not None:
        return experiment.run_with_engine(
            store, fast=fast, jobs=jobs, checkpoint=checkpoint
        )
    return experiment.run(store, fast=fast)
