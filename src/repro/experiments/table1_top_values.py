"""Table 1 — the ten most frequently occurring and accessed values.

For each FVL analog, the top-10 value lists (hex), occurrence- and
access-ranked.  Paper shape: dominated by 0, small integers, -1,
pointers, and (for perl) packed ASCII; large overlap between the two
rankings.
"""

from __future__ import annotations

from typing import Optional

from repro.common.words import word_to_hex
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import FVL_NAMES, access_profile, input_for
from repro.profiling.occurrence import profile_occurring_values
from repro.workloads.registry import get_workload
from repro.workloads.store import TraceStore


class Table1TopValues(Experiment):
    """Top-10 occurring and accessed values per benchmark."""

    experiment_id = "table1"
    title = "Frequently occurring and accessed values (hex)"
    paper_reference = "Table 1"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        headers = ["rank"] + [
            f"{name}_{kind}"
            for name in FVL_NAMES
            for kind in ("accessed", "occurring")
        ]
        columns = {}
        overlaps = []
        for name in FVL_NAMES:
            accessed = access_profile(store.get(name, input_name)).top_values(10)
            occurrence = profile_occurring_values(
                get_workload(name),
                input_name,
                sample_interval=10_000 if fast else 40_000,
            )
            occurring = occurrence.top_values(10)
            columns[f"{name}_accessed"] = [word_to_hex(v) for v in accessed]
            columns[f"{name}_occurring"] = [word_to_hex(v) for v in occurring]
            overlaps.append(len(set(accessed) & set(occurring)))
        rows = []
        for rank in range(10):
            row = {"rank": rank + 1}
            for key, values in columns.items():
                row[key] = values[rank] if rank < len(values) else ""
            rows.append(row)
        result = self._result(headers, rows)
        result.notes.append(
            "occurring/accessed top-10 overlap per benchmark: "
            + ", ".join(
                f"{name}={overlap}" for name, overlap in zip(FVL_NAMES, overlaps)
            )
        )
        return result
