"""Experiment base classes and table rendering."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.cells import CellResult, SimCell, run_cell
from repro.workloads.store import TraceStore, shared_store

Row = Dict[str, object]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-aligned numeric columns."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    grid = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[col]) for row in grid)) if grid else len(header)
        for col, header in enumerate(headers)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = [line(list(headers)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in grid)
    return "\n".join(out)


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    ``rows`` hold the measured quantities keyed by the column names in
    ``headers``; ``notes`` records methodology details worth printing
    beside the table (configuration, workload inputs, deviations).
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Row]
    notes: List[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the result the way the paper's table/figure reads."""
        body = render_table(
            self.headers,
            [[row.get(header, "") for header in self.headers] for row in self.rows],
        )
        parts = [f"== {self.experiment_id}: {self.title} ==", body]
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def column(self, header: str) -> List[object]:
        """All values of one column, row order."""
        return [row.get(header) for row in self.rows]

    def row_for(self, key_header: str, key: object) -> Optional[Row]:
        """First row whose ``key_header`` column equals ``key``."""
        for row in self.rows:
            if row.get(key_header) == key:
                return row
        return None


class Experiment(ABC):
    """One reproducible table/figure.

    ``fast=True`` runs a reduced version (test inputs, fewer
    configurations) used by the unit-test suite; the benchmark suite
    always runs the full version.
    """

    #: Registry id, e.g. ``"fig10"``.
    experiment_id: str = ""
    #: Human title, e.g. ``"Miss rate reduction vs FVC size"``.
    title: str = ""
    #: Where in the paper the artefact lives.
    paper_reference: str = ""

    @abstractmethod
    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        """Execute the experiment and return its result."""

    # Engine integration ---------------------------------------------------
    def plan_cells(self, fast: bool = False) -> Optional[List[SimCell]]:
        """The experiment's work as engine simulation cells, or ``None``
        when it has no cell decomposition (profiling experiments, or
        sweeps whose configurations share warm simulator state).

        Experiments that implement this must also implement
        :meth:`merge_cells`, and should express :meth:`run` through the
        same pair so sequential and parallel runs share one code path.
        """
        return None

    def merge_cells(
        self,
        cells: Sequence[SimCell],
        results: Sequence[CellResult],
        fast: bool = False,
    ) -> ExperimentResult:
        """Fold cell results (in :meth:`plan_cells` order) into the
        experiment's table."""
        raise NotImplementedError(
            f"{type(self).__name__} does not decompose into cells"
        )

    def sweep_backing(self, fast: bool = False) -> Dict[str, object]:
        """The catalogued ``sweep/v1`` spec backing this experiment
        (every fig*/table* has one; see :mod:`repro.sweeps.catalog`)."""
        from repro.sweeps.catalog import get_sweep

        return get_sweep(self.experiment_id, fast=fast)

    def _plan_from_sweep(self, fast: bool) -> List[SimCell]:
        """Cell plan derived from the backing sweep spec: the
        declarative form and the executed plan cannot drift."""
        from repro.sweeps.expand import expand_cells

        return expand_cells(self.sweep_backing(fast))

    def run_with_engine(
        self,
        store: Optional[TraceStore] = None,
        fast: bool = False,
        jobs: int = 1,
        progress=None,
        should_cancel=None,
        checkpoint=None,
        executor=None,
    ) -> ExperimentResult:
        """Run, fanning simulation cells across ``jobs`` processes when
        the experiment decomposes; deterministic — results are merged in
        plan order and are bit-identical to a sequential :meth:`run`.

        ``progress`` / ``should_cancel`` / ``checkpoint`` are the
        engine's cell-boundary hooks and ``executor`` its alternative
        execution strategy (see :func:`repro.engine.runner.run_cells`);
        they only take effect when the experiment decomposes into
        cells.
        """
        if (
            jobs > 1
            or progress is not None
            or should_cancel is not None
            or checkpoint is not None
            or executor is not None
        ):
            plan = self.plan_cells(fast)
            if plan is not None:
                from repro.engine.runner import run_cells

                results = run_cells(
                    plan,
                    jobs=jobs,
                    store=self._store(store),
                    progress=progress,
                    should_cancel=should_cancel,
                    checkpoint=checkpoint,
                    executor=executor,
                )
                return self.merge_cells(plan, results, fast)
        return self.run(store, fast=fast)

    def _run_cells(
        self, cells: Sequence[SimCell], store: Optional[TraceStore]
    ) -> List[CellResult]:
        """Execute cells sequentially through the caller's store."""
        store = self._store(store)
        return [run_cell(cell, store) for cell in cells]

    def _store(self, store: Optional[TraceStore]) -> TraceStore:
        return store if store is not None else shared_store

    def _result(self, headers: List[str], rows: List[Row]) -> ExperimentResult:
        return ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=headers,
            rows=rows,
        )
