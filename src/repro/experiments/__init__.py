"""Experiment harness: one runner per paper table and figure.

Every experiment produces an :class:`ExperimentResult` whose rows carry
the same quantities the paper plots; ``format_table()`` renders them as
text.  ``repro.experiments.registry`` maps experiment ids ("fig10",
"table4", "ablation-waf", …) to runners, and the CLI / benchmark suite
drive everything through it.
"""

from repro.experiments.base import Experiment, ExperimentResult, render_table
from repro.experiments.registry import EXPERIMENTS, get_experiment, experiment_ids

__all__ = [
    "Experiment",
    "ExperimentResult",
    "render_table",
    "EXPERIMENTS",
    "get_experiment",
    "experiment_ids",
]
