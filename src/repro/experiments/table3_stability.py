"""Table 3 — how quickly the frequent value set stabilises.

For each FVL analog, the fraction of execution after which the ordered
top-1/3/7 accessed values never change, plus the paper's relaxation:
when the final top-k values have permanently entered the running
top-10 (identity is all an FVC needs).  Paper shape: most programs
stabilise within a few percent of execution.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import FVL_NAMES, input_for
from repro.profiling.stability import profile_stability
from repro.workloads.store import TraceStore


class Table3Stability(Experiment):
    """Stabilisation points of the top-k accessed values."""

    experiment_id = "table3"
    title = "Finding frequently accessed values (stabilisation points)"
    paper_reference = "Table 3"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        headers = [
            "benchmark",
            "accesses",
            "order_top1_%",
            "order_top3_%",
            "order_top7_%",
            "in_top10_top1_%",
            "in_top10_top3_%",
            "in_top10_top7_%",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            result = profile_stability(
                trace, ks=(1, 3, 7), checkpoints=100 if fast else 200
            )
            row = {"benchmark": name, "accesses": len(trace)}
            for k in (1, 3, 7):
                row[f"order_top{k}_%"] = round(
                    100 * result.order_stable_at[k], 1
                )
                row[f"in_top10_top{k}_%"] = round(
                    100 * result.membership_stable_at[k], 1
                )
            rows.append(row)
        return self._result(headers, rows)
