"""Fig. 4 — cache misses attributable to frequent values.

Replays each FVL analog through a 16 KB direct-mapped cache with
16-byte lines and counts the misses whose involved value is one of the
top-10 occurring / top-10 accessed values.  Paper shape: slightly under
50% for occurring, slightly over 50% for accessed — the motivation for
a value-centric cache.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import FVL_NAMES, access_profile, input_for
from repro.profiling.occurrence import profile_occurring_values
from repro.workloads.registry import get_workload
from repro.workloads.store import TraceStore


class Fig04MissAttribution(Experiment):
    """Share of DMC misses involving the top-10 values."""

    experiment_id = "fig4"
    title = "Misses attributable to the ten most frequent values"
    paper_reference = "Figure 4 (16KB DMC, 16-byte lines)"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        geometry = CacheGeometry(16 * 1024, 16)
        headers = [
            "benchmark",
            "miss_rate_%",
            "miss_top10_accessed_%",
            "miss_top10_occurring_%",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            accessed = set(access_profile(trace).top_values(10))
            occurrence = profile_occurring_values(
                get_workload(name),
                input_name,
                sample_interval=10_000 if fast else 40_000,
            )
            occurring = set(occurrence.top_values(10))
            cache = DirectMappedCache(geometry)
            misses = miss_accessed = miss_occurring = 0
            for op, address, value in trace.records:
                if cache.access(op, address):
                    continue
                misses += 1
                if value in accessed:
                    miss_accessed += 1
                if value in occurring:
                    miss_occurring += 1
            rows.append(
                {
                    "benchmark": name,
                    "miss_rate_%": round(100 * misses / len(trace.records), 3),
                    "miss_top10_accessed_%": round(
                        100 * miss_accessed / misses, 1
                    ) if misses else 0.0,
                    "miss_top10_occurring_%": round(
                        100 * miss_occurring / misses, 1
                    ) if misses else 0.0,
                }
            )
        return self._result(headers, rows)
