"""Fig. 14 — the FVC under set-associative base caches.

16 KB cache, 8-word lines, 512-entry top-7 FVC, base associativity 1,
2 and 4.  Paper shape: m88ksim, perl and li lose almost all FVC benefit
once the base cache is 2-way (their removable misses were conflicts the
associativity absorbs); go, gcc and vortex keep significant reductions
(their removable misses are capacity misses).

The cell plan is derived from the ``fig14`` spec in
:mod:`repro.sweeps.catalog`: per workload, the baselines across
associativities, then the FVC cells across associativities, then one
3C classification — sweep expansion order (arms group, axes iterate
within an arm), fanned across ``--jobs`` and merged in plan order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.cells import CellResult, SimCell
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    FVL_NAMES,
    reduction_percent,
)
from repro.workloads.store import TraceStore


def _ways_list(fast: bool):
    from repro.sweeps.catalog import FIG14_FAST_WAYS, FIG14_WAYS

    return FIG14_FAST_WAYS if fast else FIG14_WAYS


class Fig14Associativity(Experiment):
    """FVC benefit vs base-cache associativity."""

    experiment_id = "fig14"
    title = "FVC with 1/2/4-way base caches (16KB, 8 words/line, top 7)"
    paper_reference = "Figure 14"

    def plan_cells(self, fast: bool = False) -> List[SimCell]:
        return self._plan_from_sweep(fast)

    def merge_cells(
        self,
        cells: Sequence[SimCell],
        results: Sequence[CellResult],
        fast: bool = False,
    ) -> ExperimentResult:
        ways_list = _ways_list(fast)
        headers = ["benchmark"]
        for ways in ways_list:
            headers += [f"{ways}w_base_%", f"{ways}w_red_%"]
        headers += ["dm_conflict_share_%"]
        rows = []
        cursor = 0
        for name in FVL_NAMES:
            row = {"benchmark": name}
            # Plan order per workload: baselines across `ways`, then the
            # FVC cells across `ways`, then the classification.
            bases = results[cursor : cursor + len(ways_list)]
            cursor += len(ways_list)
            fvcs = results[cursor : cursor + len(ways_list)]
            cursor += len(ways_list)
            for ways, base_result, fvc_result in zip(ways_list, bases, fvcs):
                base = base_result.cache_stats()
                stats = fvc_result.cache_stats()
                row[f"{ways}w_base_%"] = round(100 * base.miss_rate, 3)
                row[f"{ways}w_red_%"] = round(reduction_percent(base, stats), 1)
            classes = results[cursor].extras
            cursor += 1
            misses = (
                classes["compulsory"] + classes["capacity"] + classes["conflict"]
            )
            row["dm_conflict_share_%"] = round(
                100 * (classes["conflict"] / misses if misses else 0.0), 1
            )
            rows.append(row)
        result = self._result(headers, rows)
        result.notes.append(
            "dm_conflict_share = share of direct-mapped misses that are "
            "conflict misses (3C classification) — high values predict "
            "the benefit collapsing under associativity"
        )
        return result

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        cells = self.plan_cells(fast)
        return self.merge_cells(cells, self._run_cells(cells, store), fast)
