"""Fig. 14 — the FVC under set-associative base caches.

16 KB cache, 8-word lines, 512-entry top-7 FVC, base associativity 1,
2 and 4.  Paper shape: m88ksim, perl and li lose almost all FVC benefit
once the base cache is 2-way (their removable misses were conflicts the
associativity absorbs); go, gcc and vortex keep significant reductions
(their removable misses are capacity misses).

Decomposed into engine cells (baseline + FVC per associativity, plus a
3C classification, per workload) for ``--jobs`` fan-out; the sequential
run executes the identical cells in order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.cells import CellResult, SimCell
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    FVL_NAMES,
    input_for,
    reduction_percent,
)
from repro.workloads.store import TraceStore


def _ways_list(fast: bool):
    return (1, 2) if fast else (1, 2, 4)


class Fig14Associativity(Experiment):
    """FVC benefit vs base-cache associativity."""

    experiment_id = "fig14"
    title = "FVC with 1/2/4-way base caches (16KB, 8 words/line, top 7)"
    paper_reference = "Figure 14"

    def plan_cells(self, fast: bool = False) -> List[SimCell]:
        input_name = input_for(fast)
        cells = []
        for name in FVL_NAMES:
            for ways in _ways_list(fast):
                cells.append(
                    SimCell(
                        workload=name,
                        input_name=input_name,
                        kind="baseline",
                        size_bytes=16 * 1024,
                        line_bytes=32,
                        ways=ways,
                    )
                )
                cells.append(
                    SimCell(
                        workload=name,
                        input_name=input_name,
                        kind="fvc",
                        size_bytes=16 * 1024,
                        line_bytes=32,
                        ways=ways,
                        fvc_entries=512,
                        top_values=7,
                    )
                )
            cells.append(
                SimCell(
                    workload=name,
                    input_name=input_name,
                    kind="classify",
                    size_bytes=16 * 1024,
                    line_bytes=32,
                )
            )
        return cells

    def merge_cells(
        self,
        cells: Sequence[SimCell],
        results: Sequence[CellResult],
        fast: bool = False,
    ) -> ExperimentResult:
        ways_list = _ways_list(fast)
        headers = ["benchmark"]
        for ways in ways_list:
            headers += [f"{ways}w_base_%", f"{ways}w_red_%"]
        headers += ["dm_conflict_share_%"]
        rows = []
        cursor = 0
        for name in FVL_NAMES:
            row = {"benchmark": name}
            for ways in ways_list:
                base = results[cursor].cache_stats()
                stats = results[cursor + 1].cache_stats()
                cursor += 2
                row[f"{ways}w_base_%"] = round(100 * base.miss_rate, 3)
                row[f"{ways}w_red_%"] = round(reduction_percent(base, stats), 1)
            classes = results[cursor].extras
            cursor += 1
            misses = (
                classes["compulsory"] + classes["capacity"] + classes["conflict"]
            )
            row["dm_conflict_share_%"] = round(
                100 * (classes["conflict"] / misses if misses else 0.0), 1
            )
            rows.append(row)
        result = self._result(headers, rows)
        result.notes.append(
            "dm_conflict_share = share of direct-mapped misses that are "
            "conflict misses (3C classification) — high values predict "
            "the benefit collapsing under associativity"
        )
        return result

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        cells = self.plan_cells(fast)
        return self.merge_cells(cells, self._run_cells(cells, store), fast)
