"""Fig. 14 — the FVC under set-associative base caches.

16 KB cache, 8-word lines, 512-entry top-7 FVC, base associativity 1,
2 and 4.  Paper shape: m88ksim, perl and li lose almost all FVC benefit
once the base cache is 2-way (their removable misses were conflicts the
associativity absorbs); go, gcc and vortex keep significant reductions
(their removable misses are capacity misses).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.classify import classify_misses
from repro.cache.geometry import CacheGeometry
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    FVL_NAMES,
    baseline_stats,
    fvc_stats,
    input_for,
    reduction_percent,
)
from repro.workloads.store import TraceStore


class Fig14Associativity(Experiment):
    """FVC benefit vs base-cache associativity."""

    experiment_id = "fig14"
    title = "FVC with 1/2/4-way base caches (16KB, 8 words/line, top 7)"
    paper_reference = "Figure 14"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        ways_list = (1, 2) if fast else (1, 2, 4)
        headers = ["benchmark"]
        for ways in ways_list:
            headers += [f"{ways}w_base_%", f"{ways}w_red_%"]
        headers += ["dm_conflict_share_%"]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            row = {"benchmark": name}
            for ways in ways_list:
                geometry = CacheGeometry(16 * 1024, 32, ways=ways)
                base = baseline_stats(trace, geometry)
                stats, _ = fvc_stats(trace, geometry, 512, top_values=7)
                row[f"{ways}w_base_%"] = round(100 * base.miss_rate, 3)
                row[f"{ways}w_red_%"] = round(reduction_percent(base, stats), 1)
            classification = classify_misses(
                trace.records, CacheGeometry(16 * 1024, 32)
            )
            row["dm_conflict_share_%"] = round(
                100 * classification.fraction("conflict"), 1
            )
            rows.append(row)
        result = self._result(headers, rows)
        result.notes.append(
            "dm_conflict_share = share of direct-mapped misses that are "
            "conflict misses (3C classification) — high values predict "
            "the benefit collapsing under associativity"
        )
        return result
