"""Table 4 — addresses whose contents remain constant.

The fraction of referenced addresses observing a single value over the
whole run, for all eight integer analogs.  Paper shape: high (29-99%)
for the six FVL benchmarks, near zero for compress and ijpeg.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import INT_NAMES, input_for
from repro.profiling.constancy import profile_constancy
from repro.workloads.store import TraceStore


class Table4Constancy(Experiment):
    """Constant-address fraction per benchmark."""

    experiment_id = "table4"
    title = "Addresses with constant values"
    paper_reference = "Table 4"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        headers = ["benchmark", "referenced", "constant", "constant_%"]
        rows = []
        for name in INT_NAMES:
            result = profile_constancy(store.get(name, input_name))
            rows.append(
                {
                    "benchmark": name,
                    "referenced": result.referenced_addresses,
                    "constant": result.constant_addresses,
                    "constant_%": round(100 * result.constant_fraction, 1),
                }
            )
        return self._result(headers, rows)
