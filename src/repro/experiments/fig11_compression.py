"""Fig. 11 — effectiveness of the FVC's data compression.

Time-averaged fraction of frequent-coded words in valid FVC lines
(512-entry top-7 FVC next to a 16 KB 8-word-line DMC), and the derived
storage-efficiency factor: a 32-byte DMC line compresses to 3 bytes in
the FVC, so at frequent-word fraction f the FVC stores cached values in
``(32/3) * f`` times less storage than a DMC would need.  Paper shape:
over 40% frequent content for most programs, i.e. a factor above ~4.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import FVL_NAMES, fvc_stats, input_for
from repro.fvc.system import FvcSystemConfig
from repro.workloads.store import TraceStore


class Fig11Compression(Experiment):
    """Frequent value content of the FVC and its storage advantage."""

    experiment_id = "fig11"
    title = "Frequent value content of FVC (512 entries, top 7)"
    paper_reference = "Figure 11"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        geometry = CacheGeometry(16 * 1024, 32)
        config = FvcSystemConfig(occupancy_sample_interval=512)
        headers = [
            "benchmark",
            "frequent_content_%",
            "storage_factor_x",
            "fvc_read_hits",
            "fvc_write_hits",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            _, system = fvc_stats(
                trace, geometry, 512, top_values=7, config=config
            )
            content = system.mean_fvc_frequent_fraction
            # 32-byte line compressed to a 3-byte code field (8 words x
            # 3 bits), scaled by how much of it holds real values.
            factor = (32 / 3) * content
            rows.append(
                {
                    "benchmark": name,
                    "frequent_content_%": round(100 * content, 1),
                    "storage_factor_x": round(factor, 2),
                    "fvc_read_hits": system.fvc_read_hits,
                    "fvc_write_hits": system.fvc_write_hits,
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            "paper: >40% content for most programs => the FVC stores "
            "cached values in ~4.27x less storage than a DMC"
        )
        return result
