"""Extra renderings of experiment results: CSV export, JSON payloads
and ASCII charts.

The result tables are the ground truth; these helpers make them easier
to consume — CSV for plotting pipelines, canonical JSON for machine
consumers (`repro-fvc run fig10 --json`, the `repro.service` result
store), horizontal bar charts for reading a "figure" directly in the
terminal (`repro-fvc run fig10 --chart`).
"""

from __future__ import annotations

import csv
import io
import json
from typing import List, Optional, Sequence

from repro.experiments.base import ExperimentResult

#: Schema tag stamped on experiment JSON payloads; bump on shape change.
EXPERIMENT_SCHEMA = "repro.experiment/1"


def experiment_payload(result: ExperimentResult) -> dict:
    """An :class:`ExperimentResult` as a plain-JSON-types dict.

    This is *the* machine-readable result format: ``repro-fvc run
    --json`` prints it and the service result store persists it, so a
    served job's payload is byte-identical to a local run's.
    """
    return {
        "schema": EXPERIMENT_SCHEMA,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [dict(row) for row in result.rows],
        "notes": list(result.notes),
    }


def dumps_canonical(payload: object) -> str:
    """Canonical JSON text: sorted keys, two-space indent, trailing
    newline.  One serialisation everywhere is what makes payload bytes
    comparable across the CLI, the result store and the HTTP API."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def dumps_compact(payload: object) -> str:
    """Canonical *compact* JSON text: sorted keys, no whitespace, no
    trailing newline.  The densest deterministic form — what result-key
    hashing and request bodies serialise through, so the same payload
    always produces the same bytes (and therefore the same digest)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def dumps_line(payload: object) -> str:
    """Canonical *single-line* JSON text: sorted keys, default item
    spacing, trailing newline.  The HTTP response-body form — one
    payload per line, stable bytes for a given payload."""
    return json.dumps(payload, sort_keys=True) + "\n"


def to_csv(result: ExperimentResult) -> str:
    """Render a result's rows as CSV (header order preserved)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=result.headers, extrasaction="ignore"
    )
    writer.writeheader()
    for row in result.rows:
        writer.writerow({header: row.get(header, "") for header in result.headers})
    return buffer.getvalue()


def _numeric_columns(result: ExperimentResult) -> List[str]:
    columns = []
    for header in result.headers:
        values = [row.get(header) for row in result.rows]
        if values and all(isinstance(v, (int, float)) for v in values):
            columns.append(header)
    return columns


def bar_chart(
    result: ExperimentResult,
    value_column: Optional[str] = None,
    label_column: Optional[str] = None,
    width: int = 48,
) -> str:
    """Horizontal ASCII bar chart of one numeric column.

    Defaults: labels from the first column, values from the first
    numeric column.  Bars are scaled to the maximum value.
    """
    if not result.rows:
        return "(no rows)"
    if label_column is None:
        label_column = result.headers[0]
    numeric = _numeric_columns(result)
    if value_column is None:
        if not numeric:
            return "(no numeric columns to chart)"
        value_column = numeric[0]
    values = [float(row.get(value_column, 0) or 0) for row in result.rows]
    labels = [str(row.get(label_column, "")) for row in result.rows]
    peak = max(abs(value) for value in values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [f"{result.experiment_id}: {value_column}"]
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * abs(value) / peak))
        lines.append(f"{label.rjust(label_width)} |{bar} {value:g}")
    return "\n".join(lines)


def multi_bar_chart(
    result: ExperimentResult,
    value_columns: Optional[Sequence[str]] = None,
    label_column: Optional[str] = None,
    width: int = 40,
) -> str:
    """Grouped ASCII chart over several numeric columns (e.g. the
    per-FVC-size reductions of Fig. 10)."""
    if not result.rows:
        return "(no rows)"
    if label_column is None:
        label_column = result.headers[0]
    if value_columns is None:
        value_columns = _numeric_columns(result)
    if not value_columns:
        return "(no numeric columns to chart)"
    peak = max(
        (abs(float(row.get(column, 0) or 0)))
        for row in result.rows
        for column in value_columns
    ) or 1.0
    column_width = max(len(column) for column in value_columns)
    blocks = [f"{result.experiment_id}"]
    for row in result.rows:
        blocks.append(f"{row.get(label_column)}:")
        for column in value_columns:
            value = float(row.get(column, 0) or 0)
            bar = "#" * max(0, round(width * abs(value) / peak))
            blocks.append(f"  {column.rjust(column_width)} |{bar} {value:g}")
    return "\n".join(blocks)
