"""Table 2 — input sensitivity of the frequently accessed values.

Compares each analog's top-7/top-10 accessed values on the test and
train inputs against those on the reference input, reporting the
paper's ``X/Y`` overlap notation.  Paper shape: roughly half the values
carry across inputs — the small constants transfer, the pointer values
often do not.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import FVL_NAMES, access_profile
from repro.profiling.sensitivity import top_value_overlap
from repro.workloads.store import TraceStore


class Table2InputSensitivity(Experiment):
    """Cross-input overlap of the frequent value sets."""

    experiment_id = "table2"
    title = "Input sensitivity of frequently accessed values"
    paper_reference = "Table 2"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        reference_input = "train" if fast else "ref"
        headers = ["benchmark", "test_top7", "test_top10", "train_top7", "train_top10"]
        rows = []
        for name in FVL_NAMES:
            reference = access_profile(store.get(name, reference_input))
            row = {"benchmark": name}
            for alt in ("test", "train"):
                alternate = access_profile(store.get(name, alt))
                overlap = top_value_overlap(reference, alternate, ks=(7, 10))
                row[f"{alt}_top7"] = f"{overlap.overlap[7]}/7"
                row[f"{alt}_top10"] = f"{overlap.overlap[10]}/10"
            rows.append(row)
        result = self._result(headers, rows)
        result.notes.append(
            f"reference ranking taken from the {reference_input} input"
        )
        return result
