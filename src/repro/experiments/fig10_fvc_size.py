"""Fig. 10 — miss-rate reduction vs FVC size.

16 KB DMC with 8-word (32 B) lines, top-7 FVC swept from 64 to 4096
entries.  Paper shape: m88ksim and perl saturate with the very smallest
FVC (conflict pairs need only a few entries); go, gcc and vortex grow
steadily with FVC size (compressed capacity); li shows the smallest
reduction.

The cell plan is derived from the ``fig10`` spec in
:mod:`repro.sweeps.catalog` (one baseline + one cell per FVC size per
workload), so ``repro-fvc run fig10 --jobs N`` fans the 6x8 grid across
cores; the sequential run executes the identical cells in order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.cells import CellResult, SimCell
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    FVL_NAMES,
    reduction_percent,
)
from repro.workloads.store import TraceStore


def _sizes(fast: bool) -> Sequence[int]:
    from repro.sweeps.catalog import FIG10_FAST_SIZES, FIG10_SIZES

    return FIG10_FAST_SIZES if fast else FIG10_SIZES


class Fig10FvcSize(Experiment):
    """Reduction in miss rate as the FVC grows."""

    experiment_id = "fig10"
    title = "Miss rate reduction vs FVC size (16KB DMC, 8 words/line, top 7)"
    paper_reference = "Figure 10"

    def plan_cells(self, fast: bool = False) -> List[SimCell]:
        return self._plan_from_sweep(fast)

    def merge_cells(
        self,
        cells: Sequence[SimCell],
        results: Sequence[CellResult],
        fast: bool = False,
    ) -> ExperimentResult:
        sizes = _sizes(fast)
        headers = ["benchmark", "base_miss_%"] + [
            f"red_{entries}e_%" for entries in sizes
        ]
        rows = []
        stride = 1 + len(sizes)
        for block, name in enumerate(FVL_NAMES):
            base = results[block * stride].cache_stats()
            row = {
                "benchmark": name,
                "base_miss_%": round(100 * base.miss_rate, 3),
            }
            for offset, entries in enumerate(sizes, start=1):
                stats = results[block * stride + offset].cache_stats()
                row[f"red_{entries}e_%"] = round(
                    reduction_percent(base, stats), 1
                )
            rows.append(row)
        return self._result(headers, rows)

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        cells = self.plan_cells(fast)
        return self.merge_cells(cells, self._run_cells(cells, store), fast)
