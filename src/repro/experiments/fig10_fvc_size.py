"""Fig. 10 — miss-rate reduction vs FVC size.

16 KB DMC with 8-word (32 B) lines, top-7 FVC swept from 64 to 4096
entries.  Paper shape: m88ksim and perl saturate with the very smallest
FVC (conflict pairs need only a few entries); go, gcc and vortex grow
steadily with FVC size (compressed capacity); li shows the smallest
reduction.

Decomposed into engine cells (one baseline + one cell per FVC size per
workload), so ``repro-fvc run fig10 --jobs N`` fans the 6x8 grid across
cores; the sequential run executes the identical cells in order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.cells import CellResult, SimCell
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    FVL_NAMES,
    input_for,
    reduction_percent,
)
from repro.workloads.store import TraceStore

_FULL_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)
_FAST_SIZES = (64, 512, 4096)


def _sizes(fast: bool) -> Sequence[int]:
    return _FAST_SIZES if fast else _FULL_SIZES


class Fig10FvcSize(Experiment):
    """Reduction in miss rate as the FVC grows."""

    experiment_id = "fig10"
    title = "Miss rate reduction vs FVC size (16KB DMC, 8 words/line, top 7)"
    paper_reference = "Figure 10"

    def plan_cells(self, fast: bool = False) -> List[SimCell]:
        input_name = input_for(fast)
        cells = []
        for name in FVL_NAMES:
            cells.append(
                SimCell(
                    workload=name,
                    input_name=input_name,
                    kind="baseline",
                    size_bytes=16 * 1024,
                    line_bytes=32,
                )
            )
            for entries in _sizes(fast):
                cells.append(
                    SimCell(
                        workload=name,
                        input_name=input_name,
                        kind="fvc",
                        size_bytes=16 * 1024,
                        line_bytes=32,
                        fvc_entries=entries,
                        top_values=7,
                    )
                )
        return cells

    def merge_cells(
        self,
        cells: Sequence[SimCell],
        results: Sequence[CellResult],
        fast: bool = False,
    ) -> ExperimentResult:
        sizes = _sizes(fast)
        headers = ["benchmark", "base_miss_%"] + [
            f"red_{entries}e_%" for entries in sizes
        ]
        rows = []
        stride = 1 + len(sizes)
        for block, name in enumerate(FVL_NAMES):
            base = results[block * stride].cache_stats()
            row = {
                "benchmark": name,
                "base_miss_%": round(100 * base.miss_rate, 3),
            }
            for offset, entries in enumerate(sizes, start=1):
                stats = results[block * stride + offset].cache_stats()
                row[f"red_{entries}e_%"] = round(
                    reduction_percent(base, stats), 1
                )
            rows.append(row)
        return self._result(headers, rows)

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        cells = self.plan_cells(fast)
        return self.merge_cells(cells, self._run_cells(cells, store), fast)
