"""Fig. 10 — miss-rate reduction vs FVC size.

16 KB DMC with 8-word (32 B) lines, top-7 FVC swept from 64 to 4096
entries.  Paper shape: m88ksim and perl saturate with the very smallest
FVC (conflict pairs need only a few entries); go, gcc and vortex grow
steadily with FVC size (compressed capacity); li shows the smallest
reduction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cache.geometry import CacheGeometry
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    FVL_NAMES,
    baseline_stats,
    fvc_stats,
    input_for,
    reduction_percent,
)
from repro.workloads.store import TraceStore

_FULL_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)
_FAST_SIZES = (64, 512, 4096)


class Fig10FvcSize(Experiment):
    """Reduction in miss rate as the FVC grows."""

    experiment_id = "fig10"
    title = "Miss rate reduction vs FVC size (16KB DMC, 8 words/line, top 7)"
    paper_reference = "Figure 10"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        sizes: Sequence[int] = _FAST_SIZES if fast else _FULL_SIZES
        geometry = CacheGeometry(16 * 1024, 32)
        headers = ["benchmark", "base_miss_%"] + [
            f"red_{entries}e_%" for entries in sizes
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            base = baseline_stats(trace, geometry)
            row = {
                "benchmark": name,
                "base_miss_%": round(100 * base.miss_rate, 3),
            }
            for entries in sizes:
                stats, _ = fvc_stats(trace, geometry, entries, top_values=7)
                row[f"red_{entries}e_%"] = round(
                    reduction_percent(base, stats), 1
                )
            rows.append(row)
        return self._result(headers, rows)
