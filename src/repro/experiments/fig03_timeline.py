"""Fig. 3 — frequent value locality over the execution of gcc.

Tracks, at regular points of execution: total live locations and
cumulative accesses; how many are covered by the final top-1/3/7/10
values; and the distinct-value counts.  Paper shape: the coverage bands
hold steady across the whole run (the top ten cover ~50% of locations
and ~40-50% of accesses throughout), and the number of distinct values
stays far below the number of locations/accesses.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import input_for
from repro.profiling.occurrence import OccurrenceCollector
from repro.profiling.timeline import profile_timeline
from repro.workloads.registry import get_workload
from repro.workloads.store import TraceStore


class Fig03Timeline(Experiment):
    """Coverage-over-time curves for the gcc analog."""

    experiment_id = "fig3"
    title = "Frequent value locality over execution (gcc analog)"
    paper_reference = "Figure 3"

    def __init__(self, workload_name: str = "gcc", points: int = 20) -> None:
        self.workload_name = workload_name
        self.points = points

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        workload = get_workload(self.workload_name)

        # One instrumented run collecting both the trace and the
        # occurrence snapshots at matched points.
        trace = store.get(self.workload_name, input_name)
        interval = max(1, len(trace) // self.points)
        collector = OccurrenceCollector()
        workload.execute(
            input_name, sample_interval=interval, sampler=collector
        )
        occurrence = collector.build_profile()
        points = profile_timeline(trace, occurrence)

        headers = [
            "accesses",
            "live_locs",
            "locs_top1",
            "locs_top3",
            "locs_top7",
            "locs_top10",
            "distinct_in_mem",
            "acc_top1",
            "acc_top3",
            "acc_top7",
            "acc_top10",
            "distinct_accessed",
        ]
        rows = []
        for point in points:
            rows.append(
                {
                    "accesses": point.cumulative_accesses,
                    "live_locs": point.live_locations,
                    "locs_top1": point.covered_locations[0],
                    "locs_top3": point.covered_locations[1],
                    "locs_top7": point.covered_locations[2],
                    "locs_top10": point.covered_locations[3],
                    "distinct_in_mem": point.distinct_values_in_memory,
                    "acc_top1": point.covered_accesses[0],
                    "acc_top3": point.covered_accesses[1],
                    "acc_top7": point.covered_accesses[2],
                    "acc_top10": point.covered_accesses[3],
                    "distinct_accessed": point.distinct_values_accessed,
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            "coverage uses the full-run top-k rankings, as the paper plots"
        )
        return result
