"""Ablations of the FVC design choices (DESIGN.md §5).

Each ablation runs the headline configuration (16 KB direct-mapped,
8-word lines, 512-entry top-7 FVC) with one design switch flipped:

* **write-allocate-frequent** — the paper's §3 exception (allocate a
  frequent-valued write miss straight into the FVC).  Quantifies why
  the reproduction defaults it off: on these traces it adds misses on
  freshly written mixed-value lines.
* **exclusive vs inclusive** — the paper's exclusivity rule (a line is
  never in both structures).
* **insert-empty-lines** — whether lines with no frequent words consume
  FVC entries on eviction.
* **dynamic value identification** — Space-Saving online profiling
  (the deployment story Table 3 motivates) vs the paper's offline
  profiling run.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    FVL_NAMES,
    baseline_stats,
    fvc_miss_stats,
    fvc_stats,
    input_for,
    reduction_percent,
)
from repro.fvc.dynamic import DynamicFvcSystem
from repro.fvc.system import FvcSystemConfig
from repro.workloads.store import TraceStore

_GEOMETRY = CacheGeometry(16 * 1024, 32)


class _ConfigAblation(Experiment):
    """Compare the default configuration against one flipped switch."""

    flag_name = ""
    flipped_value = True

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        flipped = FvcSystemConfig(**{self.flag_name: self.flipped_value})
        headers = ["benchmark", "base_miss_%", "default_red_%", "flipped_red_%"]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            base = baseline_stats(trace, _GEOMETRY)
            default_stats = fvc_miss_stats(trace, _GEOMETRY, 512, top_values=7)
            flipped_stats = fvc_miss_stats(
                trace, _GEOMETRY, 512, top_values=7, config=flipped
            )
            rows.append(
                {
                    "benchmark": name,
                    "base_miss_%": round(100 * base.miss_rate, 3),
                    "default_red_%": round(
                        reduction_percent(base, default_stats), 1
                    ),
                    "flipped_red_%": round(
                        reduction_percent(base, flipped_stats), 1
                    ),
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            f"flipped switch: {self.flag_name} = {self.flipped_value}"
        )
        return result


class AblationWriteAllocate(_ConfigAblation):
    """The paper's write-allocate-frequent exception."""

    experiment_id = "ablation-waf"
    title = "Ablation: write-allocate-frequent (the paper's §3 exception)"
    paper_reference = "Section 3 (transfer rules)"
    flag_name = "write_allocate_frequent"
    flipped_value = True


class AblationInclusive(_ConfigAblation):
    """Dropping the exclusivity rule."""

    experiment_id = "ablation-exclusive"
    title = "Ablation: exclusive (default) vs inclusive FVC contents"
    paper_reference = "Section 3 (design goals)"
    flag_name = "exclusive"
    flipped_value = False


class AblationInsertEmpty(_ConfigAblation):
    """Inserting lines that carry no frequent words."""

    experiment_id = "ablation-insert-empty"
    title = "Ablation: insert all-infrequent lines into the FVC"
    paper_reference = "Section 3 (eviction path)"
    flag_name = "insert_empty_lines"
    flipped_value = True


class AblationDynamic(Experiment):
    """Online value identification vs offline profiling."""

    experiment_id = "ablation-dynamic"
    title = "Ablation: dynamic (Space-Saving) vs profiled value sets"
    paper_reference = "Section 2 (finding frequently accessed values)"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        headers = [
            "benchmark",
            "base_miss_%",
            "profiled_red_%",
            "dynamic_red_%",
            "values_overlap",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            base = baseline_stats(trace, _GEOMETRY)
            profiled_stats, profiled_system = fvc_stats(
                trace, _GEOMETRY, 512, top_values=7
            )
            warmup = max(1000, len(trace) // 20)
            dynamic = DynamicFvcSystem(
                _GEOMETRY, 512, code_bits=3, warmup_accesses=warmup
            )
            dynamic_stats = dynamic.simulate(trace.records)
            overlap = len(
                set(dynamic.frequent_values)
                & set(profiled_system.encoder.values)
            )
            rows.append(
                {
                    "benchmark": name,
                    "base_miss_%": round(100 * base.miss_rate, 3),
                    "profiled_red_%": round(
                        reduction_percent(base, profiled_stats), 1
                    ),
                    "dynamic_red_%": round(
                        reduction_percent(base, dynamic_stats), 1
                    ),
                    "values_overlap": f"{overlap}/7",
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            "dynamic = FVC idle for the first 5% of execution while a "
            "64-counter Space-Saving summary finds the values, then locked"
        )
        return result
