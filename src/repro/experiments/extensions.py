"""Extension experiments beyond the paper's figures.

Each follows a thread the paper opens but does not evaluate:

* **write-through traffic** — §1 dismisses write-through caches for
  their traffic; this measures the factor.
* **energy** — §1 argues traffic reductions translate to power; this
  applies the calibrated energy model to the headline configuration.
* **cross-input deployment** — Table 2 shows the frequent value set is
  only partially input-sensitive; this measures what an FVC configured
  by profiling the *train* input achieves on the *reference* run (the
  realistic deployment of the paper's profiling flow).
* **FVC associativity** — the paper's FVC is direct-mapped; this asks
  whether making the FVC itself set-associative helps (its conflict
  pairs contend for single FVC entries).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import TwoLevelFvcSystem, TwoLevelSystem
from repro.cache.writethrough import WriteThroughCache
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    FVL_NAMES,
    access_profile,
    baseline_stats,
    encoder_for,
    fvc_miss_stats,
    input_for,
    reduction_percent,
)
from repro.cache.victim import VictimCacheSystem
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.compression import CompressedCache
from repro.fvc.hybrid import HybridFvcVictimSystem
from repro.fvc.system import FvcSystem
from repro.kernels.dispatch import try_hierarchy_replay
from repro.timing.energy import DEFAULT_ENERGY_MODEL
from repro.timing.performance import DEFAULT_PERFORMANCE_MODEL
from repro.workloads.store import TraceStore

_GEOMETRY = CacheGeometry(16 * 1024, 32)


class ExtWriteThroughTraffic(Experiment):
    """Write-through vs write-back traffic (the paper's §1 premise)."""

    experiment_id = "ext-writethrough"
    title = "Write-through vs write-back traffic"
    paper_reference = "Section 1 (policy choice)"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        headers = ["benchmark", "wb_traffic_words", "wt_traffic_words",
                   "traffic_factor_x"]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            write_back = DirectMappedCache(_GEOMETRY).simulate(trace.records)
            write_through = WriteThroughCache(_GEOMETRY).simulate(trace.records)
            rows.append(
                {
                    "benchmark": name,
                    "wb_traffic_words": write_back.traffic_words,
                    "wt_traffic_words": write_through.traffic_words,
                    "traffic_factor_x": round(
                        write_through.traffic_words
                        / max(1, write_back.traffic_words),
                        2,
                    ),
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            "paper: write-through 'known to generate much higher levels "
            "of traffic' — the factor column quantifies it on the analogs"
        )
        return result


class ExtEnergy(Experiment):
    """Energy of baseline vs DMC+FVC vs doubled DMC."""

    experiment_id = "ext-energy"
    title = "Energy: 16KB DMC vs 16KB+FVC vs 32KB DMC"
    paper_reference = "Section 1 (power motivation)"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        model = DEFAULT_ENERGY_MODEL
        double = CacheGeometry(32 * 1024, 32)
        headers = [
            "benchmark",
            "base_uJ",
            "fvc_uJ",
            "double_uJ",
            "fvc_saving_%",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            base = baseline_stats(trace, _GEOMETRY)
            doubled = baseline_stats(trace, double)
            augmented = fvc_miss_stats(trace, _GEOMETRY, 512, top_values=7)
            base_nj = model.baseline_total_nj(base, _GEOMETRY)
            fvc_nj = model.fvc_system_total_nj(augmented, _GEOMETRY, 3)
            double_nj = model.baseline_total_nj(doubled, double)
            rows.append(
                {
                    "benchmark": name,
                    "base_uJ": round(base_nj / 1000, 1),
                    "fvc_uJ": round(fvc_nj / 1000, 1),
                    "double_uJ": round(double_nj / 1000, 1),
                    "fvc_saving_%": round(100 * (base_nj - fvc_nj) / base_nj, 1),
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            "energy = per-access SRAM array costs + off-chip word traffic "
            "(calibrated model; relative ordering is the claim)"
        )
        return result


class ExtCrossInput(Experiment):
    """Deploying a train-profiled value set on the reference run."""

    experiment_id = "ext-cross-input"
    title = "FVC with train-profiled values on the reference input"
    paper_reference = "Table 2 (input sensitivity) applied"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        run_input = "train" if fast else "ref"
        profile_input = "test" if fast else "train"
        headers = [
            "benchmark",
            "base_miss_%",
            "self_profiled_red_%",
            "cross_profiled_red_%",
            "retained_%",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, run_input)
            profile_trace = store.get(name, profile_input)
            base = baseline_stats(trace, _GEOMETRY)
            self_stats = fvc_miss_stats(trace, _GEOMETRY, 512, top_values=7)
            cross_encoder = FrequentValueEncoder.for_top_values(
                access_profile(profile_trace).top_values(7), 3
            )
            cross_system = FvcSystem(_GEOMETRY, 512, cross_encoder)
            cross_stats = cross_system.simulate(trace.records)
            self_red = reduction_percent(base, self_stats)
            cross_red = reduction_percent(base, cross_stats)
            rows.append(
                {
                    "benchmark": name,
                    "base_miss_%": round(100 * base.miss_rate, 3),
                    "self_profiled_red_%": round(self_red, 1),
                    "cross_profiled_red_%": round(cross_red, 1),
                    "retained_%": round(100 * cross_red / self_red, 1)
                    if self_red > 0
                    else 0.0,
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            f"values profiled on the {profile_input} input, cache "
            f"evaluated on the {run_input} input"
        )
        return result


class ExtFvcAssociativity(Experiment):
    """Direct-mapped vs set-associative FVC arrays."""

    experiment_id = "ext-fvc-assoc"
    title = "FVC associativity: direct vs 2-way vs 4-way (512 entries)"
    paper_reference = "Section 3 (FVC organisation, extension)"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        headers = ["benchmark", "base_miss_%", "red_direct_%", "red_2way_%",
                   "red_4way_%"]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            base = baseline_stats(trace, _GEOMETRY)
            row = {
                "benchmark": name,
                "base_miss_%": round(100 * base.miss_rate, 3),
            }
            for label, ways in (("direct", 1), ("2way", 2), ("4way", 4)):
                system = FvcSystem(
                    _GEOMETRY, 512, encoder_for(trace, 7), fvc_ways=ways
                )
                stats = system.simulate(trace.records)
                row[f"red_{label}_%"] = round(reduction_percent(base, stats), 1)
            rows.append(row)
        return self._result(headers, rows)


class ExtHybrid(Experiment):
    """FVC + victim cache with content-routed evictions."""

    experiment_id = "ext-hybrid"
    title = "Hybrid: content-routed FVC + victim buffer vs each alone"
    paper_reference = "Conclusions (exploiting FVL in creative ways)"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        geometry = CacheGeometry(4 * 1024, 32)
        headers = [
            "benchmark",
            "base_miss_%",
            "fvc_only_red_%",
            "vc_only_red_%",
            "hybrid_red_%",
            "to_fvc_%",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            base = baseline_stats(trace, geometry)
            encoder = encoder_for(trace, 7)
            fvc_only = FvcSystem(geometry, 256, encoder).simulate(trace.records)
            vc_only = VictimCacheSystem(geometry, 8).simulate(trace.records)
            hybrid = HybridFvcVictimSystem(
                geometry, 256, 8, encoder
            )
            hybrid_stats = hybrid.simulate(trace.records)
            routed = hybrid.routed_to_fvc + hybrid.routed_to_victim
            rows.append(
                {
                    "benchmark": name,
                    "base_miss_%": round(100 * base.miss_rate, 3),
                    "fvc_only_red_%": round(
                        reduction_percent(base, fvc_only), 1
                    ),
                    "vc_only_red_%": round(
                        reduction_percent(base, vc_only), 1
                    ),
                    "hybrid_red_%": round(
                        reduction_percent(base, hybrid_stats), 1
                    ),
                    "to_fvc_%": round(
                        100 * hybrid.routed_to_fvc / routed, 1
                    ) if routed else 0.0,
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            "4KB DMC; hybrid = 256-entry FVC + 8-entry victim buffer, "
            "evictions routed by frequent-word fraction (threshold 0.5)"
        )
        return result


class ExtCompressionCache(Experiment):
    """Frequent-value compression cache (the paper's reference [11])."""

    experiment_id = "ext-compression"
    title = "FV compression cache: 2 compressed lines per slot vs DMC/FVC"
    paper_reference = "Reference [11] (the spawned compression line)"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        geometry = CacheGeometry(8 * 1024, 32)
        headers = [
            "benchmark",
            "base_miss_%",
            "fvc_red_%",
            "compression_red_%",
            "compressible_%",
            "resident_lines",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            base = baseline_stats(trace, geometry)
            fvc = fvc_miss_stats(trace, geometry, 256, top_values=7)
            compressed = CompressedCache(geometry, encoder_for(trace, 7))
            compressed_stats = compressed.simulate(trace.records)
            rows.append(
                {
                    "benchmark": name,
                    "base_miss_%": round(100 * base.miss_rate, 3),
                    "fvc_red_%": round(reduction_percent(base, fvc), 1),
                    "compression_red_%": round(
                        reduction_percent(base, compressed_stats), 1
                    ),
                    "compressible_%": round(
                        100 * compressed.compression_ratio(), 1
                    ),
                    "resident_lines": compressed.resident_lines(),
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            "8KB physical cache; the compression cache holds up to two "
            "compressed lines per slot (effective capacity up to 2x); "
            "FVC column = same DMC + a 256-entry top-7 FVC"
        )
        return result


class ExtHierarchy(Experiment):
    """Does the FVC's benefit survive behind a unified L2?"""

    experiment_id = "ext-hierarchy"
    title = "Two-level hierarchy: L1 FVC vs plain L1, 64KB 4-way L2"
    paper_reference = "Section 4 extended (hierarchy composition)"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        l1 = CacheGeometry(16 * 1024, 32)
        l2 = CacheGeometry(64 * 1024, 32, ways=4)
        headers = [
            "benchmark",
            "l1_red_%",
            "plain_global_miss_%",
            "fvc_global_miss_%",
            "l2_read_traffic_saved_%",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            plain = TwoLevelSystem(l1, l2)
            if not try_hierarchy_replay(plain, trace):
                plain.simulate(trace.records)
            fvc = TwoLevelFvcSystem(l1, l2, 512, encoder_for(trace, 7))
            fvc.simulate(trace.records)
            saved = 0.0
            if plain.l2_stats.accesses:
                saved = 100 * (
                    plain.l2_stats.accesses - fvc.l2_stats.accesses
                ) / plain.l2_stats.accesses
            rows.append(
                {
                    "benchmark": name,
                    "l1_red_%": round(
                        reduction_percent(plain.stats, fvc.stats), 1
                    ),
                    "plain_global_miss_%": round(
                        100 * plain.global_miss_rate, 3
                    ),
                    "fvc_global_miss_%": round(
                        100 * fvc.global_miss_rate, 3
                    ),
                    "l2_read_traffic_saved_%": round(saved, 1),
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            "the FVC's first-order effect behind an L2 is removing L1-L2 "
            "traffic (and with it L2 energy); the global miss rate is "
            "bounded by the L2"
        )
        return result


class ExtPerformance(Experiment):
    """Execution-time estimate: the paper's closing performance claim."""

    experiment_id = "ext-performance"
    title = "Estimated memory access time: DMC vs DMC+FVC vs 2x DMC"
    paper_reference = "Section 1 (execution-time claim), quantified"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        model = DEFAULT_PERFORMANCE_MODEL
        geometry = CacheGeometry(16 * 1024, 32)
        double = CacheGeometry(32 * 1024, 32)
        headers = [
            "benchmark",
            "base_amat_ns",
            "fvc_amat_ns",
            "double_amat_ns",
            "fvc_speedup_%",
        ]
        rows = []
        for name in FVL_NAMES:
            trace = store.get(name, input_name)
            base = baseline_stats(trace, geometry)
            doubled = baseline_stats(trace, double)
            augmented = fvc_miss_stats(trace, geometry, 512, top_values=7)
            base_amat = model.amat_ns(base, geometry)
            fvc_amat = model.amat_ns(augmented, geometry, fvc_entries=512)
            double_amat = model.amat_ns(doubled, double)
            rows.append(
                {
                    "benchmark": name,
                    "base_amat_ns": round(base_amat, 2),
                    "fvc_amat_ns": round(fvc_amat, 2),
                    "double_amat_ns": round(double_amat, 2),
                    "fvc_speedup_%": round(
                        100 * (base_amat - fvc_amat) / base_amat, 1
                    ),
                }
            )
        result = self._result(headers, rows)
        result.notes.append(
            "AMAT = cycle time (slower of DMC and FVC paths, CACTI model) "
            "+ miss rate x (60ns memory + 5ns/word transfer); the doubled "
            "DMC also pays a longer cycle time"
        )
        return result
