"""Fig. 5 — spatial distribution of frequent values (gcc analog).

Snapshot of referenced memory at mid-execution, broken into blocks of
800 consecutive referenced locations viewed as 100 lines of 8 words;
for each block, the average count of top-7 occurring values per line.
Paper shape: a roughly flat curve around four values per line —
frequent values are spread uniformly across memory.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import input_for
from repro.profiling.occurrence import profile_occurring_values
from repro.profiling.spatial import profile_spatial_distribution
from repro.workloads.registry import get_workload
from repro.workloads.store import TraceStore


class _MidpointSnapshot:
    """Sampler that keeps the first snapshot at/after the midpoint."""

    def __init__(self) -> None:
        self.items: Optional[List[Tuple[int, int]]] = None

    def __call__(self, memory) -> None:
        if self.items is None:
            self.items = list(memory.live_items())


class Fig05Spatial(Experiment):
    """Frequent-value density across memory blocks."""

    experiment_id = "fig5"
    title = "Frequent value density across memory blocks (gcc analog)"
    paper_reference = "Figure 5 (800-word blocks, 8-word lines, top 7)"

    def __init__(self, workload_name: str = "gcc") -> None:
        self.workload_name = workload_name

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        store = self._store(store)
        input_name = input_for(fast)
        workload = get_workload(self.workload_name)
        trace = store.get(self.workload_name, input_name)

        occurrence = profile_occurring_values(
            workload, input_name, sample_interval=10_000 if fast else 40_000
        )
        frequent = occurrence.top_values(7)

        snapshot = _MidpointSnapshot()
        workload.execute(
            input_name,
            sample_interval=max(1, len(trace) // 2),
            sampler=snapshot,
        )
        profile = profile_spatial_distribution(
            snapshot.items or [], frequent, block_words=800, line_words=8
        )
        headers = ["block", "freq_per_line"]
        rows = [
            {"block": index, "freq_per_line": round(density, 2)}
            for index, density in enumerate(profile.per_block)
        ]
        result = self._result(headers, rows)
        result.notes.append(
            f"mean={profile.mean_density:.2f} per 8-word line, "
            f"stdev={profile.stdev_density:.2f}, "
            f"coefficient of variation={profile.uniformity:.2f} "
            "(flat curve = uniform spread)"
        )
        return result
