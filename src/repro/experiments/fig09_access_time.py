"""Fig. 9 — access times of FVC vs DMC configurations.

Evaluates the calibrated CACTI-style model for every DMC configuration
(4-64 KB x 16/32/64 B lines) and FVC size (64-4096 entries, top-7
code), and marks which DMC configurations a 512-entry FVC fits under
(access time no greater than the DMC's).  Paper shape: many DMC
configurations are no faster than the FVC; only the small-and-wide
arrays beat it (exactly three of the fifteen here, leaving the twelve
admissible configurations Fig. 12 uses).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import DMC_SIZES_KB, LINE_SIZES
from repro.timing.cacti import DEFAULT_MODEL
from repro.workloads.store import TraceStore

_FVC_ENTRIES = (64, 128, 256, 512, 1024, 2048, 4096)


class Fig09AccessTime(Experiment):
    """CACTI-style access-time comparison."""

    experiment_id = "fig9"
    title = "Access time of FVC vs DMC (calibrated 0.8um model)"
    paper_reference = "Figure 9"

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        model = DEFAULT_MODEL
        headers = ["structure", "config", "access_ns", "fvc512_fits"]
        rows = []
        for size_kb in DMC_SIZES_KB:
            for line_bytes in LINE_SIZES:
                geometry = CacheGeometry(size_kb * 1024, line_bytes)
                time_ns = model.direct_mapped_access_ns(geometry)
                rows.append(
                    {
                        "structure": "DMC",
                        "config": geometry.describe(),
                        "access_ns": round(time_ns, 2),
                        "fvc512_fits": "yes"
                        if model.fvc_fits_dmc(512, 3, geometry)
                        else "no",
                    }
                )
        for entries in _FVC_ENTRIES:
            for line_bytes in LINE_SIZES:
                time_ns = model.fvc_access_ns(entries, 3, line_bytes // 4)
                rows.append(
                    {
                        "structure": "FVC",
                        "config": f"{entries}e/{line_bytes}B-line/top7",
                        "access_ns": round(time_ns, 2),
                        "fvc512_fits": "",
                    }
                )
        rows.append(
            {
                "structure": "VC",
                "config": "4e fully-assoc/32B",
                "access_ns": round(model.fully_associative_access_ns(4, 32), 2),
                "fvc512_fits": "",
            }
        )
        result = self._result(headers, rows)
        admissible = sum(1 for row in rows if row["fvc512_fits"] == "yes")
        result.notes.append(
            f"{admissible} of 15 DMC configurations admit a 512-entry FVC "
            "(paper: 12)"
        )
        return result
