"""Fig. 12 — miss-rate reductions: top 1 vs top 3 vs top 7 values.

A 512-entry FVC over the twelve DMC configurations whose access time is
no less than the FVC's (the Fig. 9 admissibility rule), exploiting 1, 3
or 7 frequent values.  Paper shape: going from 1 to 3 values often
helps substantially; 3 to 7 helps less; reductions span ~1-68%.

The cell plan is derived from the ``fig12`` spec in
:mod:`repro.sweeps.catalog`: per workload, per admissible geometry, a
baseline cell then one DMC+FVC cell per exploited-value count — so
``--jobs N`` fans the grid across cores while the sequential run
executes the identical cells in order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cache.geometry import CacheGeometry
from repro.engine.cells import CellResult, SimCell
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import (
    DMC_SIZES_KB,
    FVL_NAMES,
    LINE_SIZES,
    reduction_percent,
)
from repro.timing.cacti import DEFAULT_MODEL
from repro.workloads.store import TraceStore

_TOPS = (1, 3, 7)


def admissible_configs() -> List[CacheGeometry]:
    """The DMC configurations a 512-entry top-7 FVC fits under."""
    configs = []
    for size_kb in DMC_SIZES_KB:
        for line_bytes in LINE_SIZES:
            geometry = CacheGeometry(size_kb * 1024, line_bytes)
            if DEFAULT_MODEL.fvc_fits_dmc(512, 3, geometry):
                configs.append(geometry)
    return configs


def _configs(fast: bool) -> List[CacheGeometry]:
    configs = admissible_configs()
    return configs[:3] if fast else configs


class Fig12ValueCount(Experiment):
    """Exploiting 1 vs 3 vs 7 frequently accessed values."""

    experiment_id = "fig12"
    title = "Reduction in miss rate: top 1 vs 3 vs 7 values (512-entry FVC)"
    paper_reference = "Figure 12"

    def plan_cells(self, fast: bool = False) -> List[SimCell]:
        return self._plan_from_sweep(fast)

    def merge_cells(
        self,
        cells: Sequence[SimCell],
        results: Sequence[CellResult],
        fast: bool = False,
    ) -> ExperimentResult:
        configs = _configs(fast)
        headers = ["benchmark", "dmc", "base_miss_%", "red_top1_%",
                   "red_top3_%", "red_top7_%"]
        rows = []
        cursor = 0
        for name in FVL_NAMES:
            for geometry in configs:
                base = results[cursor].cache_stats()
                cursor += 1
                row = {
                    "benchmark": name,
                    "dmc": geometry.describe(),
                    "base_miss_%": round(100 * base.miss_rate, 3),
                }
                for top in _TOPS:
                    stats = results[cursor].cache_stats()
                    cursor += 1
                    row[f"red_top{top}_%"] = round(
                        reduction_percent(base, stats), 1
                    )
                rows.append(row)
        result = self._result(headers, rows)
        result.notes.append(
            f"{len(configs)} admissible DMC configurations (access time >= "
            "512-entry FVC)"
        )
        return result

    def run(
        self, store: Optional[TraceStore] = None, fast: bool = False
    ) -> ExperimentResult:
        cells = self.plan_cells(fast)
        return self.merge_cells(cells, self._run_cells(cells, store), fast)
