"""Profiling hooks: per-cell throughput and collapsed-stack output.

Two consumers share the machinery:

* **Opt-in hot-loop accounting** — with observability enabled
  (:func:`repro.obs.enabled`), :func:`repro.engine.cells.run_cell`
  feeds the process-global registry: cells executed, trace references
  replayed, and a latency histogram (``engine_cells_total``,
  ``engine_cell_references_total``, ``engine_cell_seconds``), from
  which reference throughput falls out.
* **``repro-fvc profile-run``** — runs one decomposable experiment
  cell by cell and emits a flamegraph-compatible *collapsed stack*
  file: one line per cell, ``frame;frame;frame weight``, digestible by
  ``flamegraph.pl`` or speedscope.  Weights are either deterministic
  trace-reference counts (``refs``, the default — identical every run)
  or measured microseconds (``micros``).

Profiling never touches simulation state: cells run through the same
:func:`~repro.engine.cells.run_cell` path as any other run, so a
profiled run's results are bit-identical to an unprofiled one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Valid ``collapsed()`` weight modes.
WEIGHTS = ("refs", "micros")


@dataclass(frozen=True)
class CellProfile:
    """One profiled cell: its stack frames and both weight candidates."""

    stack: Tuple[str, ...]
    references: int
    micros: int

    def line(self, weight: str = "refs") -> str:
        """One collapsed-stack line (``frame;frame weight``)."""
        if weight not in WEIGHTS:
            raise ConfigurationError(
                f"unknown profile weight {weight!r}; choose from {WEIGHTS}"
            )
        value = self.references if weight == "refs" else self.micros
        return ";".join(self.stack) + f" {value}"


@dataclass
class RunProfile:
    """Everything ``profile-run`` measured for one experiment."""

    experiment_id: str
    cells: List[CellProfile]
    elapsed_seconds: float

    @property
    def total_references(self) -> int:
        return sum(cell.references for cell in self.cells)

    def throughput(self) -> float:
        """References replayed per second across the whole run."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_references / self.elapsed_seconds

    def collapsed(self, weight: str = "refs") -> str:
        """The collapsed-stack document (one cell per line, trailing
        newline).  ``refs`` weights are deterministic; ``micros`` are
        measurements."""
        return "".join(cell.line(weight) + "\n" for cell in self.cells)


def _frame(text: str) -> str:
    """Collapsed-stack frames must not contain separators or spaces."""
    return text.replace(";", ",").replace(" ", "_")


def cell_frames(experiment_id: str, cell) -> Tuple[str, ...]:
    """The stack a cell contributes to the flamegraph: experiment →
    workload/input → simulator configuration."""
    geometry = (
        f"{cell.size_bytes // 1024}KB/{cell.line_bytes}B/{cell.ways}w"
    )
    config = f"{cell.kind}:{geometry}"
    if cell.kind == "fvc":
        config += f"/{cell.fvc_entries}e/top{cell.top_values}"
    return (
        _frame(f"repro-fvc:{experiment_id}"),
        _frame(f"{cell.workload}/{cell.input_name}"),
        _frame(config),
    )


def _cell_references(result) -> int:
    """Trace references a finished cell replayed (deterministic)."""
    accesses = result.extras.get("accesses")
    if accesses is not None:
        return int(accesses)
    stats = result.stats
    return int(
        stats.get("read_hits", 0)
        + stats.get("read_misses", 0)
        + stats.get("write_hits", 0)
        + stats.get("write_misses", 0)
    )


def profile_run(
    experiment_id: str,
    fast: bool = False,
    store=None,
) -> RunProfile:
    """Run one experiment cell by cell, timing each.

    Only experiments that decompose into engine cells
    (:meth:`repro.experiments.base.Experiment.plan_cells`) can be
    profiled this way; others raise :class:`ConfigurationError` naming
    the decomposable ones.
    """
    from repro.engine.cells import run_cell
    from repro.experiments.registry import experiment_ids, get_experiment
    from repro.workloads.store import shared_store

    experiment = get_experiment(experiment_id)
    plan = experiment.plan_cells(fast)
    if plan is None:
        decomposable = [
            other
            for other in experiment_ids()
            if get_experiment(other).plan_cells(fast) is not None
        ]
        raise ConfigurationError(
            f"experiment {experiment_id!r} does not decompose into cells "
            f"and cannot be profiled; decomposable: {', '.join(decomposable)}"
        )
    if store is None:
        store = shared_store
    cells: List[CellProfile] = []
    run_started = time.perf_counter()
    for cell in plan:
        started = time.perf_counter()
        result = run_cell(cell, store)
        elapsed = time.perf_counter() - started
        cells.append(
            CellProfile(
                stack=cell_frames(experiment_id, cell),
                references=_cell_references(result),
                micros=int(elapsed * 1_000_000),
            )
        )
    return RunProfile(
        experiment_id=experiment_id,
        cells=cells,
        elapsed_seconds=time.perf_counter() - run_started,
    )


def write_collapsed(
    profile: RunProfile, path: str, weight: str = "refs"
) -> Optional[str]:
    """Write the collapsed-stack file; returns the path written."""
    document = profile.collapsed(weight)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return path
