"""The typed metrics registry: counters, gauges, histograms.

One registry API replaces the ad-hoc counter dicts that grew in
``service/server.py``, ``engine/trace_cache.py`` and ``cache/stats.py``:
a metric is created once (get-or-create by registered name), mutated
through a typed handle, and exposed in two spellings of one snapshot —

* the versioned JSON payload (``schema: "metrics/v1"``) that
  ``GET /v1/metrics`` serves, and
* a Prometheus-style text exposition (``GET /v1/metrics?format=prom``).

Metric names must be well-formed snake_case identifiers
(:func:`repro.obs.names.is_metric_name`); in-repo call sites must
additionally name only catalog members — the OBS001 lint rule enforces
that statically.  Histograms use **fixed** bucket boundaries chosen at
creation, never adapted at runtime, so two runs of the same workload
bucket identically.

Thread-safe: one lock per registry guards creation and the snapshot;
per-metric mutation uses the same lock via the handles.  All of this is
observational — nothing here feeds result payloads or result keys.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.names import is_metric_name

#: Schema tag of the versioned ``/v1/metrics`` payload.
METRICS_SCHEMA = "metrics/v1"

#: Default histogram buckets for operation latencies, in seconds.
#: Fixed boundaries — identical runs bucket identically.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

Number = Union[int, float]


def _check_name(name: str) -> str:
    if not is_metric_name(name):
        raise ValueError(
            f"invalid metric name {name!r}: metric names are snake_case "
            "identifiers ([a-z][a-z0-9_]*)"
        )
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "", _lock=None) -> None:
        self.name = _check_name(name)
        self.help = help
        self._value = 0
        self._lock = _lock if _lock is not None else threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, object]:
        """The metric's ``metrics/v1`` entry."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "", _lock=None) -> None:
        self.name = _check_name(name)
        self.help = help
        self._value: Number = 0
        self._lock = _lock if _lock is not None else threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: Number) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, object]:
        """The metric's ``metrics/v1`` entry."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution over fixed, creation-time bucket boundaries.

    ``buckets`` are upper bounds (inclusive, ascending); an implicit
    ``+Inf`` bucket catches the rest.  Counts are exposed cumulatively,
    the Prometheus convention, in both exposition formats.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        help: str = "",
        _lock=None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(
            later <= earlier for later, earlier in zip(bounds[1:], bounds)
        ):
            raise ValueError(
                "histogram buckets must be non-empty and strictly ascending"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # [+Inf] last
        self._sum = 0.0
        self._count = 0
        self._lock = _lock if _lock is not None else threading.Lock()

    def observe(self, value: Number) -> None:
        """Record one observation."""
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(upper_bound_label, cumulative_count)`` per bucket, ending
        with ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        labels = [_bound_label(bound) for bound in self.buckets] + ["+Inf"]
        running = 0
        out = []
        for label, count in zip(labels, counts):
            running += count
            out.append((label, running))
        return out

    def sample(self) -> Dict[str, object]:
        """The metric's ``metrics/v1`` entry (cumulative buckets)."""
        return {
            "type": "histogram",
            "buckets": [
                {"le": label, "count": count}
                for label, count in self.cumulative()
            ],
            "count": self.count,
            "sum": self.sum,
        }


def _bound_label(bound: float) -> str:
    """A stable spelling for a bucket bound (``0.05``, not ``5e-02``)."""
    text = f"{bound:.6f}".rstrip("0").rstrip(".")
    return text if text else "0"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    One instance per scope: :func:`repro.obs.registry` holds the
    process-global one the engine records into; the service owns a
    per-service instance so embedded test services never share state.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, _lock=self._lock, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named ``name``, created on first use."""
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge named ``name``, created on first use."""
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """The histogram named ``name``, created on first use.  Buckets
        are fixed at creation; later calls must not disagree."""
        metric = self._get_or_create(name, Histogram, buckets=buckets, help=help)
        if tuple(float(b) for b in buckets) != metric.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.buckets}"
            )
        return metric

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def samples(self) -> Dict[str, Dict[str, object]]:
        """Every metric's ``metrics/v1`` entry, name-sorted."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.sample() for name, metric in metrics}

    def reset(self) -> None:
        """Drop every metric (tests)."""
        with self._lock:
            self._metrics.clear()


# Exposition ------------------------------------------------------------
def metrics_payload(
    samples: Dict[str, Dict[str, object]]
) -> Dict[str, object]:
    """Wrap per-metric entries as the versioned ``metrics/v1`` payload."""
    return {
        "schema": METRICS_SCHEMA,
        "metrics": {name: samples[name] for name in sorted(samples)},
    }


def _prom_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if value is None:
        return "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def prometheus_text(
    samples: Dict[str, Dict[str, object]], namespace: str = "repro"
) -> str:
    """Render per-metric entries as Prometheus text exposition format.

    Counters and gauges become single samples; histograms expand into
    the conventional ``_bucket``/``_sum``/``_count`` series.  Output is
    name-sorted, so identical snapshots render identical bytes.
    """
    lines: List[str] = []
    for name in sorted(samples):
        entry = samples[name]
        kind = entry.get("type", "gauge")
        full = f"{namespace}_{name}" if namespace else name
        lines.append(f"# TYPE {full} {kind}")
        if kind == "histogram":
            for bucket in entry.get("buckets", ()):
                lines.append(
                    f'{full}_bucket{{le="{bucket["le"]}"}} '
                    f'{_prom_value(bucket["count"])}'
                )
            lines.append(f"{full}_sum {_prom_value(entry.get('sum', 0.0))}")
            lines.append(f"{full}_count {_prom_value(entry.get('count', 0))}")
        else:
            lines.append(f"{full} {_prom_value(entry.get('value'))}")
    return "\n".join(lines) + "\n"
