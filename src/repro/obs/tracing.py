"""Structured tracing: lightweight, deterministic, DET003-safe spans.

A span covers one unit of observable work — an engine cell, a
trace-cache resolution, a checkpoint record write, a worker job
attempt, a served HTTP request — and records its parentage, timing and
attributes as one line of canonical JSONL.

Design constraints, in order:

* **Determinism of identity.**  Span ids are sha256 digests over
  ``(parent id, span name, span key)`` — no wall clock, no ``uuid``, no
  process ids.  A span given a content-derived key (a cell's field
  tuple, a job's result key) therefore has the *same id in every run
  and every process*, which is what lets the test suite compare the
  span set of a ``--jobs 4`` run against a ``--jobs 1`` run.  Unkeyed
  spans fall back to an arrival ordinal, deterministic within one
  process.
* **Monotonic clocks only.**  Timing fields come from
  ``time.perf_counter`` relative to the tracer's epoch; DET003 (no wall
  clock in sim code) holds with tracing enabled.
* **Zero cost when off.**  :func:`span` resolves the active tracer the
  same way the fault plan resolves (:mod:`repro.faults.sites`): a
  module global, lazily read from ``REPRO_OBS_TRACE`` so pool workers
  and service children inherit enablement from the environment.  With
  no tracer installed the context manager is a shared no-op singleton.
* **Multi-process safe output.**  Spans buffer per process and flush
  whenever a root span closes, as one ``write()`` of whole lines to the
  file opened in append mode — concurrent writers interleave at line
  granularity, never inside a line.

The JSONL spelling is the repo's canonical single-line form
(:func:`repro.experiments.render.dumps_line`): sorted keys, one span
per line.  Identity fields (``span_id``, ``parent_id``, ``name``,
``key``) are deterministic; timing fields (``start_us``,
``duration_us``) are measurements and vary run to run.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from typing import Dict, List, Optional

#: Environment variable naming the JSONL file spans are appended to.
#: Setting it (``run --trace-out`` does) enables tracing in this
#: process and every child it spawns.
ENV_VAR = "REPRO_OBS_TRACE"

#: Schema tag stamped on every span line.
SPAN_SCHEMA = "repro.span/1"


def span_id(name: str, key: str, parent_id: Optional[str]) -> str:
    """Deterministic span identity: sha256 over parentage, name, key."""
    material = f"span|{parent_id or ''}|{name}|{key}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class Span:
    """One open (then closed) span.  Mutate ``attrs`` freely while the
    span is open; add point-in-time events with :meth:`add_event`."""

    __slots__ = (
        "name", "key", "span_id", "parent_id", "attrs", "events",
        "start_us", "duration_us", "_children",
    )

    def __init__(
        self,
        name: str,
        key: str,
        parent_id: Optional[str],
        start_us: int,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.key = key
        self.span_id = span_id(name, key, parent_id)
        self.parent_id = parent_id
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.events: List[Dict[str, object]] = []
        self.start_us = start_us
        self.duration_us = 0
        self._children = 0

    def add_event(self, name: str, **fields: object) -> None:
        """Attach a point-in-time event to this span."""
        event: Dict[str, object] = {"name": name}
        event.update(fields)
        self.events.append(event)

    def record(self) -> Dict[str, object]:
        """The span's JSONL record (plain JSON types only)."""
        return {
            "schema": SPAN_SCHEMA,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "key": self.key,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "attrs": self.attrs,
            "events": self.events,
        }


class _NullSpanContext:
    """The shared do-nothing context :func:`span` returns when tracing
    is off; yields ``None`` so call sites can guard attr updates."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager binding one span to the tracer's thread stack."""

    __slots__ = ("_tracer", "_span", "_started")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._started = 0.0

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._started = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._started
        self._span.duration_us = int(elapsed * 1_000_000)
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Per-process span collector appending canonical JSONL to one file.

    Thread-safe: each thread keeps its own span stack (nesting is a
    per-thread notion); the output buffer is shared and flushed under a
    lock whenever a thread's root span closes.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._buffer: List[str] = []
        self._root_ordinal = 0
        self._epoch = time.perf_counter()
        self.spans_recorded = 0

    # Stack plumbing ----------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _now_us(self) -> int:
        return int((time.perf_counter() - self._epoch) * 1_000_000)

    def span(
        self,
        name: str,
        key: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> _SpanContext:
        """Open a child of the current span (or a root span).

        ``key`` should be content-derived (cell fields, result keys)
        wherever the span must carry the same id across runs and
        processes; unkeyed spans get an arrival ordinal.
        """
        parent = self.current()
        parent_id = parent.span_id if parent is not None else None
        if key is None:
            if parent is not None:
                parent._children += 1
                key = f"#{parent._children}"
            else:
                with self._lock:
                    self._root_ordinal += 1
                    key = f"#{self._root_ordinal}"
        span = Span(name, key, parent_id, self._now_us(), attrs)
        return _SpanContext(self, span)

    def event(self, name: str, **fields: object) -> None:
        """Attach an event to the innermost open span (no-op when no
        span is open on this thread)."""
        current = self.current()
        if current is not None:
            current.add_event(name, **fields)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        line = _render_line(span.record())
        with self._lock:
            self._buffer.append(line)
            self.spans_recorded += 1
        if not stack:
            self.flush()

    # Output ------------------------------------------------------------
    def flush(self) -> None:
        """Append every buffered span line to the file in one write."""
        with self._lock:
            if not self._buffer:
                return
            chunk = "".join(self._buffer)
            self._buffer = []
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(chunk)


def _render_line(record: Dict[str, object]) -> str:
    # Imported lazily: render pulls in the experiment stack, which the
    # rare flush path may pay for but module import must not.
    from repro.experiments.render import dumps_line

    return dumps_line(record)


# The active tracer -----------------------------------------------------
_UNRESOLVED = object()
_active = _UNRESOLVED


def install(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` (or ``None``) as this process's tracer."""
    global _active
    _active = tracer


def reset() -> None:
    """Forget the active tracer; the next :func:`active` re-reads
    ``REPRO_OBS_TRACE``.  Test plumbing."""
    global _active
    _active = _UNRESOLVED


def active() -> Optional[Tracer]:
    """The process-wide tracer, resolved lazily from ``REPRO_OBS_TRACE``
    on first use (child processes therefore inherit enablement)."""
    global _active
    if _active is _UNRESOLVED:
        path = os.environ.get(ENV_VAR, "").strip()
        _active = Tracer(path) if path else None
    return _active


def span(
    name: str,
    key: Optional[str] = None,
    attrs: Optional[Dict[str, object]] = None,
):
    """Open a span on the active tracer; a shared no-op context (which
    yields ``None``) when tracing is off."""
    tracer = active()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, key, attrs)


def event(name: str, **fields: object) -> None:
    """Attach an event to the current span of the active tracer, if
    any.  Free when tracing is off."""
    tracer = active()
    if tracer is not None:
        tracer.event(name, **fields)
