"""``repro.obs`` — the zero-dependency observability layer.

Three pillars, all observational (they watch the system; they never
feed results, result keys, or any persisted payload):

* **metrics** (:mod:`repro.obs.metrics`) — a typed registry of
  counters, gauges and fixed-bucket histograms with two expositions:
  the versioned ``metrics/v1`` JSON payload and Prometheus-style text;
* **tracing** (:mod:`repro.obs.tracing`) — deterministic, parent-linked
  spans around engine cells, trace-cache lookups, checkpoint records,
  worker job attempts and served requests, dumped as canonical JSONL
  (``run --trace-out`` / ``REPRO_OBS_TRACE``);
* **profiling** (:mod:`repro.obs.profiling`) — per-cell reference
  throughput and flamegraph-compatible collapsed stacks
  (``repro-fvc profile-run``).

Enablement mirrors the sanitizer (:mod:`repro.analysis.sanitize`):
``REPRO_OBS=1`` (or :func:`enable`) arms metric recording on the hot
engine paths; ``REPRO_OBS_TRACE=<file>`` independently arms span
collection.  Both travel through the environment so pool workers and
service children inherit them.  With both off — the default for bare
library use — every experiment output and result-store key is
byte-identical to an observability-free build; a regression test
enforces exactly that.
"""

from __future__ import annotations

import os

from repro.obs.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_payload,
    prometheus_text,
)
from repro.obs.names import METRIC_NAMES, is_metric_name
from repro.obs.tracing import SPAN_SCHEMA, Tracer, event, span

#: Environment flag arming metric recording (``1``/``true``/``yes``/``on``).
ENV_VAR = "REPRO_OBS"

_TRUE_VALUES = ("1", "true", "yes", "on")

#: The process-global registry the engine records into.
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def enabled() -> bool:
    """Whether metric recording is armed in this process."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUE_VALUES


def enable() -> None:
    """Arm metric recording for this process and every child it spawns
    (worker pools inherit the environment)."""
    os.environ[ENV_VAR] = "1"


def disable() -> None:
    """Disarm metric recording for this process."""
    os.environ.pop(ENV_VAR, None)


__all__ = [
    "METRICS_SCHEMA",
    "METRIC_NAMES",
    "SPAN_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "event",
    "is_metric_name",
    "metrics_payload",
    "prometheus_text",
    "registry",
    "span",
]
