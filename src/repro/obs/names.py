"""The registered metric-name catalog.

Every metric the codebase records or exposes is named here, once.  The
catalog is what makes ``/v1/metrics`` a contract rather than a grab-bag:
names are stable snake_case identifiers, the OBS001 lint rule rejects
any registry call whose name is not listed below, and the docs table in
``docs/OBSERVABILITY.md`` is generated from the same set.

Naming conventions (enforced by :func:`is_metric_name` plus review):

* snake_case only — ``^[a-z][a-z0-9_]*$``;
* monotonically increasing counts end in ``_total``;
* sizes are bytes and end in ``_bytes`` (never KB, never entry counts
  pretending to be sizes);
* durations are seconds and end in ``_seconds``.

The service's legacy flat keys (``jobs_retries`` and friends) predated
the catalog, were aliased for exactly one release, and are now retired:
``/v1/metrics`` serves only the structured ``metrics/v1`` entries named
here (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import re
from typing import FrozenSet

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Maximum metric-name length (prometheus-friendly, keeps tables sane).
MAX_NAME_LENGTH = 64


def is_metric_name(name: str) -> bool:
    """Whether ``name`` is a well-formed snake_case metric identifier."""
    return (
        isinstance(name, str)
        and len(name) <= MAX_NAME_LENGTH
        and _NAME_RE.match(name) is not None
    )


#: Every registered metric, grouped by subsystem.  OBS001 checks that
#: registry calls name only members of this set.
METRIC_NAMES: FrozenSet[str] = frozenset(
    {
        # Engine: simulation cells (repro.engine.cells).
        "engine_cells_total",
        "engine_cell_references_total",
        "engine_cell_seconds",
        # Engine: content-addressed trace cache (repro.engine.trace_cache).
        "trace_cache_memory_hits_total",
        "trace_cache_disk_hits_total",
        "trace_cache_synthesised_total",
        "trace_cache_stores_total",
        "trace_cache_corrupt_quarantined_total",
        # Engine: checkpoint/resume (repro.engine.checkpoint).
        "checkpoint_restored_total",
        "checkpoint_saved_total",
        "checkpoint_corrupt_quarantined_total",
        # Kernels: backend dispatch (repro.kernels.dispatch).
        "kernel_replays_total",
        "kernel_declines_total",
        "kernel_replay_seconds",
        # Faults: injected-fault observability (repro.faults.sites).
        "faults_injected_total",
        # Service: job lifecycle (repro.service.jobs).
        "jobs_submitted_total",
        "jobs_completed_total",
        "jobs_failed_total",
        "jobs_cancelled_total",
        "jobs_retried_total",
        "jobs_shed_total",
        "jobs_queued",
        "jobs_running",
        "queue_depth",
        "max_queue_depth",
        # Service: worker pool (repro.service.workers).
        "worker_attempts_total",
        # Service: result store (repro.service.result_store).
        "result_store_hits_total",
        "result_store_misses_total",
        "result_store_stores_total",
        "result_store_admission_rejects_total",
        "result_store_evictions_total",
        "result_store_corrupt_quarantined_total",
        "result_store_entries",
        "result_store_capacity",
        "result_store_size_bytes",
        # Service: write-ahead journal (repro.service.journal).
        "journal_records_total",
        "journal_append_failures_total",
        "journal_snapshots_total",
        "journal_compactions_total",
        "journal_replayed_records_total",
        "journal_torn_tail_truncated_total",
        "journal_recovered_jobs_total",
        "journal_size_bytes",
        "journal_quota_bytes",
        "storage_exhausted",
        # Service: HTTP front end (repro.service.server).
        "server_requests_total",
        "server_request_seconds",
        "workers",
        "degraded",
        "uptime_seconds",
        # Service: sweep board (repro.service.sweeps).
        "sweeps_submitted_total",
        "sweeps_completed_total",
        "sweeps_failed_total",
        "sweep_cells_expanded_total",
        "sweep_cells_reused_total",
        "sweeps_tracked",
        # Cluster: coordinator-side fabric state (repro.cluster).
        "cluster_workers",
        "cluster_workers_registered_total",
        "cluster_workers_lost_total",
        "cluster_heartbeats_total",
        "cluster_leases_issued_total",
        "cluster_leases_completed_total",
        "cluster_leases_expired_total",
        "cluster_leases_reissued_total",
        "cluster_cells_stolen_total",
        "cluster_results_stale_total",
        "cluster_local_fallback_total",
        "cluster_trace_serves_total",
        "cluster_pending_cells",
        "cluster_leased_cells",
        # Cluster: worker-side loop (repro.cluster.worker).
        "cluster_cells_total",
        "cluster_trace_fetches_total",
    }
)
