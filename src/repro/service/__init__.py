"""Simulation-as-a-service: job server, result store, client.

The serving layer over the :mod:`repro.engine` compute substrate.  Five
cooperating pieces (see ``docs/SERVICE.md`` for the full protocol):

* :mod:`repro.service.api` — job specs, content-addressed result keys,
  JSON payloads, and the worker-side executor;
* :mod:`repro.service.jobs` — job records, lifecycle, the queue;
* :mod:`repro.service.workers` — process-isolated execution with
  timeouts, cancellation and bounded crash retries;
* :mod:`repro.service.result_store` — the persistent result store with
  TinyLFU-style frequency admission;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  stdlib HTTP JSON API and its thin client;
* :mod:`repro.service.resilience` — client-side degradation: seeded
  jittered retries and a circuit breaker (server-side shedding lives
  in the queue/server pair).

CLI: ``repro-fvc serve`` runs a server; ``repro-fvc submit`` /
``status`` / ``fetch`` talk to one.
"""

from repro.service.api import (
    SpecError,
    cell_payload,
    execute_spec,
    normalise_spec,
    payload_bytes,
    result_key,
)
from repro.service.client import (
    JobFailed,
    ServiceClient,
    ServiceError,
    default_service_url,
)
from repro.service.jobs import Job, JobQueue, QueueFullError
from repro.service.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
)
from repro.service.result_store import (
    FrequencySketch,
    ResultStore,
    default_store_dir,
)
from repro.service.server import ReproService, ServiceConfig, serve
from repro.service.workers import WorkerPool

__all__ = [
    "SpecError",
    "normalise_spec",
    "result_key",
    "cell_payload",
    "payload_bytes",
    "execute_spec",
    "Job",
    "JobQueue",
    "QueueFullError",
    "WorkerPool",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryPolicy",
    "FrequencySketch",
    "ResultStore",
    "default_store_dir",
    "ReproService",
    "ServiceConfig",
    "serve",
    "ServiceClient",
    "ServiceError",
    "JobFailed",
    "default_service_url",
]
