"""The worker pool: process-isolated job execution.

Each worker is a thread that claims jobs from the
:class:`~repro.service.jobs.JobQueue` and runs every attempt in a fresh
child **process**.  Process isolation is what buys the service its
hard guarantees:

* **timeouts** — a runaway simulation is ``terminate()``-d at the
  deadline instead of wedging a thread forever;
* **cancellation** — ``DELETE /v1/jobs/<id>`` kills the child
  mid-simulation; the parent's state stays consistent;
* **crash containment** — a segfaulting or ``os._exit``-ing workload
  takes down only its child; the worker retries with exponential
  backoff, up to a bound, before declaring the job failed.

The child streams ``("progress", done, total)`` messages over a pipe —
fed by the engine's cell-boundary progress hook — and ends with exactly
one ``("done", payload)`` or ``("error", message)`` verdict.  A pipe
that closes without a verdict *is* the crash signal.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.service import jobs as jobstates
from repro.service.jobs import Job, JobQueue

#: ``run_spec(spec, progress)`` → payload dict; executed in the child.
SpecRunner = Callable[[Dict, Callable[[int, int], None]], Dict]

#: ``on_done(job, payload)`` → whether the result store admitted it.
DoneHook = Callable[[Job, Dict], Optional[bool]]


def _mp_context():
    # Fork keeps worker start cheap and lets tests inject local
    # runners; fall back to the platform default where unavailable.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _child_entry(conn, run_spec: SpecRunner, spec: Dict, fault=None) -> None:
    """Child-process main: run the spec, stream progress, send the
    verdict, close the pipe.

    ``fault`` is a parent-decided ``(clause, ordinal)`` pair from the
    ``worker.child`` injection site (see
    :func:`repro.faults.sites.decide_child_fault`); ``crash`` clauses
    hard-exit here, exercising the pool's crash-containment path.
    """
    try:
        if fault is not None:
            from repro.faults.sites import apply_child_fault

            apply_child_fault(fault)

        def report(done: int, total: int) -> None:
            conn.send(("progress", done, total))

        payload = run_spec(spec, report)
        conn.send(("done", payload))
    except BaseException as exc:  # noqa: BLE001 - verdict, not handling
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class WorkerPool:
    """``workers`` threads executing queue jobs in child processes."""

    def __init__(
        self,
        queue: JobQueue,
        run_spec: SpecRunner,
        workers: int = 2,
        job_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        on_done: Optional[DoneHook] = None,
        registry=None,
    ) -> None:
        if workers <= 0:
            raise ValueError("worker pool needs at least one worker")
        self.queue = queue
        self.run_spec = run_spec
        self.workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.on_done = on_done
        #: Optional :class:`repro.obs.MetricsRegistry` the pool reports
        #: attempt counts into (the owning service passes its own).
        self.registry = registry
        self._ctx = _mp_context()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = threading.Event()

    # Lifecycle ---------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return self
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the pool.

        ``drain=True`` (the SIGTERM path) lets workers finish every job
        already accepted — running *and* queued — before exiting;
        ``drain=False`` abandons the queue and cancels running jobs.
        """
        if drain:
            self._draining.set()
        else:
            for job in self.queue.jobs():
                if job.state in (jobstates.QUEUED, jobstates.RUNNING):
                    job.cancel_event.set()
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        if not drain:
            # Resolve the abandoned queue: every remaining pending job
            # carries a set cancel_event, so claiming it marks it
            # cancelled rather than running (next_job returns None for
            # each, hence the depth-based loop condition).
            while self.queue.queue_depth(lane=jobstates.LOCAL_LANE):
                self.queue.next_job(timeout=0.01)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the queue to empty and every worker to go idle."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.queue.queue_depth() or self.queue.running_count():
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.02)
        return True

    # Worker loop -------------------------------------------------------
    def _loop(self) -> None:
        while True:
            if self._stop.is_set():
                if not self._draining.is_set():
                    return
                if not self.queue.queue_depth(lane=jobstates.LOCAL_LANE):
                    return
            job = self.queue.next_job(timeout=0.1)
            if job is not None:
                self._execute(job)

    def _execute(self, job: Job) -> None:
        attempt = 0
        # Crash retries must not multiply a job's latency unboundedly:
        # the cumulative backoff a job may spend between attempts is
        # capped by its own timeout, so worst case (every attempt runs
        # to the deadline and crashes) total time stays within
        # (max_retries + 1) * job_timeout + job_timeout of backoff.
        backoff_budget = self.job_timeout
        backoff_spent = 0.0
        from repro.obs import tracing

        while True:
            attempt += 1
            self.queue.note_attempt(job, attempt)
            if self.registry is not None:
                self.registry.counter("worker_attempts_total").inc()
            with tracing.span(
                "worker.job",
                key=f"{job.result_key}#{attempt}",
                attrs={"job_id": job.id, "attempt": attempt},
            ) as span:
                kind, value = self._attempt(job)
                if span is not None:
                    span.attrs["outcome"] = kind
            if kind == "done":
                stored = None
                if self.on_done is not None:
                    stored = self.on_done(job, value)
                self.queue.finish(
                    job, jobstates.DONE, payload=value, stored=stored
                )
                return
            if kind == "cancelled":
                self.queue.finish(job, jobstates.CANCELLED)
                return
            if kind == "error" or kind == "timeout":
                # Deterministic failures don't improve on retry.
                self.queue.finish(job, jobstates.FAILED, error=value)
                return
            # Crash: retry with exponential backoff, bounded in both
            # attempt count and total backoff time.
            if attempt > self.max_retries:
                self.queue.finish(
                    job,
                    jobstates.FAILED,
                    error=f"{value} (gave up after {attempt} attempts)",
                )
                return
            backoff = self.retry_backoff * (2 ** (attempt - 1))
            if backoff_budget is not None:
                remaining = backoff_budget - backoff_spent
                if remaining <= 0:
                    self.queue.finish(
                        job,
                        jobstates.FAILED,
                        error=(
                            f"{value} (retry budget of "
                            f"{backoff_budget:.1f}s exhausted after "
                            f"{attempt} attempts)"
                        ),
                    )
                    return
                backoff = min(backoff, remaining)
            backoff_spent += backoff
            self.queue.note_retry()
            # An event wait, so cancellation interrupts the backoff.
            if job.cancel_event.wait(backoff):
                self.queue.finish(job, jobstates.CANCELLED)
                return

    # One attempt -------------------------------------------------------
    def _kill(self, process) -> None:
        process.terminate()
        process.join(1.0)
        if process.is_alive():  # pragma: no cover - terminate sufficed
            process.kill()
            process.join(1.0)

    def _attempt(self, job: Job) -> Tuple[str, Optional[object]]:
        """Run one child process to a verdict.

        Returns one of ``("done", payload)``, ``("error", message)``,
        ``("timeout", message)``, ``("cancelled", None)`` or
        ``("crash", message)`` — only the last is retryable.
        """
        from repro.faults.sites import decide_child_fault

        # The parent decides whether this attempt is faulted, so the
        # ``worker.child`` ordinal counts *attempts* across all jobs —
        # ``@1`` faults the first attempt and lets the retry succeed.
        fault = decide_child_fault()
        reader, writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_child_entry,
            args=(writer, self.run_spec, job.spec, fault),
            daemon=True,
        )
        started = time.monotonic()
        process.start()
        writer.close()
        deadline = (
            None if self.job_timeout is None else started + self.job_timeout
        )
        verdict: Optional[Tuple[str, Optional[object]]] = None
        try:
            while verdict is None:
                if job.cancel_event.is_set():
                    self._kill(process)
                    return ("cancelled", None)
                if deadline is not None and time.monotonic() > deadline:
                    self._kill(process)
                    return (
                        "timeout",
                        f"timed out after {self.job_timeout:.1f}s",
                    )
                if reader.poll(0.05):
                    try:
                        message = reader.recv()
                    except (EOFError, OSError):
                        break
                    if message[0] == "progress":
                        self.queue.note_progress(job, message[1], message[2])
                    else:
                        verdict = (message[0], message[1])
                elif not process.is_alive():
                    # Dead child; drain any verdict raced into the pipe.
                    if not reader.poll(0.01):
                        break
        finally:
            reader.close()
            if verdict is not None or not process.is_alive():
                process.join(1.0)
            else:  # pragma: no cover - belt and braces
                self._kill(process)
        if verdict is not None:
            return verdict
        code = process.exitcode
        return ("crash", f"worker process died (exit code {code})")
