"""The stdlib HTTP JSON API server: simulation as a service.

Endpoints (all JSON, all under ``/v1``):

================================  ============================================
``POST /v1/jobs``                 submit a job spec; answered from the result
                                  store when the key is resident, deduplicated
                                  against in-flight jobs otherwise
``GET /v1/jobs/<id>``             job status, progress, and (when done) the
                                  result
``DELETE /v1/jobs/<id>``          request cancellation
``GET /v1/jobs``                  every known job, submission order
``GET /v1/results/<key>``         the stored canonical payload bytes
``GET /v1/metrics``               versioned ``metrics/v1`` snapshot only (the
                                  pre-catalog flat keys are retired);
                                  ``?format=prom`` renders Prometheus text
``GET /v1/healthz``               liveness probe + degradation state
``POST /v1/workers``              register a cluster worker
``POST /v1/workers/<id>/heartbeat``  refresh a worker's liveness clock
``DELETE /v1/workers/<id>``       deregister (graceful worker goodbye)
``GET /v1/workers``               fabric topology + queue state
``POST /v1/cells/lease``          pull cell leases for a worker
``POST /v1/cells/<id>/result``    push one computed cell payload
``GET /v1/traces/<wl>/<input>``   enveloped trace-cache entry bytes
``POST /v1/sweeps``               submit a ``sweep/v1`` spec; expands into
                                  cell jobs through the queue (idempotent by
                                  content address)
``GET /v1/sweeps``                every tracked sweep, submission order
``GET /v1/sweeps/<id>``           one sweep's fan-out state and, when done,
                                  its assembled ``sweep.result/1`` payload
================================  ============================================

The server is a :class:`http.server.ThreadingHTTPServer` — requests are
cheap bookkeeping; all simulation happens in the worker pool's child
processes, or — when cluster workers are registered — in the remote
worker processes the :class:`~repro.cluster.ClusterScheduler` leases
cells to (``docs/CLUSTER.md``).  ``repro-fvc serve`` wires
SIGTERM/SIGINT to a graceful drain: stop accepting, finish every
accepted job, exit.

**Overload contract**: the pending queue is bounded
(``max_queue_depth``).  A submission that would grow the backlog past
the bound is answered ``503`` with a ``Retry-After`` header — new work
is rejected loudly; work already accepted is never dropped.  While the
queue sits at its bound, ``/v1/healthz`` reports ``"degraded"`` (still
HTTP 200 — the process is alive) and ``/v1/metrics`` exposes the shed
count, so load balancers and clients can back off before the cliff.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.common.errors import FaultInjected, ReproError, StorageExhausted
from repro.experiments.render import dumps_line
from repro.obs import (
    METRICS_SCHEMA,
    MetricsRegistry,
    prometheus_text,
    tracing,
)
from repro.service.api import (
    execute_spec,
    normalise_spec,
    payload_bytes,
    result_key,
)
from repro.service.jobs import JobQueue, QueueFullError
from repro.service.result_store import (
    DEFAULT_CAPACITY,
    ResultStore,
    default_store_dir,
)
from repro.service.workers import WorkerPool


@dataclass
class ServiceConfig:
    """Everything ``repro-fvc serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8031
    workers: int = 2
    job_timeout: Optional[float] = 600.0
    max_retries: int = 2
    retry_backoff: float = 0.5
    store_dir: Optional[Path] = None
    store_capacity: int = DEFAULT_CAPACITY
    quiet: bool = True
    #: Pending-queue bound; submissions beyond it are shed with 503.
    #: ``None`` = unbounded (the pre-degradation behaviour).
    max_queue_depth: Optional[int] = 256
    #: Floor for the 503 ``Retry-After`` hint, seconds.
    retry_after_floor: float = 1.0
    #: Cluster: how long a granted cell lease stays valid before it is
    #: revoked and re-issued (worker-loss recovery latency).  Mirrors
    #: :data:`repro.cluster.protocol.DEFAULT_LEASE_SECONDS`.
    cluster_lease_timeout: float = 30.0
    #: Cluster: how long a silent worker stays registered.  Mirrors
    #: :data:`repro.cluster.protocol.DEFAULT_WORKER_TTL_SECONDS`.
    cluster_worker_ttl: float = 10.0
    #: Cluster: coordinator threads driving ``cluster``-lane jobs.
    cluster_dispatchers: int = 2
    #: Control-plane durability: directory for the write-ahead journal
    #: and its snapshots (``--state-dir``).  ``None`` disables the
    #: journal — the pre-durability behaviour, and what embedded test
    #: services get by default.
    state_dir: Optional[Path] = None
    #: Byte budget over journal + snapshot (``--state-quota-bytes``).
    #: Appends past it shed new submissions with ``503`` instead of
    #: filling the disk.  ``None`` = unbounded.
    state_quota_bytes: Optional[int] = None
    #: Records between automatic snapshot+compaction passes.
    journal_snapshot_every: int = 512
    #: fsync journal appends (disable only in tests).
    journal_fsync: bool = True


class ReproService:
    """The assembled service: result store + job queue + worker pool +
    HTTP front end.  ``start()``/``stop()`` make it embeddable (tests
    run it in-process on an ephemeral port); :func:`serve` is the
    blocking CLI entry."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        store_dir = self.config.store_dir or default_store_dir()
        self.store = ResultStore(
            store_dir, capacity=self.config.store_capacity
        )
        #: Optional write-ahead journal (``--state-dir``): the durable
        #: record every lifecycle transition lands in before the
        #: operation is acknowledged, and what :meth:`_recover` rebuilds
        #: the control plane from after a crash (docs/ROBUSTNESS.md).
        self.journal = None
        if self.config.state_dir is not None:
            from repro.service.journal import Journal

            self.journal = Journal(
                self.config.state_dir,
                quota_bytes=self.config.state_quota_bytes,
                fsync=self.config.journal_fsync,
                snapshot_every=self.config.journal_snapshot_every,
            )
        self.jobs = JobQueue(
            max_queue_depth=self.config.max_queue_depth,
            journal=self.journal,
        )
        #: Per-service registry (request counters/latency, worker
        #: attempts) — per-instance so embedded test services never
        #: share metric state.
        self.registry = MetricsRegistry()
        self.pool = WorkerPool(
            self.jobs,
            run_spec=execute_spec,
            workers=self.config.workers,
            job_timeout=self.config.job_timeout,
            max_retries=self.config.max_retries,
            retry_backoff=self.config.retry_backoff,
            on_done=self._store_result,
            registry=self.registry,
        )
        # Imported lazily: repro.cluster leans on repro.service.api, so
        # a module-level import here would be circular.
        from repro.cluster.coordinator import ClusterExecutor, ClusterScheduler

        #: Coordinator-side cluster fabric: worker registry, lease
        #: table, pending-cell queue (docs/CLUSTER.md).
        self.cluster = ClusterScheduler(
            store=self.store,
            registry=self.registry,
            lease_timeout=self.config.cluster_lease_timeout,
            worker_ttl=self.config.cluster_worker_ttl,
            journal=self.journal,
        )
        self.cluster_exec = ClusterExecutor(
            self.jobs,
            self.cluster,
            on_done=self._store_result,
            dispatchers=self.config.cluster_dispatchers,
            registry=self.registry,
        )
        # Imported lazily for symmetry with the cluster wiring:
        # repro.service.sweeps leans on repro.service.api.
        from repro.service.sweeps import SweepBoard

        #: Sweep fan-out/assembly over the job queue (``/v1/sweeps``).
        self.sweeps = SweepBoard(self)
        self.started_at = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._maint_stop = threading.Event()
        self._maint_thread: Optional[threading.Thread] = None
        #: Recovery report from the last startup replay (diagnostics).
        self.recovery: Optional[Dict] = None
        self._recover()

    # Durability --------------------------------------------------------
    def _gather_state(self) -> Dict:
        """Everything a journal snapshot captures (job queue +
        scheduler); called by the journal with no locks held."""
        return {
            "queue": self.jobs.snapshot_state(),
            "sched": self.cluster.snapshot_state(),
        }

    def _recover(self) -> None:
        """Rebuild the control plane from journal + snapshot (startup).

        Runs before any worker thread or HTTP socket exists, so no
        locks are contended.  Done jobs are rehydrated from the result
        store (zero recomputation); jobs that were queued or running
        re-enter the queue at their recorded attempt count; every
        pre-crash lease is implicitly dead (the scheduler starts with
        an empty lease table but serial high-water marks and clock
        epoch restored, so stale pushes are acked stale and TTL math
        stays monotonic).  Pre-crash workers re-attach through their
        heartbeat ``known: false`` re-register loop.
        """
        if self.journal is None:
            return
        from repro.service.journal import recover

        with tracing.span("service.recover"):
            sweep = self.journal.sweep()
            recovered = recover(self.journal)
            # Store reads block (disk + fault point), so done payloads
            # are prefetched here and handed to restore() — never read
            # under the queue lock.
            payloads: Dict[str, Dict] = {}
            for rec in recovered.jobs:
                if rec.state != "done" or rec.result_key in payloads:
                    continue
                blob = self.store.peek(rec.result_key)
                if blob is not None:
                    payloads[rec.result_key] = json.loads(blob)
            restored = self.jobs.restore(recovered, payloads)
            self.cluster.restore(
                worker_serial=recovered.worker_serial,
                lease_serial=recovered.lease_serial,
                epoch=recovered.epoch,
                counters=recovered.sched_counters,
            )
            self.journal.append_safe(
                "recovered",
                jobs=restored,
                replayed=recovered.replayed,
                torn=1 if recovered.torn else 0,
            )
            # Fold the tail into a fresh snapshot so the next crash
            # replays from here, and the swept log stays compact.
            self.journal.snapshot(self._gather_state)
            self.recovery = {
                "jobs": restored,
                "replayed": recovered.replayed,
                "torn": recovered.torn,
                "sweep": sweep,
            }

    def _maintenance_loop(self) -> None:
        while not self._maint_stop.wait(0.5):
            if self.journal is not None and self.journal.snapshot_due():
                self.journal.snapshot(self._gather_state)

    # Wiring ------------------------------------------------------------
    def _store_result(self, job, payload: Dict) -> bool:
        """Worker-pool completion hook: offer the payload for
        result-store residency."""
        return self.store.put(job.result_key, payload_bytes(payload))

    def _pick_lane(self, spec: Dict) -> str:
        """Which lane executes a new job: the ``cluster`` lane when
        live workers are registered and the spec decomposes into cells
        (cell specs always do; experiments when they plan cells), the
        local worker pool otherwise."""
        from repro.service.jobs import CLUSTER_LANE, LOCAL_LANE

        if self.cluster.live_worker_count() == 0:
            return LOCAL_LANE
        if spec["type"] == "cell":
            return CLUSTER_LANE
        if spec["type"] == "experiment":
            from repro.experiments.registry import get_experiment

            experiment = get_experiment(spec["experiment_id"])
            if experiment.plan_cells(spec["fast"]) is not None:
                return CLUSTER_LANE
        return LOCAL_LANE

    def submit(self, raw_spec: object) -> Tuple[Dict, int]:
        """Handle one submission; returns ``(body, http_status)``."""
        spec = normalise_spec(raw_spec)
        key = result_key(spec)
        stored = self.store.get(key)
        if stored is not None:
            job = self.jobs.add_cached(spec, key, json.loads(stored))
            body = job.as_dict()
            body["deduplicated"] = False
            return body, 200
        job, deduplicated = self.jobs.submit(
            spec, key, lane=self._pick_lane(spec)
        )
        body = job.as_dict()
        body["deduplicated"] = deduplicated
        return body, 200 if deduplicated else 202

    def degraded(self) -> bool:
        """Whether the service is shedding: the pending queue sits at
        its depth bound, or the journal cannot durably record new
        work (disk quota / ``ENOSPC``)."""
        if self.journal is not None and self.journal.exhausted:
            return True
        limit = self.jobs.max_queue_depth
        return limit is not None and self.jobs.queue_depth() >= limit

    def retry_after(self) -> int:
        """The ``Retry-After`` hint (whole seconds) for shed
        submissions: how long one queue-slot's worth of work is
        expected to take, given the backlog and worker count, floored
        by the configured minimum."""
        depth = self.jobs.queue_depth()
        workers = max(self.pool.workers, 1)
        estimate = max(self.config.retry_after_floor, depth / workers * 0.1)
        return max(1, int(round(estimate)))

    def healthz(self) -> Dict:
        """The ``/v1/healthz`` body: liveness plus degradation state.

        Always HTTP 200 while the process serves — ``"degraded"`` means
        "alive but shedding new submissions", which load balancers
        should read as *back off*, not *restart me*.
        """
        return {
            "status": "degraded" if self.degraded() else "ok",
            "queue_depth": self.jobs.queue_depth(),
            "max_queue_depth": self.jobs.max_queue_depth,
            "storage_exhausted": bool(
                self.journal is not None and self.journal.exhausted
            ),
        }

    #: Raw stats key → registered counter name (the catalogued
    #: spellings are the only ones ``/v1/metrics`` serves — the old
    #: flat aliases are retired, see ``docs/OBSERVABILITY.md``).
    _JOB_COUNTERS = {
        "submitted": "jobs_submitted_total",
        "completed": "jobs_completed_total",
        "failed": "jobs_failed_total",
        "cancelled": "jobs_cancelled_total",
        "retries": "jobs_retried_total",
        "shed": "jobs_shed_total",
    }
    _STORE_COUNTERS = {
        "hits": "result_store_hits_total",
        "misses": "result_store_misses_total",
        "stores": "result_store_stores_total",
        "admission_rejects": "result_store_admission_rejects_total",
        "evictions": "result_store_evictions_total",
        "corrupt_quarantined": "result_store_corrupt_quarantined_total",
    }
    _JOURNAL_COUNTERS = {
        "records": "journal_records_total",
        "append_failures": "journal_append_failures_total",
        "snapshots": "journal_snapshots_total",
        "compactions": "journal_compactions_total",
        "replayed": "journal_replayed_records_total",
        "torn_truncated": "journal_torn_tail_truncated_total",
        "recovered_jobs": "journal_recovered_jobs_total",
    }

    def metric_samples(self) -> Dict[str, Dict[str, object]]:
        """Every metric as its ``metrics/v1`` entry, under registered
        names: counters end in ``_total``, sizes are bytes
        (``_bytes``), durations are seconds (``_seconds``)."""
        from repro import obs

        jobs = self.jobs.stats()
        store = self.store.stats()
        samples: Dict[str, Dict[str, object]] = {}
        for raw, name in self._JOB_COUNTERS.items():
            samples[name] = {"type": "counter", "value": jobs[raw]}
        for raw, name in self._STORE_COUNTERS.items():
            samples[name] = {"type": "counter", "value": store[raw]}
        limit = self.jobs.max_queue_depth
        gauges = {
            "jobs_queued": jobs["queued"],
            "jobs_running": jobs["running"],
            "queue_depth": jobs["queued"],
            "max_queue_depth": 0 if limit is None else limit,
            "result_store_entries": store["entries"],
            "result_store_capacity": store["capacity"],
            "result_store_size_bytes": store["size_bytes"],
            "workers": self.pool.workers,
            "degraded": 1 if self.degraded() else 0,
            "uptime_seconds": round(time.time() - self.started_at, 3),
        }
        if self.journal is not None:
            journal = self.journal.stats()
            for raw, name in self._JOURNAL_COUNTERS.items():
                samples[name] = {"type": "counter", "value": journal[raw]}
            gauges["journal_size_bytes"] = journal["size_bytes"]
            gauges["journal_quota_bytes"] = journal["quota_bytes"]
            gauges["storage_exhausted"] = journal["exhausted"]
        for name, value in gauges.items():
            samples[name] = {"type": "gauge", "value": value}
        # Cluster fabric state (registrations, leases, steals).
        samples.update(self.cluster.metric_samples())
        # Sweep board state (tracked sweeps).
        samples.update(self.sweeps.metric_samples())
        # Request counters/latency and worker attempts live in the
        # per-service registry; engine metrics (REPRO_OBS=1 in-process
        # runs) in the process-global one.
        samples.update(self.registry.samples())
        samples.update(obs.registry().samples())
        return {name: samples[name] for name in sorted(samples)}

    def metrics(self) -> Dict:
        """The ``/v1/metrics`` body: the versioned ``metrics/v1``
        object, nothing else.  The pre-catalog flat keys
        (``jobs_completed`` and friends) were aliased for exactly one
        release and are retired — consumers read
        ``metrics["<registered name>"]["value"]``."""
        from repro import __version__

        return {
            "schema": METRICS_SCHEMA,
            "version": __version__,
            "metrics": self.metric_samples(),
        }

    # Lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._httpd is None:
            return self.config.port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ReproService":
        """Bind the socket, start workers and the HTTP thread."""
        handler = _make_handler(self, quiet=self.config.quiet)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self.pool.start()
        self.cluster_exec.start()
        if self.journal is not None and self._maint_thread is None:
            self._maint_stop.clear()
            self._maint_thread = threading.Thread(
                target=self._maintenance_loop,
                name="repro-service-journal",
                daemon=True,
            )
            self._maint_thread.start()
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting requests, then stop the pool.

        ``drain=True`` finishes every accepted job first — the SIGTERM
        behaviour; ``drain=False`` cancels whatever is in flight.
        """
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
            self._http_thread = None
        self.cluster_exec.stop(drain=drain, timeout=timeout)
        self.pool.stop(drain=drain, timeout=timeout)
        if self._maint_thread is not None:
            self._maint_stop.set()
            self._maint_thread.join(timeout=5.0)
            self._maint_thread = None
        if self.journal is not None:
            # A parting snapshot makes the next startup's replay a
            # no-op tail; crashes skip this and replay instead.
            self.journal.snapshot(self._gather_state)
            self.journal.close()


def serve(config: Optional[ServiceConfig] = None) -> int:
    """Run a service until SIGTERM/SIGINT, then drain gracefully.

    The blocking entry point behind ``repro-fvc serve``.
    """
    service = ReproService(config)
    stop_requested = threading.Event()

    def _on_signal(signum, _frame):  # pragma: no cover - signal path
        stop_requested.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _on_signal)
    service.start()
    print(
        f"repro-fvc service on {service.url} "
        f"({service.pool.workers} workers, store at {service.store.directory})",
        flush=True,
    )
    if service.journal is not None and service.recovery is not None:
        print(
            f"journal at {service.journal.directory}: recovered "
            f"{service.recovery['jobs']} job(s), replayed "
            f"{service.recovery['replayed']} record(s)",
            flush=True,
        )
    try:
        while not stop_requested.wait(0.2):
            pass
    finally:
        print("draining: finishing accepted jobs ...", flush=True)
        service.stop(drain=True)
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        print("stopped.", flush=True)
    return 0


# HTTP plumbing ---------------------------------------------------------
def _make_handler(service: ReproService, quiet: bool = True):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-fvc-service"

        # Responses ----------------------------------------------------
        def _send(
            self,
            status: int,
            body: bytes,
            content_type: str,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _json(
            self,
            status: int,
            payload: object,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = dumps_line(payload).encode()
            self._send(status, body, "application/json", headers=headers)

        def _error(
            self,
            status: int,
            message: str,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            self._json(status, {"error": message}, headers=headers)

        def _guard(self) -> bool:
            """The ``server.request`` fault point: every handler entry
            consults it; an injected failure answers 500 instead of
            touching any service state."""
            from repro.faults.sites import fault_point

            try:
                fault_point("server.request")
            except (FaultInjected, OSError) as exc:
                self._error(500, f"injected server fault: {exc}")
                return False
            return True

        # Routing ------------------------------------------------------
        def _route(self) -> Tuple[str, ...]:
            path = urlsplit(self.path).path
            return tuple(part for part in path.split("/") if part)

        def _query(self) -> Dict[str, str]:
            parsed = parse_qs(urlsplit(self.path).query)
            return {name: values[-1] for name, values in parsed.items()}

        def _dispatch(self, method: str, handler) -> None:
            """Every request: count it, time it, span it, handle it."""
            started = time.perf_counter()
            service.registry.counter("server_requests_total").inc()
            with tracing.span(
                "server.request",
                attrs={"method": method, "path": self.path},
            ):
                try:
                    handler()
                finally:
                    service.registry.histogram(
                        "server_request_seconds"
                    ).observe(time.perf_counter() - started)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("GET", self._handle_get)

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("POST", self._handle_post)

        def do_DELETE(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("DELETE", self._handle_delete)

        def _handle_get(self) -> None:
            if not self._guard():
                return
            route = self._route()
            if route == ("v1", "healthz"):
                self._json(200, service.healthz())
            elif route == ("v1", "metrics"):
                if self._query().get("format") == "prom":
                    body = prometheus_text(service.metric_samples())
                    self._send(
                        200, body.encode(), "text/plain; version=0.0.4"
                    )
                else:
                    self._json(200, service.metrics())
            elif route == ("v1", "jobs"):
                self._json(
                    200,
                    {
                        "jobs": [
                            job.as_dict(include_result=False)
                            for job in service.jobs.jobs()
                        ]
                    },
                )
            elif len(route) == 3 and route[:2] == ("v1", "jobs"):
                job = service.jobs.get(route[2])
                if job is None:
                    self._error(404, f"no such job: {route[2]}")
                else:
                    self._json(200, job.as_dict())
            elif len(route) == 3 and route[:2] == ("v1", "results"):
                payload = service.store.get(route[2])
                if payload is None:
                    self._error(404, f"no such result: {route[2]}")
                else:
                    self._send(200, payload, "application/json")
            elif route == ("v1", "workers"):
                self._json(200, service.cluster.workers_view())
            elif route == ("v1", "sweeps"):
                self._json(200, {"sweeps": service.sweeps.views()})
            elif len(route) == 3 and route[:2] == ("v1", "sweeps"):
                view = service.sweeps.view(route[2], include_result=True)
                if view is None:
                    self._error(404, f"no such sweep: {route[2]}")
                else:
                    self._json(200, view)
            elif len(route) == 4 and route[:2] == ("v1", "traces"):
                try:
                    blob = service.cluster.trace_entry_bytes(
                        route[2], route[3]
                    )
                except ReproError as exc:
                    self._error(404, str(exc))
                except OSError as exc:
                    self._error(500, f"trace entry unavailable: {exc}")
                else:
                    self._send(200, blob, "application/octet-stream")
            else:
                self._error(404, f"no such endpoint: {self.path}")

        def _read_json(self):
            """The request body as JSON, or ``None`` after answering
            400 (callers just return)."""
            try:
                length = int(self.headers.get("Content-Length", "0"))
                return json.loads(self.rfile.read(length) or b"null")
            except (ValueError, json.JSONDecodeError):
                self._error(400, "request body must be valid JSON")
                return None

        def _handle_post(self) -> None:
            if not self._guard():
                return
            route = self._route()
            if route == ("v1", "jobs"):
                raw = self._read_json()
                if raw is None:
                    return
                try:
                    body, status = service.submit(raw)
                except (QueueFullError, StorageExhausted) as exc:
                    # Both are the same overload contract: new work is
                    # rejected loudly with a back-off hint; accepted
                    # work and reads keep being served.
                    self._error(
                        503,
                        str(exc),
                        headers={"Retry-After": str(service.retry_after())},
                    )
                    return
                except ReproError as exc:
                    # SpecError, unknown experiments/workloads, bad
                    # geometry — all client mistakes.
                    self._error(400, str(exc))
                    return
                self._json(status, body)
            elif route == ("v1", "sweeps"):
                raw = self._read_json()
                if raw is None:
                    return
                try:
                    body, status = service.sweeps.submit(raw)
                except (QueueFullError, StorageExhausted) as exc:
                    # Same overload contract as /v1/jobs: the sweep's
                    # remaining cells are rejected loudly; re-POST the
                    # spec after backing off (idempotent).
                    self._error(
                        503,
                        str(exc),
                        headers={"Retry-After": str(service.retry_after())},
                    )
                    return
                except ReproError as exc:
                    # SweepSpecError and friends — client mistakes;
                    # the message names the sweep/v1 schema.
                    self._error(400, str(exc))
                    return
                self._json(status, body)
            elif route == ("v1", "workers"):
                raw = self._read_json()
                if raw is None:
                    return
                raw = raw if isinstance(raw, dict) else {}
                grant = service.cluster.register(
                    name=str(raw.get("name", "worker")),
                    pid=raw.get("pid"),
                    host=raw.get("host"),
                )
                self._json(200, grant)
            elif (
                len(route) == 4
                and route[:2] == ("v1", "workers")
                and route[3] == "heartbeat"
            ):
                try:
                    self._json(200, service.cluster.heartbeat(route[2]))
                except (FaultInjected, OSError) as exc:
                    self._error(500, f"injected cluster fault: {exc}")
            elif route == ("v1", "cells", "lease"):
                raw = self._read_json()
                if raw is None:
                    return
                raw = raw if isinstance(raw, dict) else {}
                try:
                    grant = service.cluster.lease(
                        str(raw.get("worker_id", "")),
                        max_leases=int(raw.get("max_leases", 1)),
                    )
                except (FaultInjected, OSError) as exc:
                    self._error(500, f"injected cluster fault: {exc}")
                    return
                self._json(200, grant)
            elif (
                len(route) == 4
                and route[:2] == ("v1", "cells")
                and route[3] == "result"
            ):
                raw = self._read_json()
                if raw is None:
                    return
                raw = raw if isinstance(raw, dict) else {}
                try:
                    verdict = service.cluster.complete(
                        route[2],
                        str(raw.get("worker_id", "")),
                        raw.get("payload"),
                    )
                except (FaultInjected, OSError) as exc:
                    self._error(500, f"injected cluster fault: {exc}")
                    return
                self._json(200, verdict)
            else:
                self._error(404, f"no such endpoint: {self.path}")

        def _handle_delete(self) -> None:
            if not self._guard():
                return
            route = self._route()
            if len(route) == 3 and route[:2] == ("v1", "jobs"):
                job = service.jobs.cancel(route[2])
                if job is None:
                    self._error(404, f"no such job: {route[2]}")
                else:
                    self._json(202, job.as_dict(include_result=False))
            elif len(route) == 3 and route[:2] == ("v1", "workers"):
                if service.cluster.deregister(route[2]):
                    self._json(200, {"removed": True})
                else:
                    self._error(404, f"no such worker: {route[2]}")
            else:
                self._error(404, f"no such endpoint: {self.path}")

        def log_message(self, fmt: str, *args) -> None:
            if not quiet:  # pragma: no cover - debug aid
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

    return Handler
