"""Job records, lifecycle states and the thread-safe job queue.

A job is born ``queued``, is picked up by one worker (``running``), and
ends in exactly one of ``done`` / ``failed`` / ``cancelled``.  The
:class:`JobQueue` owns every record, hands pending ids to workers, and
keeps the lifecycle counters ``/v1/metrics`` reports.

Two service behaviours live here rather than in the workers:

* **store-hit answering** — a submission whose result key is already in
  the result store is materialised directly as a ``done`` job
  (``cached: true``), never touching the queue;
* **in-flight deduplication** — a submission whose result key matches a
  job that is currently queued or running returns that job
  (``deduplicated: true``) instead of simulating the same thing twice;
* **overload shedding** — with ``max_queue_depth`` set, a submission
  that would enqueue a new job beyond the bound raises
  :class:`QueueFullError` (the HTTP layer answers ``503`` +
  ``Retry-After``) instead of growing an unbounded backlog.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import StorageExhausted

#: Lifecycle states.  ``queued`` and ``running`` are live; the rest are
#: terminal.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_LIVE = (QUEUED, RUNNING)
_TERMINAL = (DONE, FAILED, CANCELLED)

#: Schema tag stamped on every job view the service returns.  Clients
#: must tolerate unknown keys; additive changes keep this tag, breaking
#: changes bump it (see ``docs/API.md``).
JOB_SCHEMA = "job/v1"

#: Execution lanes.  ``local`` jobs are claimed by the in-process
#: worker pool (child processes on this host); ``cluster`` jobs by the
#: cluster executor, which shards their cells across registered remote
#: workers (see ``docs/CLUSTER.md``).  A lane is an execution strategy,
#: never a result namespace: both lanes produce the same payload bytes
#: for the same spec.
LOCAL_LANE = "local"
CLUSTER_LANE = "cluster"
LANES = (LOCAL_LANE, CLUSTER_LANE)


class QueueFullError(Exception):
    """A submission was shed: the pending queue is at its depth bound.

    The HTTP layer translates this into ``503`` with a ``Retry-After``
    header — the overload contract is *reject new work loudly, never
    drop accepted work silently*.
    """

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"queue is full ({depth} pending, limit {limit}); retry later"
        )
        self.depth = depth
        self.limit = limit


@dataclass
class Job:
    """One submitted unit of work and everything observable about it."""

    id: str
    spec: Dict
    result_key: str
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    #: ``(done, total)`` cell progress, engine-hook fed.
    progress: Optional[Tuple[int, int]] = None
    #: Answered straight from the result store, no simulation.
    cached: bool = False
    #: Whether the completed payload won result-store admission.
    stored: Optional[bool] = None
    #: The completed payload (kept in memory even when the store
    #: rejected it, so the submitter always gets the result).
    payload: Optional[Dict] = None
    #: Set to request cancellation; checked queued and running.
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: Which execution lane claims this job (``local`` / ``cluster``).
    lane: str = LOCAL_LANE

    def as_dict(self, include_result: bool = True) -> Dict:
        """The job's public JSON view (``GET /v1/jobs/<id>``)."""
        view: Dict[str, object] = {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "spec": self.spec,
            "result_key": self.result_key,
            "lane": self.lane,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "error": self.error,
            "cached": self.cached,
            "stored": self.stored,
        }
        if self.progress is not None:
            done, total = self.progress
            view["progress"] = {"done": done, "total": total}
        if include_result and self.state == DONE:
            view["result"] = self.payload
        return view


class JobQueue:
    """Registry of every job plus the FIFO of pending work.

    All mutation goes through methods that hold the internal lock, so
    HTTP threads and worker threads can share one instance freely.
    """

    def __init__(
        self,
        max_jobs: int = 10000,
        max_queue_depth: Optional[int] = None,
        journal=None,
    ) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # insertion order, for trimming
        self._pending: Dict[str, "queue.Queue[str]"] = {
            lane: queue.Queue() for lane in LANES
        }
        self._max_jobs = max_jobs
        #: Pending-job bound; ``None`` = unbounded.  At the bound, new
        #: (non-deduplicated) submissions raise :class:`QueueFullError`.
        self.max_queue_depth = max_queue_depth
        #: Optional write-ahead journal (:class:`repro.service.journal
        #: .Journal`).  When set, every lifecycle transition is appended
        #: so a restarted coordinator can rebuild this queue.  Appends
        #: always happen *outside* ``_lock`` — the journal fsyncs and
        #: hosts a fault point, and neither may run under a lock.
        self.journal = journal
        self._serial = 0  # plain int so snapshots can capture/restore it
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.retries = 0
        self.shed = 0

    def _new_id(self) -> str:
        # Job ids are transport handles, never result material: results
        # are addressed by the deterministic result_key, and ids appear
        # in no payload the store persists.  The random suffix guards
        # against id collisions across server restarts.
        self._serial += 1
        return f"job-{self._serial:05d}-{uuid.uuid4().hex[:8]}"  # repro: allow[DET001]

    def _trim(self) -> None:
        # Drop the oldest *terminal* records once the registry is full;
        # live jobs are never evicted.
        while len(self._order) > self._max_jobs:
            for index, job_id in enumerate(self._order):
                if self._jobs[job_id].state in _TERMINAL:
                    del self._jobs[job_id]
                    del self._order[index]
                    break
            else:
                return

    # Submission --------------------------------------------------------
    def submit(
        self, spec: Dict, result_key: str, lane: str = LOCAL_LANE
    ) -> Tuple[Job, bool]:
        """Register a new queued job; returns ``(job, deduplicated)``.

        When a live job with the same result key exists, that job is
        returned instead (``deduplicated=True``) and nothing new is
        enqueued.  Deduplicated submissions are never shed — they add
        no work — but a submission that *would* enqueue a new job while
        ``max_queue_depth`` jobs are already pending (across every
        lane) raises :class:`QueueFullError` instead of growing the
        backlog, and one that cannot be durably journalled (disk quota
        or ``ENOSPC``) is rolled back and re-raises
        :class:`StorageExhausted` — accepted means recorded.
        """
        if lane not in LANES:
            raise ValueError(f"unknown job lane {lane!r}")
        with self._lock:
            self.submitted += 1
            for job_id in reversed(self._order):
                existing = self._jobs[job_id]
                if (
                    existing.result_key == result_key
                    and existing.state in _LIVE
                ):
                    return existing, True
            if self.max_queue_depth is not None:
                depth = sum(
                    1 for j in self._jobs.values() if j.state == QUEUED
                )
                if depth >= self.max_queue_depth:
                    self.shed += 1
                    raise QueueFullError(depth, self.max_queue_depth)
            job = Job(
                id=self._new_id(), spec=spec, result_key=result_key,
                lane=lane,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._trim()
        if self.journal is not None:
            try:
                self.journal.append(
                    "job.submit",
                    id=job.id,
                    spec=spec,
                    result_key=result_key,
                    lane=lane,
                    created=job.created,
                )
            except StorageExhausted:
                # The write-ahead contract: a job we cannot record is a
                # job we never accepted.  Undo the insert and shed.
                with self._lock:
                    self._jobs.pop(job.id, None)
                    if job.id in self._order:
                        self._order.remove(job.id)
                    self.submitted -= 1
                    self.shed += 1
                raise
        self._pending[lane].put(job.id)
        return job, False

    def add_cached(self, spec: Dict, result_key: str, payload: Dict) -> Job:
        """Register a submission answered from the result store: the
        job is born ``done`` and never enters the queue."""
        now = time.time()
        with self._lock:
            self.submitted += 1
            job = Job(
                id=self._new_id(),
                spec=spec,
                result_key=result_key,
                state=DONE,
                started=now,
                finished=now,
                cached=True,
                stored=True,
                payload=payload,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._trim()
        if self.journal is not None:
            # A cached answer adds no queue work, so exhaustion never
            # sheds it — the store already holds the durable truth.
            self.journal.append_safe(
                "job.cached",
                id=job.id,
                spec=spec,
                result_key=result_key,
                lane=job.lane,
                created=job.created,
            )
        return job

    # Worker side -------------------------------------------------------
    def next_job(
        self, timeout: float = 0.2, lane: str = LOCAL_LANE
    ) -> Optional[Job]:
        """Claim the next pending job (``running``) from ``lane``, or
        ``None`` on timeout.  Jobs cancelled while queued are resolved
        here."""
        try:
            job_id = self._pending[lane].get(timeout=timeout)
        except queue.Empty:
            return None
        resolved_cancel = False
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != QUEUED:
                return None
            if job.cancel_event.is_set():
                job.state = CANCELLED
                job.finished = time.time()
                self.cancelled += 1
                resolved_cancel = True
            else:
                job.state = RUNNING
                job.started = time.time()
        if self.journal is not None:
            if resolved_cancel:
                self.journal.append_safe(
                    "job.finish", id=job.id, state=CANCELLED
                )
            else:
                self.journal.append_safe("job.claim", id=job.id)
        return None if resolved_cancel else job

    def note_retry(self) -> None:
        with self._lock:
            self.retries += 1
        if self.journal is not None:
            self.journal.append_safe("job.retry")

    def note_attempt(self, job: Job, attempt: int) -> None:
        """Record that ``job`` is starting attempt ``attempt``.

        Job records are read by HTTP threads (``GET /v1/jobs/<id>``)
        while a worker thread mutates them, so the write goes through
        the queue's lock like every other job mutation.  The count is
        monotonic: a job recovered at attempt 2 whose executor restarts
        its local loop at 1 keeps reporting 2.
        """
        with self._lock:
            job.attempts = max(job.attempts, attempt)
            recorded = job.attempts
        if self.journal is not None:
            self.journal.append_safe("job.attempt", id=job.id, n=recorded)

    def note_progress(self, job: Job, done: int, total: int) -> None:
        """Record engine-hook progress for ``job`` (cells done/total)."""
        with self._lock:
            job.progress = (done, total)
        if self.journal is not None:
            self.journal.append_safe(
                "job.progress", id=job.id, done=done, total=total
            )

    def finish(
        self,
        job: Job,
        state: str,
        error: Optional[str] = None,
        payload: Optional[Dict] = None,
        stored: Optional[bool] = None,
    ) -> None:
        """Move a running job to a terminal state."""
        if state not in _TERMINAL:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._lock:
            job.state = state
            job.finished = time.time()
            job.error = error
            job.payload = payload
            job.stored = stored
            if state == DONE:
                self.completed += 1
            elif state == FAILED:
                self.failed += 1
            else:
                self.cancelled += 1
        if self.journal is not None:
            self.journal.append_safe(
                "job.finish",
                id=job.id,
                state=state,
                error=error,
                stored=stored,
            )

    # Introspection -----------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the job or ``None``.

        Queued jobs resolve when a worker drains them; running jobs are
        stopped by their worker (which kills the child process).
        Terminal jobs are unaffected.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None and job.state in _LIVE:
            job.cancel_event.set()
            if self.journal is not None:
                self.journal.append_safe("job.cancel", id=job.id)
        return job

    def jobs(self) -> List[Job]:
        """Every known job, submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def queue_depth(self, lane: Optional[str] = None) -> int:
        """Number of jobs waiting for a worker — in ``lane``, or in
        every lane when ``lane`` is ``None`` (the overload bound)."""
        with self._lock:
            return sum(
                1
                for j in self._jobs.values()
                if j.state == QUEUED and (lane is None or j.lane == lane)
            )

    def running_count(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == RUNNING)

    def stats(self) -> Dict[str, int]:
        """Lifecycle counters for ``/v1/metrics``."""
        with self._lock:
            live = [j.state for j in self._jobs.values()]
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "retries": self.retries,
                "shed": self.shed,
                "queued": sum(1 for s in live if s == QUEUED),
                "running": sum(1 for s in live if s == RUNNING),
            }

    # Durability ---------------------------------------------------------
    def restore(self, recovered, payloads: Dict[str, Dict]) -> int:
        """Rebuild the queue from recovery state (startup only).

        ``recovered`` is a :class:`repro.service.journal.RecoveredState`;
        ``payloads`` maps result keys to store payloads the caller
        prefetched (store reads block, so they must not happen under
        this lock).  Jobs that were running at the crash re-enter the
        queue at their recorded attempt count — their pre-crash leases
        are dead, so ``queued`` is the truthful state.  Done jobs are
        rehydrated from the store and never recomputed.  Returns the
        number of jobs restored.
        """
        to_enqueue: List[Tuple[str, str]] = []
        with self._lock:
            for rec in recovered.jobs:
                if rec.id in self._jobs:
                    continue
                job = Job(
                    id=rec.id,
                    spec=rec.spec,
                    result_key=rec.result_key,
                    lane=rec.lane if rec.lane in LANES else LOCAL_LANE,
                    created=rec.created,
                    attempts=rec.attempts,
                    cached=rec.cached,
                )
                if rec.progress is not None:
                    job.progress = rec.progress
                if rec.state in _TERMINAL:
                    job.state = rec.state
                    job.finished = rec.created
                    job.error = rec.error
                    job.stored = rec.stored
                    if rec.state == DONE:
                        job.payload = payloads.get(rec.result_key)
                else:
                    job.state = QUEUED
                    if rec.cancel_requested:
                        job.cancel_event.set()
                    to_enqueue.append((job.lane, job.id))
                self._jobs[job.id] = job
                self._order.append(job.id)
            self._serial = max(self._serial, recovered.job_serial)
            counters = recovered.queue_counters
            self.submitted = counters.get("submitted", 0)
            self.completed = counters.get("completed", 0)
            self.failed = counters.get("failed", 0)
            self.cancelled = counters.get("cancelled", 0)
            self.retries = counters.get("retries", 0)
            self.shed = counters.get("shed", 0)
            restored = len(self._order)
        for lane, job_id in to_enqueue:
            self._pending[lane].put(job_id)
        return restored

    def snapshot_state(self) -> Dict:
        """Absolute state for the journal snapshot: every job in
        record form (no payloads — done results live in the store) plus
        the lifecycle counters and the id serial high-water mark."""
        with self._lock:
            jobs = []
            for job_id in self._order:
                job = self._jobs[job_id]
                view: Dict[str, object] = {
                    "id": job.id,
                    "spec": job.spec,
                    "result_key": job.result_key,
                    "lane": job.lane,
                    "state": job.state,
                    "attempts": job.attempts,
                    "created": job.created,
                }
                if job.progress is not None:
                    view["progress"] = list(job.progress)
                if job.error is not None:
                    view["error"] = job.error
                if job.cached:
                    view["cached"] = True
                if job.stored is not None:
                    view["stored"] = job.stored
                if job.state in _LIVE and job.cancel_event.is_set():
                    view["cancel"] = True
                jobs.append(view)
            return {
                "jobs": jobs,
                "serial": self._serial,
                "counters": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "cancelled": self.cancelled,
                    "retries": self.retries,
                    "shed": self.shed,
                },
            }
