"""Job specifications, result keys and the worker-side executor.

A *job spec* is the service's unit of work: a plain-JSON dict naming
either one whole experiment (``{"type": "experiment", "experiment_id":
"fig10", "fast": true}``) or one engine simulation cell (``{"type":
"cell", "workload": "gcc", ...}`` — the :class:`repro.engine.cells
.SimCell` fields).  Specs are normalised to a canonical form before
anything else happens, so two requests that mean the same work hash to
the same **result key** regardless of field order or omitted defaults.

The result key is content-addressed the same way the trace cache
addresses traces: a SHA-256 digest over the normalised spec, the
workload input's data seed (for cell jobs), the package version and the
trace-cache version.  Identical submissions therefore resolve to the
same stored payload across server restarts, and any change that could
alter results (new code version, regenerated traces) silently retires
old entries instead of serving stale ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields as dataclass_fields
from typing import Callable, Dict, Optional

from repro.common.errors import ConfigurationError
from repro.engine.cells import CellResult, SimCell
from repro.engine.trace_cache import TRACE_CACHE_VERSION
from repro.experiments.render import (
    dumps_canonical,
    dumps_compact,
    experiment_payload,
)

#: Bump when the spec normalisation or payload shape changes
#: incompatibly; part of every result key.
SPEC_VERSION = 1

#: Schema tag stamped on cell JSON payloads.
CELL_SCHEMA = "repro.cell/1"

_CELL_FIELDS = tuple(f.name for f in dataclass_fields(SimCell))


class SpecError(ConfigurationError):
    """A submitted job spec is malformed (HTTP 400 at the API edge)."""


def _require_type(spec: Dict, field: str, kind: type, default=None):
    value = spec.get(field, default)
    if value is None:
        raise SpecError(f"spec field {field!r} is required")
    # bool is an int subclass; reject True where an int is expected.
    if kind is int and isinstance(value, bool):
        raise SpecError(f"spec field {field!r} must be an integer")
    if not isinstance(value, kind):
        raise SpecError(
            f"spec field {field!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def normalise_spec(spec: object) -> Dict:
    """Validate a raw (JSON-decoded) spec and return its canonical form.

    The canonical form spells out every field, so equality of
    normalised specs is equality of the work they describe.  Raises
    :class:`SpecError` on anything malformed and
    :class:`~repro.common.errors.ConfigurationError` on unknown
    experiment/workload names.
    """
    if not isinstance(spec, dict):
        raise SpecError("job spec must be a JSON object")
    kind = spec.get("type")
    if kind == "experiment":
        from repro.experiments.registry import get_experiment

        experiment_id = _require_type(spec, "experiment_id", str)
        get_experiment(experiment_id)  # raises on unknown ids
        return {
            "type": "experiment",
            "experiment_id": experiment_id,
            "fast": bool(spec.get("fast", False)),
        }
    if kind == "cell":
        from repro.workloads.registry import get_workload

        unknown = set(spec) - set(_CELL_FIELDS) - {"type"}
        if unknown:
            raise SpecError(f"unknown cell spec fields: {sorted(unknown)}")
        cell = SimCell(
            workload=_require_type(spec, "workload", str),
            input_name=_require_type(spec, "input_name", str, "ref"),
            kind=_require_type(spec, "kind", str, "baseline"),
            size_bytes=_require_type(spec, "size_bytes", int, 16 * 1024),
            line_bytes=_require_type(spec, "line_bytes", int, 32),
            ways=_require_type(spec, "ways", int, 1),
            fvc_entries=_require_type(spec, "fvc_entries", int, 512),
            top_values=_require_type(spec, "top_values", int, 7),
        )
        if cell.kind not in ("baseline", "fvc", "classify"):
            raise SpecError(f"unknown cell kind {cell.kind!r}")
        # Raises on unknown workloads/inputs, and validates geometry.
        get_workload(cell.workload).input_named(cell.input_name)
        cell.geometry()
        normalised = {"type": "cell"}
        normalised.update(
            (name, getattr(cell, name)) for name in _CELL_FIELDS
        )
        return normalised
    raise SpecError(
        f"spec 'type' must be 'experiment' or 'cell', got {kind!r}"
    )


def result_key(spec: Dict) -> str:
    """The content hash addressing one normalised spec's result.

    Covers everything the payload is a function of: the spec itself,
    the package version, the trace-cache version, and — for cell jobs —
    the data seed of the referenced workload input.
    """
    from repro import __version__

    material: Dict[str, object] = {
        "v": SPEC_VERSION,
        "code": __version__,
        "traces": TRACE_CACHE_VERSION,
        "spec": spec,
    }
    if spec.get("type") == "cell":
        from repro.workloads.registry import get_workload

        inp = get_workload(spec["workload"]).input_named(spec["input_name"])
        material["seed"] = inp.data_seed
    digest = hashlib.sha256(dumps_compact(material).encode())
    return digest.hexdigest()[:24]


def cell_payload(result: CellResult) -> Dict:
    """A :class:`CellResult` as a plain-JSON-types dict (the cell-job
    analogue of :func:`repro.experiments.render.experiment_payload`)."""
    cell = result.cell
    return {
        "schema": CELL_SCHEMA,
        "cell": {name: getattr(cell, name) for name in _CELL_FIELDS},
        "stats": dict(result.stats),
        "extras": dict(result.extras),
    }


def payload_bytes(payload: Dict) -> bytes:
    """Canonical JSON encoding of a payload — the exact bytes the
    result store persists and ``/v1/results/<key>`` serves."""
    return dumps_canonical(payload).encode("utf-8")


def execute_spec(
    spec: Dict, progress: Optional[Callable[[int, int], None]] = None
) -> Dict:
    """Run one normalised spec to its JSON payload.

    This is the function job workers execute (in a child process —
    see :mod:`repro.service.workers`).  It goes through the exact same
    engine path as the CLI (:func:`repro.engine.cells.run_cell` /
    :meth:`repro.experiments.base.Experiment.run_with_engine`), which is
    what makes a served result byte-identical to a local run.
    """
    from repro.workloads.store import shared_store

    if spec["type"] == "experiment":
        from repro.experiments.registry import get_experiment

        experiment = get_experiment(spec["experiment_id"])
        result = experiment.run_with_engine(
            shared_store, fast=spec["fast"], jobs=1, progress=progress
        )
        return experiment_payload(result)
    if spec["type"] == "cell":
        from repro.engine.cells import run_cell

        cell = SimCell(**{name: spec[name] for name in _CELL_FIELDS})
        if progress is not None:
            progress(0, 1)
        result = run_cell(cell, shared_store)
        if progress is not None:
            progress(1, 1)
        return cell_payload(result)
    raise SpecError(f"cannot execute spec type {spec.get('type')!r}")
