"""Service-side sweeps: ``/v1/sweeps`` fan-out and assembly.

A posted ``sweep/v1`` spec expands server-side into its distinct
simulation cells, and every cell enters the service as an ordinary
job through :meth:`ReproService.submit` — so each cell gets the full
job contract for free: the result-store memo (a cell shared by two
sweeps, or already computed by a plain ``POST /v1/jobs``, is never
simulated twice), in-flight deduplication, the journaled queue and
crash recovery, retry/timeout handling, and cluster-lane dispatch.

The sweep itself is *assembly state, not queue state*: the board
tracks which jobs make up each sweep and, once all of them are done,
assembles the ``sweep.result/1`` payload through the exact pure
function the local runner uses (:func:`repro.sweeps.runner
.sweep_payload`) and offers it to the result store under the sweep's
result key.  A served sweep's bytes are therefore identical to a
local ``run_sweep``'s, and a re-posted sweep whose payload is still
resident is answered without touching the queue at all.  After a
coordinator crash the sweep *jobs* recover from the journal; the
board's mapping does not — re-POST the spec (idempotent, content
addressed) to resume tracking, and every finished cell is answered
from the store.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Tuple

from repro.service.api import payload_bytes
from repro.service.jobs import CANCELLED, DONE, FAILED
from repro.sweeps.expand import SweepPoint, expand, unique_cells
from repro.sweeps.runner import (
    experiment_sweep_payload,
    snapshots_for,
    sweep_payload,
)
from repro.sweeps.spec import (
    is_experiment_sweep,
    normalise_sweep,
    sweep_id,
    sweep_result_key,
)

#: Cell-spec fields, SimCell order (mirrors repro.service.api).
_CELL_FIELDS = (
    "workload",
    "input_name",
    "kind",
    "size_bytes",
    "line_bytes",
    "ways",
    "fvc_entries",
    "top_values",
)


class _SweepRecord:
    """Book-keeping for one tracked sweep (immutable after creation
    except for the assembly fields, which the board lock guards)."""

    def __init__(
        self,
        spec: Dict[str, object],
        points: List[SweepPoint],
        job_ids: List[str],
        job_keys: List[str],
    ) -> None:
        self.spec = spec
        self.sweep_id = sweep_id(spec)
        self.result_key = sweep_result_key(spec)
        self.points = points
        #: Distinct-cell job ids / result keys, expansion first-use
        #: order (one entry for the whole run on experiment sweeps).
        self.job_ids = job_ids
        self.job_keys = job_keys
        #: Assembled payload, set exactly once (board lock).
        self.payload: Optional[Dict[str, object]] = None
        #: Whether the assembled payload won result-store admission.
        self.stored: Optional[bool] = None
        self.counted_done = False


class SweepBoard:
    """Tracks posted sweeps and assembles their results.

    Thread-safe; HTTP threads share one instance.  The lock guards
    only the record table and assembly publication — job submission
    and store IO happen outside it.
    """

    def __init__(self, service) -> None:
        self._service = service
        self._lock = threading.Lock()
        self._records: Dict[str, _SweepRecord] = {}
        self._order: List[str] = []

    # Submission --------------------------------------------------------
    def _cell_spec(self, cell) -> Dict[str, object]:
        spec: Dict[str, object] = {"type": "cell"}
        spec.update((name, getattr(cell, name)) for name in _CELL_FIELDS)
        return spec

    def _submit_jobs(
        self, spec: Dict[str, object], points: List[SweepPoint]
    ) -> Tuple[List[str], List[str]]:
        """Enqueue the sweep's work as ordinary jobs; returns their
        ids and result keys in expansion first-use order."""
        registry = self._service.registry
        job_ids: List[str] = []
        job_keys: List[str] = []
        if is_experiment_sweep(spec):
            arm = spec["arms"][0]
            body, _status = self._service.submit(
                {
                    "type": "experiment",
                    "experiment_id": arm["experiment_id"],
                    "fast": arm["fast"],
                }
            )
            job_ids.append(body["id"])
            job_keys.append(body["result_key"])
            return job_ids, job_keys
        distinct = unique_cells(points)
        registry.counter("sweep_cells_expanded_total").inc(len(distinct))
        for cell in distinct:
            body, _status = self._service.submit(self._cell_spec(cell))
            if body.get("cached") or body.get("deduplicated"):
                registry.counter("sweep_cells_reused_total").inc()
            job_ids.append(body["id"])
            job_keys.append(body["result_key"])
        return job_ids, job_keys

    def submit(self, raw: object) -> Tuple[Dict[str, object], int]:
        """Handle ``POST /v1/sweeps``; returns ``(body, status)``.

        Idempotent by content address: re-posting a known sweep (or
        one whose assembled payload is resident in the result store)
        answers 200 with its current view; a new sweep fans out and
        answers 202.  Raises the queue's overload errors unchanged so
        the HTTP layer applies the one 503 + ``Retry-After`` contract.
        """
        spec = normalise_sweep(raw)
        sid = sweep_id(spec)
        with self._lock:
            existing = self._records.get(sid)
        if existing is not None:
            return self.view(sid), 200
        self._service.registry.counter("sweeps_submitted_total").inc()
        stored = self._service.store.get(sweep_result_key(spec))
        if stored is not None:
            record = _SweepRecord(spec, [], [], [])
            record.payload = json.loads(stored)
            record.counted_done = True
            self._publish(sid, record)
            return self.view(sid), 200
        points = [] if is_experiment_sweep(spec) else expand(spec)
        job_ids, job_keys = self._submit_jobs(spec, points)
        record = _SweepRecord(spec, points, job_ids, job_keys)
        self._publish(sid, record)
        return self.view(sid), 202

    def _publish(self, sid: str, record: _SweepRecord) -> None:
        """First writer wins; a concurrent duplicate submission left
        only idempotent job submissions behind."""
        with self._lock:
            if sid not in self._records:
                self._records[sid] = record
                self._order.append(sid)

    # Views -------------------------------------------------------------
    def _job_states(self, record: _SweepRecord) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job_id in record.job_ids:
            job = self._service.jobs.get(job_id)
            state = job.state if job is not None else "unknown"
            counts[state] = counts.get(state, 0) + 1
        return {state: counts[state] for state in sorted(counts)}

    def _job_payload(
        self, job_id: str, job_key: str
    ) -> Optional[Dict[str, object]]:
        job = self._service.jobs.get(job_id)
        if job is not None and job.state == DONE and job.payload is not None:
            return job.payload
        blob = self._service.store.peek(job_key)
        if blob is not None:
            return json.loads(blob)
        return None

    def _assemble(self, record: _SweepRecord) -> Optional[Dict[str, object]]:
        """Build the sweep payload once every job is done; ``None``
        while work is still outstanding."""
        payloads = []
        for job_id, job_key in zip(record.job_ids, record.job_keys):
            payload = self._job_payload(job_id, job_key)
            if payload is None:
                return None
            payloads.append(payload)
        if is_experiment_sweep(record.spec):
            return experiment_sweep_payload(record.spec, payloads[0])
        by_cell = {}
        distinct = unique_cells(record.points)
        for cell, payload in zip(distinct, payloads):
            by_cell[cell] = (payload["stats"], payload["extras"])
        return sweep_payload(
            record.spec,
            record.points,
            snapshots_for(record.points, by_cell),
            len(distinct),
        )

    def _state(self, record: _SweepRecord, states: Dict[str, int]) -> str:
        if record.payload is not None:
            return DONE
        if states.get(FAILED):
            return FAILED
        if states.get(CANCELLED):
            return CANCELLED
        return "running"

    def view(
        self, sid: str, include_result: bool = False
    ) -> Optional[Dict[str, object]]:
        """The ``sweep.view/1`` body for one sweep, or ``None``."""
        with self._lock:
            record = self._records.get(sid)
        if record is None:
            return None
        states = self._job_states(record)
        if record.payload is None and not (
            states.get(FAILED) or states.get(CANCELLED)
        ):
            done = states.get(DONE, 0)
            if record.job_ids and done == len(record.job_ids):
                assembled = self._assemble(record)
                if assembled is not None:
                    stored = self._service.store.put(
                        record.result_key,
                        payload_bytes(assembled),
                    )
                    with self._lock:
                        if record.payload is None:
                            record.payload = assembled
                            record.stored = stored
                        if not record.counted_done:
                            record.counted_done = True
                            self._service.registry.counter(
                                "sweeps_completed_total"
                            ).inc()
        state = self._state(record, states)
        if state == FAILED:
            with self._lock:
                if not record.counted_done:
                    record.counted_done = True
                    self._service.registry.counter(
                        "sweeps_failed_total"
                    ).inc()
        body: Dict[str, object] = {
            "schema": "sweep.view/1",
            "sweep_id": record.sweep_id,
            "name": record.spec["name"],
            "result_key": record.result_key,
            "state": state,
            "points": len(record.points)
            if record.points
            else (record.payload or {}).get("points", 0),
            "distinct_cells": len(record.job_ids)
            if not is_experiment_sweep(record.spec)
            else 0,
            "jobs": states,
        }
        if include_result and record.payload is not None:
            body["result"] = record.payload
        return body

    def views(self) -> List[Dict[str, object]]:
        """Every tracked sweep, submission order (``GET /v1/sweeps``)."""
        with self._lock:
            order = list(self._order)
        views = []
        for sid in order:
            view = self.view(sid)
            if view is not None:
                views.append(view)
        return views

    def metric_samples(self) -> Dict[str, Dict[str, object]]:
        """Gauge snapshot for ``/v1/metrics``."""
        with self._lock:
            tracked = len(self._records)
        return {"sweeps_tracked": {"type": "gauge", "value": tracked}}
