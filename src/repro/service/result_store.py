"""Persistent, content-addressed result store with TinyLFU admission.

The store is the serving layer's memory: every completed job's JSON
payload is kept on disk under its result key (see
:func:`repro.service.api.result_key`), so identical submissions — from
any process, across server restarts — are answered without
re-simulation.

Capacity is bounded, and what survives at capacity is decided by a
TinyLFU-style **frequency admission** policy (Einziger et al.): a
candidate only displaces the coldest resident entry when the candidate
has been *asked for* more often.  One-off results therefore pass
through without evicting hot ones — the paper's frequent-value
observation applied one level up, to results instead of words.  The
frequency sketch is built from the repo's own streaming counters
(:class:`repro.profiling.topk.SpaceSaving`), aged by windowing: two
sketches, current and previous, rotated every ``window`` observations
so ancient popularity decays instead of pinning entries forever.

Layout: one file per entry, ``<key>.json``, holding the canonical
payload bytes wrapped in a sha256 integrity envelope
(:mod:`repro.common.integrity`).  Writes are atomic and durable (temp
file + flush + ``fsync`` + ``os.replace`` + directory ``fsync``); reads
verify the envelope, and an entry that fails verification is
quarantined as ``<key>.json.corrupt`` and treated as a miss — the job
layer then recomputes and re-persists it, so corruption self-heals and
is never served.  Recency for victim tie-breaks comes from file
mtimes, refreshed on hit.
"""

from __future__ import annotations

import hashlib
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.common.errors import IntegrityError
from repro.common.integrity import quarantine, read_enveloped, write_enveloped
from repro.profiling.topk import SpaceSaving

#: Default maximum number of resident entries.
DEFAULT_CAPACITY = 512


def default_store_dir() -> Path:
    """The result-store directory the environment selects."""
    env = os.environ.get("REPRO_RESULT_STORE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-fvc" / "results"


class FrequencySketch:
    """Windowed access-frequency estimator over result keys.

    Wraps two :class:`~repro.profiling.topk.SpaceSaving` summaries —
    the TinyLFU trick of periodic aging, done by rotation: once the
    current window has seen ``window`` observations it becomes the
    previous window and a fresh one starts.  An estimate is the sum of
    both windows, so popularity fades within two windows of going quiet
    rather than accumulating forever.
    """

    def __init__(self, counters: int = 1024, window: int = 4096) -> None:
        if window <= 0:
            raise ValueError("sketch window must be positive")
        self.counters = counters
        self.window = window
        self._current = SpaceSaving(counters)
        self._previous: Optional[SpaceSaving] = None

    @staticmethod
    def _slot(key: str) -> int:
        # The SpaceSaving counters track integer identities; any key
        # string maps to one through a stable 64-bit digest.
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    def touch(self, key: str) -> None:
        """Record one request for ``key`` (hit or miss alike)."""
        self._current.add(self._slot(key))
        if self._current.total >= self.window:
            self._previous = self._current
            self._current = SpaceSaving(self.counters)

    def estimate(self, key: str) -> int:
        """Estimated request count for ``key`` over the last two
        windows."""
        slot = self._slot(key)
        count = self._current.estimate(slot)
        if self._previous is not None:
            count += self._previous.estimate(slot)
        return count


class ResultStore:
    """Disk-backed ``result key → canonical payload bytes`` map with
    bounded capacity and frequency-based admission.

    Thread-safe: the HTTP threads and the worker pool share one
    instance.  Counters (``hits`` / ``misses`` / ``stores`` /
    ``admission_rejects`` / ``evictions``) feed ``/v1/metrics``.
    """

    def __init__(
        self,
        directory: Path,
        capacity: int = DEFAULT_CAPACITY,
        sketch: Optional[FrequencySketch] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("result store needs capacity >= 1")
        self.directory = Path(directory)
        self.capacity = capacity
        self.sketch = sketch if sketch is not None else FrequencySketch()
        self._lock = threading.Lock()
        # key → mtime (recency; victim tie-break).  Rebuilt from disk
        # at construction, so restarts keep everything already earned.
        self._index: Dict[str, float] = {}
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    self._index[path.stem] = path.stat().st_mtime
                except OSError:
                    continue
            # One server process owns this directory, so temp files
            # left by a killed writer are garbage by construction.
            for stale in self.directory.glob("*.tmp"):
                try:
                    stale.unlink()
                except OSError:
                    pass
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.admission_rejects = 0
        self.evictions = 0
        self.corrupt_quarantined = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # Reads -------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """The stored payload bytes for ``key``, or ``None``.

        Every lookup — hit or miss — feeds the frequency sketch; that
        is what lets a repeatedly-requested result win admission later
        even if its first computation was rejected at capacity.
        """
        with self._lock:
            self.sketch.touch(key)
            known = key in self._index
        if not known:
            with self._lock:
                self.misses += 1
            return None
        path = self._path(key)
        try:
            payload = read_enveloped(path, site="result_store.read")
        except OSError:
            # Entry vanished behind our back (manual delete): heal.
            with self._lock:
                self._index.pop(key, None)
                self.misses += 1
            return None
        except IntegrityError:
            # Never serve corrupt bytes: park the entry for post-mortem
            # and report a miss, so the job layer recomputes it.
            quarantine(path)
            with self._lock:
                self._index.pop(key, None)
                self.corrupt_quarantined += 1
                self.misses += 1
            return None
        now = None
        try:
            os.utime(path)
            now = path.stat().st_mtime
        except OSError:
            pass
        with self._lock:
            self.hits += 1
            if now is not None:
                self._index[key] = now
        return payload

    def contains(self, key: str) -> bool:
        """Whether ``key`` is resident (no counters, no sketch)."""
        with self._lock:
            return key in self._index

    def peek(self, key: str) -> Optional[bytes]:
        """Read ``key`` without observability side effects.

        The recovery path rehydrates done jobs through this: unlike
        :meth:`get` it feeds no sketch, bumps no hit/miss counters and
        refreshes no mtime, so replaying a journal does not distort the
        admission policy or the metrics a restart should not invent.
        Corrupt entries are still quarantined, never served.
        """
        with self._lock:
            known = key in self._index
        if not known:
            return None
        path = self._path(key)
        try:
            return read_enveloped(path, site="result_store.read")
        except OSError:
            with self._lock:
                self._index.pop(key, None)
            return None
        except IntegrityError:
            quarantine(path)
            with self._lock:
                self._index.pop(key, None)
                self.corrupt_quarantined += 1
            return None

    # Writes ------------------------------------------------------------
    def _write(self, key: str, payload: bytes) -> float:
        """Persist ``key`` and return the entry's mtime.  Pure IO — the
        caller publishes the index entry under the lock."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        write_enveloped(path, payload, site="result_store.write")
        return path.stat().st_mtime

    def put(self, key: str, payload: bytes) -> bool:
        """Offer a payload for residency; returns whether it was
        admitted.

        Under capacity every offer is admitted.  At capacity the
        candidate competes with the coldest resident entry (minimum
        sketch estimate, oldest mtime breaking ties) and only a
        strictly higher estimated frequency displaces it — the TinyLFU
        rule.  A rejected payload is *not* lost to the caller: the job
        record still carries it; it just is not persisted.

        The admission/eviction decision happens under the lock; the
        write itself does not (CONC003: a store write would otherwise
        stall every HTTP read on disk latency).  That is safe because
        ``write_enveloped`` publishes via atomic rename and one key
        always maps to the same canonical payload bytes, so concurrent
        writers of a key are idempotent; the index entry only appears
        after the bytes are durably in place.
        """
        victim_path: Optional[Path] = None
        with self._lock:
            self.sketch.touch(key)
            if key not in self._index and len(self._index) >= self.capacity:
                victim = min(
                    self._index,
                    key=lambda k: (self.sketch.estimate(k), self._index[k]),
                )
                if self.sketch.estimate(key) <= self.sketch.estimate(victim):
                    self.admission_rejects += 1
                    return False
                victim_path = self._path(victim)
                del self._index[victim]
                self.evictions += 1
        if victim_path is not None:
            try:
                victim_path.unlink()
            except OSError:
                pass
        mtime = self._write(key, payload)
        with self._lock:
            self._index[key] = mtime
            self.stores += 1
        return True

    # Maintenance -------------------------------------------------------
    def verify(self) -> Dict[str, int]:
        """Envelope-check every resident entry without serving any.

        Corrupt entries are quarantined as ``<key>.json.corrupt`` and
        dropped from the index; stale ``*.tmp`` droppings are swept.
        Returns ``{"checked", "ok", "quarantined", "tmp_removed"}``.
        """
        # Snapshot the key set, check entries outside the lock (the
        # envelope reads are file IO; holding the lock across them
        # would stall every concurrent get/put on disk latency), then
        # reconcile per entry.  An entry put concurrently with its
        # check simply gets verified next run.
        checked = ok = quarantined = tmp_removed = 0
        with self._lock:
            keys = list(self._index)
        for key in keys:
            checked += 1
            path = self._path(key)
            try:
                read_enveloped(path)
            except IntegrityError:
                quarantine(path)
                with self._lock:
                    if self._index.pop(key, None) is not None:
                        self.corrupt_quarantined += 1
                        quarantined += 1
            except OSError:
                with self._lock:
                    self._index.pop(key, None)
            else:
                ok += 1
        # The tmp sweep assumes no concurrent writer (verify is an
        # offline maintenance op): an in-flight atomic publish uses a
        # .tmp name this would remove.
        if self.directory.is_dir():
            for stale in self.directory.glob("*.tmp"):
                try:
                    stale.unlink()
                    tmp_removed += 1
                except OSError:
                    pass
        return {
            "checked": checked,
            "ok": ok,
            "quarantined": quarantined,
            "tmp_removed": tmp_removed,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        with self._lock:
            removed = 0
            for key in list(self._index):
                try:
                    self._path(key).unlink()
                except OSError:
                    pass
                del self._index[key]
                removed += 1
            return removed

    def keys(self) -> List[str]:
        """Resident keys, most recently touched first."""
        with self._lock:
            ranked: List[Tuple[float, str]] = sorted(
                ((mtime, key) for key, mtime in self._index.items()),
                reverse=True,
            )
        return [key for _, key in ranked]

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def size_bytes(self) -> int:
        """Total on-disk bytes of resident entries (envelope included).

        Sizes are always bytes in the observability contract — never KB,
        never entry counts pretending to be sizes.
        """
        with self._lock:
            keys = list(self._index)
        total = 0
        for key in keys:
            try:
                total += self._path(key).stat().st_size
            except OSError:
                continue
        return total

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for ``/v1/metrics``."""
        size = self.size_bytes()
        with self._lock:
            return {
                "entries": len(self._index),
                "capacity": self.capacity,
                "size_bytes": size,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "admission_rejects": self.admission_rejects,
                "evictions": self.evictions,
                "corrupt_quarantined": self.corrupt_quarantined,
            }
