"""Write-ahead journal for the control plane: durable job/lease state.

The journal is what makes the coordinator restartable.  Every job
state transition (``submitted``/``leased``/``attempt``/``progress``/
``done``/``failed``/``cancelled``) and every recovery-relevant
scheduler event (worker register/deregister/loss, lease issue/expiry/
steal/completion) is appended to ``journal.log`` under the serve state
directory as one integrity-enveloped canonical-JSON record — the same
``FVCE1`` framing (:mod:`repro.common.integrity`) the data plane wraps
around every persisted entry, applied per record::

    FVCE1\\n
    <sha256-hex> <payload-length>\\n
    {"k":"job.submit","seq":17,...}

Records are self-delimiting, so the log is a plain concatenation —
appends need no index, and replay walks the file sequentially,
verifying each record's checksum before applying it.  A torn tail (the
crash happened mid-append) fails its checksum and replay stops at the
last good record; the startup sweep quarantines the torn bytes as
``journal.log.corrupt`` and truncates, exactly like the trace cache
quarantines a corrupt entry.

**Snapshot + compaction** keeps the log bounded: :meth:`Journal
.snapshot` captures the current sequence number *first*, then gathers
component state, publishes it atomically as ``snapshot.bin``
(:func:`~repro.common.integrity.write_enveloped`), and rewrites the
log keeping only records newer than the snapshot covers.  Because the
sequence high-water mark is captured before the state is gathered,
a record can land both inside the snapshot and in the kept tail —
which is why every record is **idempotent and absolute** (``state=``,
``attempts=N``, not ``attempts+=1``): double-apply converges to the
same state.

**Disk pressure** is a first-class outcome, not a crash: an append
that would exceed ``quota_bytes`` (journal + snapshot combined) or
that hits a real ``ENOSPC``/``EIO`` raises the typed
:class:`~repro.common.errors.StorageExhausted`.  The service sheds
*new submissions* with ``503`` + ``Retry-After`` while that condition
holds and keeps serving reads; the flag self-heals on the first append
that succeeds (compaction or freed disk).

Lock discipline (CONC003): the journal's lock is a **leaf** lock —
nothing called under it takes another lock, and no blocking primitive
(``os.fsync``, fault points) runs inside it.  Appends are written +
flushed under the lock for ordering and fsync'd after release (group
commit); callers in :mod:`repro.service.jobs` and
:mod:`repro.cluster.coordinator` append strictly *outside* their own
component locks.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import IntegrityError, StorageExhausted
from repro.common.integrity import (
    MAGIC,
    quarantine,
    read_enveloped,
    write_enveloped,
    wrap,
)
from repro.experiments.render import dumps_compact

#: Record schema tag; replay rejects snapshots from other schemas.
JOURNAL_SCHEMA = "journal/v1"
SNAPSHOT_SCHEMA = "journal.snapshot/v1"

LOG_NAME = "journal.log"
SNAPSHOT_NAME = "snapshot.bin"

#: High-rate, low-value record kinds that skip the per-append fsync
#: (their loss costs cosmetic progress display, never correctness).
_NO_FSYNC_KINDS = frozenset({"job.progress"})


def _read_all(path: Path) -> bytes:
    """Whole-file read via raw fd syscalls (missing file → ``b""``)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return b""
    chunks: List[bytes] = []
    try:
        while True:
            chunk = os.read(fd, 1 << 20)
            if not chunk:
                break
            chunks.append(chunk)
    except OSError:
        return b""
    finally:
        os.close(fd)
    return b"".join(chunks)


def _write_all(path: Path, blob: bytes) -> None:
    """Whole-file create/overwrite via raw fd syscalls."""
    fd = os.open(
        str(path), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
    )
    try:
        os.write(fd, blob)
    finally:
        os.close(fd)


def _parse_log(blob: bytes) -> Tuple[List[Tuple[bytes, Dict]], int, bool]:
    """Walk concatenated enveloped records.

    Returns ``(entries, good_end, torn)``: the verified ``(raw bytes,
    record dict)`` pairs, the offset of the first unparseable byte, and
    whether the walk stopped early (torn tail / corrupt record —
    everything past the failure is untrusted and discarded).
    """
    entries: List[Tuple[bytes, Dict]] = []
    pos = 0
    total = len(blob)
    while pos < total:
        if not blob.startswith(MAGIC, pos):
            return entries, pos, True
        header_end = blob.find(b"\n", pos + len(MAGIC))
        if header_end < 0:
            return entries, pos, True
        try:
            digest_hex, length_text = (
                blob[pos + len(MAGIC):header_end].decode("ascii").split(" ")
            )
            declared = int(length_text)
        except (UnicodeDecodeError, ValueError):
            return entries, pos, True
        start = header_end + 1
        payload = blob[start:start + declared]
        if len(payload) != declared:
            return entries, pos, True
        if hashlib.sha256(payload).hexdigest() != digest_hex:
            return entries, pos, True
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return entries, pos, True
        if not isinstance(record, dict) or not isinstance(
            record.get("seq"), int
        ):
            return entries, pos, True
        end = start + declared
        entries.append((blob[pos:end], record))
        pos = end
    return entries, pos, False


class Journal:
    """Append-only, integrity-enveloped record log with snapshot +
    compaction and a byte quota.

    Thread-safe; shared by the HTTP threads, the worker pool and the
    cluster executor.  ``fsync=False`` trades the power-loss guarantee
    for speed (tests); process crashes are still covered because the
    bytes reach the kernel on every append.
    """

    def __init__(
        self,
        directory,
        quota_bytes: Optional[int] = None,
        fsync: bool = True,
        snapshot_every: int = 512,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Byte budget over ``journal.log`` + ``snapshot.bin``;
        #: ``None`` = unbounded.  Breaches raise ``StorageExhausted``.
        self.quota_bytes = quota_bytes
        self.snapshot_every = snapshot_every
        self._fsync = fsync
        self._lock = threading.Lock()
        #: Append fd (``O_APPEND``, unbuffered): one ``os.write`` per
        #: record keeps the under-lock critical section a single
        #: syscall, and the group-commit fsync happens after release.
        self._fd: Optional[int] = None
        self._seq = 0
        #: Highest seq the on-disk snapshot covers.
        self._covers = 0
        self._log_size = self._size_of(self.log_path)
        self._snapshot_size = self._size_of(self.snapshot_path)
        #: Sticky degradation flag: the last append failed (quota or
        #: ENOSPC).  Cleared by the next successful append.
        self.exhausted = False
        self.counters: Dict[str, int] = {
            "records": 0,
            "append_failures": 0,
            "snapshots": 0,
            "snapshot_failures": 0,
            "compactions": 0,
            "replayed": 0,
            "recovered_jobs": 0,
            "torn_truncated": 0,
            "quarantined": 0,
        }

    # Paths -------------------------------------------------------------
    @property
    def log_path(self) -> Path:
        return self.directory / LOG_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_NAME

    @staticmethod
    def _size_of(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    # Appending ---------------------------------------------------------
    def _note_append_failure(self) -> None:
        with self._lock:
            self.exhausted = True
            self.counters["append_failures"] += 1

    def append(self, kind: str, **fields) -> int:
        """Durably append one record; returns its sequence number.

        Raises :class:`StorageExhausted` on quota breach or any OS
        write failure — the caller decides whether that sheds the
        operation (new submissions) or is merely counted (records about
        work already accepted, via :meth:`append_safe`).
        """
        with self._lock:
            self._seq += 1
            seq = self._seq
        record: Dict[str, object] = {"k": kind, "seq": seq}
        for name, value in fields.items():
            if value is not None:
                record[name] = value
        blob = wrap(dumps_compact(record).encode("utf-8"))
        # The fault point sits outside the lock (it can sleep or raise)
        # and sees the enveloped bytes: truncate models a torn write,
        # bitflip a corrupt record, io_error an ENOSPC-class failure.
        from repro.faults.sites import fault_point

        try:
            mutated = fault_point("journal.append", data=blob)
        except OSError as exc:
            self._note_append_failure()
            raise StorageExhausted(f"journal append failed: {exc}") from exc
        blob = blob if mutated is None else mutated
        with self._lock:
            used = self._log_size + self._snapshot_size
            if (
                self.quota_bytes is not None
                and used + len(blob) > self.quota_bytes
            ):
                self.exhausted = True
                self.counters["append_failures"] += 1
                raise StorageExhausted(
                    f"state quota exhausted ({used} bytes used, record "
                    f"needs {len(blob)}, quota {self.quota_bytes})"
                )
            try:
                if self._fd is None:
                    self._fd = os.open(
                        str(self.log_path),
                        os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                        0o644,
                    )
                os.write(self._fd, blob)
            except OSError as exc:
                self.exhausted = True
                self.counters["append_failures"] += 1
                raise StorageExhausted(
                    f"journal append failed: {exc}"
                ) from exc
            self._log_size += len(blob)
            self.counters["records"] += 1
            self.exhausted = False
            fd = self._fd
        if self._fsync and kind not in _NO_FSYNC_KINDS:
            try:
                os.fsync(fd)
            except OSError:
                # Group commit is best-effort past the flush: the bytes
                # reached the kernel; only the power-loss window widens.
                pass
        return seq

    def append_safe(self, kind: str, **fields) -> Optional[int]:
        """Append without ever raising: storage exhaustion is counted
        (and flagged on :attr:`exhausted`) but must not fail work the
        service already accepted."""
        try:
            return self.append(kind, **fields)
        except StorageExhausted:
            return None

    # Snapshot + compaction ---------------------------------------------
    def snapshot_due(self) -> bool:
        """Whether enough records accumulated past the last snapshot."""
        with self._lock:
            return (self._seq - self._covers) >= self.snapshot_every

    def snapshot(self, gather: Callable[[], Dict]) -> bool:
        """Publish a snapshot and compact the log behind it.

        The seq high-water mark is captured *before* ``gather()`` runs
        (which takes the component locks), so any record racing the
        gather lands in the kept tail as well as the snapshot — safe,
        because records are idempotent and absolute.  Returns whether
        the snapshot was published.
        """
        with self._lock:
            covers = self._seq
        state = gather()
        payload = dumps_compact(
            {"schema": SNAPSHOT_SCHEMA, "covers": covers, "state": state}
        ).encode("utf-8")
        try:
            write_enveloped(
                self.snapshot_path, payload, site="journal.snapshot"
            )
        except OSError:
            with self._lock:
                self.counters["snapshot_failures"] += 1
            return False
        self._compact(covers)
        with self._lock:
            self.counters["snapshots"] += 1
            self._covers = covers
            self._snapshot_size = self._size_of(self.snapshot_path)
            if (
                self.quota_bytes is None
                or self._log_size + self._snapshot_size <= self.quota_bytes
            ):
                # Compaction freed space: storage degradation self-heals.
                self.exhausted = False
        return True

    def _compact(self, covers: int) -> None:
        """Rewrite the log keeping only records with ``seq > covers``.

        Runs entirely under the lock — the swap must not interleave
        with appends — using raw fd syscalls so the critical section is
        a handful of bounded local-disk operations.
        """
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None
            blob = _read_all(self.log_path)
            entries, _end, _torn = _parse_log(blob)
            kept = b"".join(
                raw for raw, record in entries if record["seq"] > covers
            )
            tmp = self.log_path.with_name(LOG_NAME + ".compact.tmp")
            try:
                _write_all(tmp, kept)
                os.replace(tmp, self.log_path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return
            self._log_size = len(kept)
            self.counters["compactions"] += 1

    # Recovery-side reads -----------------------------------------------
    def _read_snapshot(self) -> Tuple[Optional[Dict], int]:
        """The snapshot's ``(state, covers)``; a corrupt snapshot is
        quarantined and recovery proceeds from the full log."""
        if not self.snapshot_path.exists():
            return None, 0
        try:
            payload = read_enveloped(self.snapshot_path, site="journal.replay")
            doc = json.loads(payload.decode("utf-8"))
            if (
                not isinstance(doc, dict)
                or doc.get("schema") != SNAPSHOT_SCHEMA
            ):
                raise IntegrityError(
                    f"{self.snapshot_path}: not a {SNAPSHOT_SCHEMA} snapshot"
                )
            return doc.get("state") or {}, int(doc.get("covers", 0))
        except (OSError, IntegrityError, ValueError):
            quarantine(self.snapshot_path)
            with self._lock:
                self.counters["quarantined"] += 1
                self._snapshot_size = 0
            return None, 0

    def _read_log(self) -> Tuple[List[Tuple[bytes, Dict]], int, bool]:
        if not self.log_path.exists():
            return [], 0, False
        try:
            with open(self.log_path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return [], 0, False
        from repro.faults.sites import fault_point

        try:
            mutated = fault_point("journal.replay", data=blob)
        except OSError:
            # An unreadable log is an empty log: recovery proceeds with
            # whatever the snapshot holds rather than crashing startup.
            return [], 0, False
        blob = blob if mutated is None else mutated
        return _parse_log(blob)

    def replay(self) -> Tuple[Optional[Dict], List[Dict], bool]:
        """Read ``(snapshot_state, tail_records, torn)`` and re-base the
        append sequence past everything seen.

        ``tail_records`` holds every verified record with ``seq`` past
        the snapshot's covers mark, in file order.  Torn/corrupt tails
        stop the walk at the last good record (use :meth:`sweep` to
        quarantine the bad bytes).
        """
        state, covers = self._read_snapshot()
        entries, _end, torn = self._read_log()
        records = [record for _raw, record in entries]
        top = max([covers] + [record["seq"] for record in records])
        tail = [record for record in records if record["seq"] > covers]
        with self._lock:
            self._seq = max(self._seq, top)
            self._covers = covers
            self.counters["replayed"] += len(tail)
        return state, tail, torn

    def sweep(self) -> Dict[str, int]:
        """Startup GC: quarantine a torn/corrupt log tail, drop stale
        temp files, and validate the snapshot envelope.

        Returns ``{"records_ok", "torn_bytes", "quarantined",
        "tmp_removed", "snapshot_ok"}`` — the fsck report the CLI
        prints.  Safe to call on a live journal only before appends
        start (recovery and the ``journal fsck`` command both qualify).
        """
        report = {
            "records_ok": 0,
            "torn_bytes": 0,
            "quarantined": 0,
            "tmp_removed": 0,
            "snapshot_ok": 0,
        }
        for stale in self.directory.glob("*.tmp"):
            try:
                stale.unlink()
                report["tmp_removed"] += 1
            except OSError:
                pass
        blob = b""
        if self.log_path.exists():
            try:
                with open(self.log_path, "rb") as handle:
                    blob = handle.read()
            except OSError:
                blob = b""
        entries, good_end, torn = _parse_log(blob)
        report["records_ok"] = len(entries)
        if torn:
            bad = blob[good_end:]
            report["torn_bytes"] = len(bad)
            corrupt_path = self.log_path.with_name(
                LOG_NAME + ".corrupt"
            )
            with self._lock:
                if self._fd is not None:
                    try:
                        os.close(self._fd)
                    except OSError:
                        pass
                    self._fd = None
                try:
                    _write_all(corrupt_path, bad)
                    log_fd = os.open(str(self.log_path), os.O_WRONLY)
                    try:
                        os.ftruncate(log_fd, good_end)
                    finally:
                        os.close(log_fd)
                except OSError:
                    pass
                else:
                    report["quarantined"] += 1
                    self.counters["torn_truncated"] += 1
                self._log_size = self._size_of(self.log_path)
        snapshot_ok = True
        if self.snapshot_path.exists():
            try:
                payload = read_enveloped(self.snapshot_path)
                doc = json.loads(payload.decode("utf-8"))
                if doc.get("schema") != SNAPSHOT_SCHEMA:
                    raise IntegrityError("wrong snapshot schema")
            except (OSError, IntegrityError, ValueError):
                snapshot_ok = False
                quarantine(self.snapshot_path)
                with self._lock:
                    self.counters["quarantined"] += 1
                    self._snapshot_size = 0
                report["quarantined"] += 1
        report["snapshot_ok"] = 1 if snapshot_ok else 0
        return report

    # Observability ------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counter/gauge snapshot for ``/v1/metrics``."""
        with self._lock:
            stats = dict(self.counters)
            stats["size_bytes"] = self._log_size + self._snapshot_size
            stats["quota_bytes"] = self.quota_bytes or 0
            stats["exhausted"] = 1 if self.exhausted else 0
            stats["seq"] = self._seq
            stats["tail_records"] = self._seq - self._covers
        return stats

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None


# Recovery ---------------------------------------------------------------
@dataclass
class RecoveredJob:
    """One job as reconstructed from snapshot + tail."""

    id: str
    spec: Dict
    result_key: str
    lane: str
    state: str = "queued"
    attempts: int = 0
    created: float = 0.0
    progress: Optional[Tuple[int, int]] = None
    error: Optional[str] = None
    cached: bool = False
    stored: Optional[bool] = None
    cancel_requested: bool = False

    def as_state(self) -> Dict:
        """The absolute record/snapshot form of this job."""
        view: Dict[str, object] = {
            "id": self.id,
            "spec": self.spec,
            "result_key": self.result_key,
            "lane": self.lane,
            "state": self.state,
            "attempts": self.attempts,
            "created": self.created,
        }
        if self.progress is not None:
            view["progress"] = list(self.progress)
        if self.error is not None:
            view["error"] = self.error
        if self.cached:
            view["cached"] = True
        if self.stored is not None:
            view["stored"] = self.stored
        if self.cancel_requested:
            view["cancel"] = True
        return view

    @classmethod
    def from_state(cls, raw: Dict) -> "RecoveredJob":
        progress = raw.get("progress")
        return cls(
            id=str(raw["id"]),
            spec=dict(raw.get("spec") or {}),
            result_key=str(raw.get("result_key", "")),
            lane=str(raw.get("lane", "local")),
            state=str(raw.get("state", "queued")),
            attempts=int(raw.get("attempts", 0)),
            created=float(raw.get("created", 0.0)),
            progress=(
                (int(progress[0]), int(progress[1]))
                if isinstance(progress, (list, tuple)) and len(progress) == 2
                else None
            ),
            error=raw.get("error"),
            cached=bool(raw.get("cached", False)),
            stored=raw.get("stored"),
            cancel_requested=bool(raw.get("cancel", False)),
        )


@dataclass
class RecoveredState:
    """Everything recovery rebuilds the control plane from."""

    jobs: List[RecoveredJob] = field(default_factory=list)
    queue_counters: Dict[str, int] = field(default_factory=dict)
    sched_counters: Dict[str, int] = field(default_factory=dict)
    #: Serial high-water marks — restored so post-crash ids can never
    #: collide with ids pre-crash workers still hold.
    job_serial: int = 0
    worker_serial: int = 0
    lease_serial: int = 0
    #: Highest scheduler-clock reading seen; the restarted scheduler
    #: re-bases its monotonic clock here so TTL math stays correct.
    epoch: float = 0.0
    replayed: int = 0
    torn: bool = False


_LIVE_STATES = ("queued", "running")
_TERMINAL_STATES = ("done", "failed", "cancelled")

def _trailing_serial(identifier: str, prefix: str) -> int:
    """``w-0012`` → 12, ``lease-000007`` → 7, ``job-00031-ab12cd34`` → 31."""
    if not identifier.startswith(prefix):
        return 0
    rest = identifier[len(prefix):]
    digits = rest.split("-", 1)[0]
    try:
        return int(digits)
    except ValueError:
        return 0


def recover(journal: Journal) -> RecoveredState:
    """Replay snapshot + tail into a :class:`RecoveredState`.

    Application is order-tolerant inside the snapshot/tail double-apply
    window because records are absolute: a ``job.finish`` applied on a
    job the snapshot already shows terminal changes nothing, and
    counters only advance on live→terminal edges.
    """
    snapshot_state, tail, torn = journal.replay()
    state = RecoveredState(torn=torn, replayed=len(tail))
    jobs: Dict[str, RecoveredJob] = {}
    order: List[str] = []
    if snapshot_state:
        queue_state = snapshot_state.get("queue") or {}
        for raw in queue_state.get("jobs") or []:
            job = RecoveredJob.from_state(raw)
            jobs[job.id] = job
            order.append(job.id)
        state.queue_counters = dict(queue_state.get("counters") or {})
        state.job_serial = int(queue_state.get("serial", 0))
        sched_state = snapshot_state.get("sched") or {}
        state.sched_counters = dict(sched_state.get("counters") or {})
        state.worker_serial = int(sched_state.get("worker_serial", 0))
        state.lease_serial = int(sched_state.get("lease_serial", 0))
        state.epoch = float(sched_state.get("epoch", 0.0))

    def bump(name: str, amount: int = 1) -> None:
        state.queue_counters[name] = (
            state.queue_counters.get(name, 0) + amount
        )

    for record in tail:
        kind = record.get("k")
        if kind == "job.submit":
            job_id = str(record.get("id", ""))
            if job_id and job_id not in jobs:
                jobs[job_id] = RecoveredJob(
                    id=job_id,
                    spec=dict(record.get("spec") or {}),
                    result_key=str(record.get("result_key", "")),
                    lane=str(record.get("lane", "local")),
                    created=float(record.get("created", 0.0)),
                )
                order.append(job_id)
                bump("submitted")
        elif kind == "job.cached":
            job_id = str(record.get("id", ""))
            if job_id and job_id not in jobs:
                jobs[job_id] = RecoveredJob(
                    id=job_id,
                    spec=dict(record.get("spec") or {}),
                    result_key=str(record.get("result_key", "")),
                    lane=str(record.get("lane", "local")),
                    created=float(record.get("created", 0.0)),
                    state="done",
                    cached=True,
                    stored=True,
                )
                order.append(job_id)
                bump("submitted")
        elif kind == "job.claim":
            job = jobs.get(str(record.get("id", "")))
            if job is not None and job.state in _LIVE_STATES:
                job.state = "running"
        elif kind == "job.attempt":
            job = jobs.get(str(record.get("id", "")))
            if job is not None:
                job.attempts = max(job.attempts, int(record.get("n", 0)))
        elif kind == "job.progress":
            job = jobs.get(str(record.get("id", "")))
            if job is not None:
                job.progress = (
                    int(record.get("done", 0)),
                    int(record.get("total", 0)),
                )
        elif kind == "job.finish":
            job = jobs.get(str(record.get("id", "")))
            final = str(record.get("state", ""))
            if (
                job is not None
                and final in _TERMINAL_STATES
                and job.state in _LIVE_STATES
            ):
                job.state = final
                job.error = record.get("error")
                stored = record.get("stored")
                job.stored = stored if isinstance(stored, bool) else None
                counter = {
                    "done": "completed",
                    "failed": "failed",
                    "cancelled": "cancelled",
                }[final]
                bump(counter)
        elif kind == "job.cancel":
            job = jobs.get(str(record.get("id", "")))
            if job is not None and job.state in _LIVE_STATES:
                job.cancel_requested = True
        elif kind == "job.retry":
            bump("retries")
        elif kind == "sched":
            worker = record.get("worker")
            if isinstance(worker, str):
                state.worker_serial = max(
                    state.worker_serial, _trailing_serial(worker, "w-")
                )
            lease = record.get("lease")
            if isinstance(lease, str):
                state.lease_serial = max(
                    state.lease_serial, _trailing_serial(lease, "lease-")
                )
            t = record.get("t")
            if isinstance(t, (int, float)):
                state.epoch = max(state.epoch, float(t))
        # Unknown kinds (markers, future schema growth) are skipped —
        # replay tolerates forward-compatible records.

    state.jobs = [jobs[job_id] for job_id in order]
    for job in state.jobs:
        state.job_serial = max(
            state.job_serial, _trailing_serial(job.id, "job-")
        )
    journal.counters["recovered_jobs"] += len(state.jobs)
    return state
