"""Thin stdlib client for the simulation service.

Wraps the HTTP JSON API in plain method calls::

    client = ServiceClient("http://127.0.0.1:8031")
    job = client.submit_experiment("fig10", fast=True)
    done = client.wait(job["id"])
    payload = client.result(done["result_key"])

Used by the ``repro-fvc submit``/``status``/``fetch`` CLI verbs and the
end-to-end tests; only :mod:`urllib.request`, no dependencies.

Degradation is opt-in per client: pass a
:class:`~repro.service.resilience.RetryPolicy` to retry transient
failures (connection errors, HTTP 503 — honouring the server's
``Retry-After`` hint) with seeded jittered backoff, and/or a
:class:`~repro.service.resilience.CircuitBreaker` to fail fast once
the service is clearly down instead of hammering it.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Optional

from repro.experiments.render import dumps_compact
from repro.service.resilience import CircuitBreaker, RetryPolicy

#: Default service endpoint; overridable via ``REPRO_SERVICE_URL``.
DEFAULT_URL = "http://127.0.0.1:8031"


def default_service_url() -> str:
    """The service URL the environment selects."""
    return os.environ.get("REPRO_SERVICE_URL", DEFAULT_URL)


class ServiceError(Exception):
    """An API-level failure (HTTP error status or unreachable server).

    ``status`` is the HTTP status (``None`` for transport failures);
    ``retry_after`` carries the server's ``Retry-After`` hint in
    seconds when one was sent (shedding responses).
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after

    @property
    def transient(self) -> bool:
        """Whether retrying could plausibly succeed: the server was
        unreachable, or it answered 503 (shedding)."""
        return self.status is None or self.status == 503


class JobFailed(ServiceError):
    """A waited-on job ended ``failed`` or ``cancelled``."""

    def __init__(self, job: Dict) -> None:
        super().__init__(
            f"job {job.get('id')} ended {job.get('state')}: "
            f"{job.get('error')}"
        )
        self.job = job


class ServiceClient:
    """HTTP client for one service endpoint.

    ``retry`` / ``breaker`` opt this client into transient-failure
    retries and fail-fast circuit breaking (both default off — a bare
    client behaves exactly like the pre-degradation one).  ``sleep`` is
    injectable so retry tests run on a virtual clock.
    """

    def __init__(
        self,
        base_url: Optional[str] = None,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = (base_url or default_service_url()).rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self._sleep = sleep
        # One client is shared across threads (the cluster worker's
        # heartbeat thread and its lease loop), so the diagnostic
        # counter takes a lock rather than racing the increments away.
        self._stats_lock = threading.Lock()
        self.retries_attempted = 0

    # Transport ---------------------------------------------------------
    def _request_once(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> bytes:
        from repro.faults.sites import fault_point

        try:
            fault_point("client.request")
        except OSError as exc:
            # Injected transport failure: surface exactly like a
            # connection error, so the retry/breaker paths engage.
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc}"
            ) from None
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = dumps_compact(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as rsp:
                return rsp.read()
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read()).get("error", "")
            except (ValueError, OSError):
                pass
            retry_after = None
            try:
                header = exc.headers.get("Retry-After")
                if header is not None:
                    retry_after = float(header)
            except (AttributeError, ValueError):
                pass
            raise ServiceError(
                f"{method} {path} -> HTTP {exc.code}"
                + (f": {detail}" if detail else ""),
                status=exc.code,
                retry_after=retry_after,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from None
        except OSError as exc:
            # Raw socket failures (e.g. ECONNRESET mid-read against a
            # server that was just killed or is mid-restart) escape
            # urllib unwrapped; surface them as the same transient
            # transport error so the retry/breaker paths engage.
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc}"
            ) from None

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> bytes:
        attempt = 0
        while True:
            if self.breaker is not None:
                self.breaker.allow()  # raises CircuitOpenError when open
            try:
                payload = self._request_once(method, path, body)
            except ServiceError as exc:
                if self.breaker is not None and exc.transient:
                    self.breaker.record_failure()
                if (
                    self.retry is None
                    or not exc.transient
                    or attempt >= self.retry.retries
                ):
                    raise
                self._sleep(
                    self.retry.delay_for(attempt, retry_after=exc.retry_after)
                )
                attempt += 1
                with self._stats_lock:
                    self.retries_attempted += 1
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return payload

    def _json(self, method: str, path: str, body: Optional[Dict] = None):
        return json.loads(self._request(method, path, body))

    # API ---------------------------------------------------------------
    def healthz(self) -> Dict:
        """Liveness probe."""
        return self._json("GET", "/v1/healthz")

    def metrics(self) -> Dict:
        """The flat counter snapshot."""
        return self._json("GET", "/v1/metrics")

    def submit(self, spec: Dict) -> Dict:
        """Submit a raw job spec; returns the job's JSON view."""
        return self._json("POST", "/v1/jobs", body=spec)

    def submit_experiment(self, experiment_id: str, fast: bool = False) -> Dict:
        """Submit one whole experiment."""
        return self.submit(
            {"type": "experiment", "experiment_id": experiment_id, "fast": fast}
        )

    def submit_cell(self, workload: str, **fields) -> Dict:
        """Submit one engine simulation cell."""
        spec = {"type": "cell", "workload": workload}
        spec.update(fields)
        return self.submit(spec)

    def status(self, job_id: str) -> Dict:
        """One job's current JSON view."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict:
        """Every known job."""
        return self._json("GET", "/v1/jobs")

    def cancel(self, job_id: str) -> Dict:
        """Request cancellation of a queued or running job."""
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def result_bytes(self, key: str) -> bytes:
        """The stored payload, byte-exact as persisted."""
        return self._request("GET", f"/v1/results/{key}")

    def result(self, key: str) -> Dict:
        """The stored payload, JSON-decoded."""
        return json.loads(self.result_bytes(key))

    # Sweeps ------------------------------------------------------------
    def submit_sweep(self, spec: Dict) -> Dict:
        """Submit one ``sweep/v1`` spec; returns the ``sweep.view/1``
        tracking body (idempotent by content address)."""
        return self._json("POST", "/v1/sweeps", body=spec)

    def sweep(self, sweep_id: str) -> Dict:
        """One sweep's current view, including the assembled
        ``sweep.result/1`` payload once every job is done."""
        return self._json("GET", f"/v1/sweeps/{sweep_id}")

    def sweeps(self) -> Dict:
        """Every tracked sweep, submission order."""
        return self._json("GET", "/v1/sweeps")

    def wait_sweep(
        self, sweep_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> Dict:
        """Poll until the sweep reaches a terminal state.

        Returns the final view (``result`` populated on success);
        raises :class:`JobFailed` when any member job ends
        ``failed``/``cancelled`` and :class:`ServiceError` on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.sweep(sweep_id)
            state = view.get("state")
            if state == "done":
                return view
            if state in ("failed", "cancelled"):
                raise JobFailed(
                    {"id": sweep_id, "state": state, "error": view.get("jobs")}
                )
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"sweep {sweep_id} still {state} after {timeout:.0f}s"
                )
            time.sleep(poll)

    def run_sweep(self, spec: Dict, timeout: float = 300.0) -> Dict:
        """Submit a sweep, wait, and return the ``sweep.result/1``
        payload."""
        view = self.submit_sweep(spec)
        if view.get("state") != "done" or "result" not in view:
            view = self.wait_sweep(view["sweep_id"], timeout=timeout)
        return view["result"]

    # Cluster protocol --------------------------------------------------
    def register_worker(
        self,
        name: str = "worker",
        pid: Optional[int] = None,
        host: Optional[str] = None,
    ) -> Dict:
        """Register this process as a cluster worker; returns the
        ``worker/v1`` grant (worker id + timing contract)."""
        return self._json(
            "POST", "/v1/workers",
            body={"name": name, "pid": pid, "host": host},
        )

    def worker_heartbeat(self, worker_id: str) -> Dict:
        """Refresh a worker's liveness; ``known: false`` means
        re-register."""
        return self._json("POST", f"/v1/workers/{worker_id}/heartbeat")

    def deregister_worker(self, worker_id: str) -> Dict:
        """Graceful worker goodbye: drop the registration and re-queue
        held leases."""
        return self._json("DELETE", f"/v1/workers/{worker_id}")

    def workers(self) -> Dict:
        """The ``workers/v1`` fabric view (topology + queue state)."""
        return self._json("GET", "/v1/workers")

    def lease_cells(self, worker_id: str, max_leases: int = 1) -> Dict:
        """Pull up to ``max_leases`` cell leases for ``worker_id``."""
        return self._json(
            "POST", "/v1/cells/lease",
            body={"worker_id": worker_id, "max_leases": max_leases},
        )

    def push_cell_result(
        self, lease_id: str, worker_id: str, payload: Dict
    ) -> Dict:
        """Push one computed ``repro.cell/1`` payload for a lease."""
        return self._json(
            "POST", f"/v1/cells/{lease_id}/result",
            body={"worker_id": worker_id, "payload": payload},
        )

    def fetch_trace_entry(self, workload: str, input_name: str) -> bytes:
        """The coordinator's enveloped trace-cache entry bytes for one
        ``(workload, input)`` — the trace-sharding fetch path."""
        return self._request("GET", f"/v1/traces/{workload}/{input_name}")

    # Convenience -------------------------------------------------------
    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> Dict:
        """Poll until the job reaches a terminal state.

        Returns the final job view; raises :class:`JobFailed` when it
        ends ``failed``/``cancelled`` and :class:`ServiceError` on
        timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            state = job.get("state")
            if state == "done":
                return job
            if state in ("failed", "cancelled"):
                raise JobFailed(job)
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {state} after {timeout:.0f}s"
                )
            time.sleep(poll)

    def run(self, spec: Dict, timeout: float = 300.0) -> Dict:
        """Submit, wait, and return the result payload."""
        job = self.submit(spec)
        if job.get("state") != "done":
            job = self.wait(job["id"], timeout=timeout)
        payload = job.get("result")
        if payload is not None:
            return payload
        return self.result(job["result_key"])
