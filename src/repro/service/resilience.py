"""Client-side degradation: retry policy and circuit breaker.

Two small, composable defences for :class:`repro.service.client
.ServiceClient` against a flaky or overloaded service:

* :class:`RetryPolicy` — jittered exponential backoff for *transient*
  failures (connection refused/reset, HTTP 503).  The jitter is drawn
  from a generator seeded via :func:`repro.common.rng.make_rng`, so a
  client's retry schedule is reproducible; a server-supplied
  ``Retry-After`` hint floors the delay, so a shedding server's advice
  is always respected.
* :class:`CircuitBreaker` — the classic closed → open → half-open
  state machine.  After ``failure_threshold`` consecutive transport
  failures the breaker opens and calls fail fast
  (:class:`CircuitOpenError`) without touching the network; after
  ``reset_timeout`` seconds one probe call is allowed through
  (half-open), and its outcome closes or re-opens the circuit.  The
  clock is injectable, so tests drive the state machine
  deterministically without sleeping.

Neither object is thread-safe on its own sub-second counters by
accident: the breaker takes a lock, the policy is immutable except for
its private RNG.  Both default to OFF in :class:`ServiceClient` — you
opt in per client, as the CLI's ``submit`` verb does.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.common.rng import make_rng

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(Exception):
    """A call failed fast because the circuit breaker is open."""

    def __init__(self, remaining: float) -> None:
        super().__init__(
            f"circuit breaker is open (retry in {remaining:.1f}s)"
        )
        self.remaining = remaining


class CircuitBreaker:
    """Consecutive-failure circuit breaker with an injectable clock.

    ``allow()`` gates a call; ``record_success()`` /
    ``record_failure()`` report its outcome.  State transitions:

    * **closed** — calls flow; ``failure_threshold`` consecutive
      failures trip the breaker open.
    * **open** — ``allow()`` raises :class:`CircuitOpenError` until
      ``reset_timeout`` seconds have passed on the injected clock.
    * **half-open** — exactly one probe call is allowed; success
      closes the breaker, failure re-opens it (restarting the timer).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.fast_failures = 0  # calls refused without touching the net

    @property
    def state(self) -> str:
        with self._lock:
            return self._observe()

    def _observe(self) -> str:
        # Lock held.  Open circuits decay to half-open by clock alone.
        if self._state == OPEN:
            if self._clock() - self._opened_at >= self.reset_timeout:
                self._state = HALF_OPEN
        return self._state

    def allow(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` when open."""
        with self._lock:
            state = self._observe()
            if state == OPEN:
                self.fast_failures += 1
                remaining = self.reset_timeout - (
                    self._clock() - self._opened_at
                )
                raise CircuitOpenError(max(remaining, 0.0))

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            state = self._observe()
            if state == HALF_OPEN:
                # The probe failed: straight back to open.
                self._state = OPEN
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()


class RetryPolicy:
    """Seeded, jittered exponential backoff for transient failures.

    ``delay_for(attempt)`` (attempt 0 = the delay before the first
    retry) is ``backoff * 2^attempt`` capped at ``max_backoff``, times
    a jitter factor in ``[1, 1 + jitter]`` drawn from a seeded RNG —
    reproducible, but de-synchronised across clients with different
    seeds (no thundering herd).  A server ``Retry-After`` hint floors
    the result.
    """

    def __init__(
        self,
        retries: int = 3,
        backoff: float = 0.2,
        max_backoff: float = 5.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.jitter = jitter
        self._rng = make_rng("service", "client", "retry", seed)

    def delay_for(
        self, attempt: int, retry_after: Optional[float] = None
    ) -> float:
        base = min(self.backoff * (2 ** attempt), self.max_backoff)
        delay = base * (1.0 + self.jitter * self._rng.random())
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay
