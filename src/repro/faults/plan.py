"""Fault-plan parsing and deterministic clause matching.

The plan grammar (full spec in ``docs/ROBUSTNESS.md``)::

    plan    := clause (';' clause)*
    clause  := 'seed=' INT
             | site ':' action ['(' NUMBER ')'] ['@' when]
    when    := INT                  -- exactly that call ordinal (1-based)
             | INT '-' INT          -- every ordinal in the range
             | 'every=' INT         -- every K-th call
             | 'p=' FLOAT           -- seeded coin flip per call

Examples::

    trace_cache.read:io_error@1
    result_store.write:bitflip@2
    worker.child:crash@1;worker.child:slow(0.05)@2-3
    server.request:delay(0.01)@every=3;seed=7

Matching is purely a function of (plan text, per-site call ordinal):
ordinal clauses compare against a per-site counter, and probabilistic
clauses draw from a private generator seeded via
:func:`repro.common.rng.make_rng` from the plan seed and site name —
so replaying a plan over the same command injects at identical points,
which the chaos suite asserts.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng

#: Actions a clause may name.  ``truncate``/``bitflip`` mutate payload
#: bytes and are only valid at data-bearing sites; the rest apply
#: anywhere the site's catalog entry allows.
ACTIONS = (
    "io_error",  # raise InjectedIOError (an OSError) at the site
    "raise",     # raise FaultInjected (a typed ReproError)
    "delay",     # sleep arg seconds (default 0.01), then proceed
    "slow",      # alias of delay with a larger default (0.05)
    "hang",      # sleep arg seconds (default 300) — park the caller
    "crash",     # os._exit(70): the process dies without cleanup
    "truncate",  # drop the second half of the payload bytes
    "bitflip",   # flip one deterministically-chosen payload bit
)

#: Actions that transform payload bytes (need a data-bearing site).
DATA_ACTIONS = ("truncate", "bitflip")

_CLAUSE_RE = re.compile(
    r"^(?P<site>[a-z_][a-z0-9_.]*)"
    r":(?P<action>[a-z_]+)"
    r"(?:\((?P<arg>[0-9]+(?:\.[0-9]+)?)\))?"
    r"(?:@(?P<when>[0-9a-z=.\-]+))?$"
)


class FaultSpecError(ConfigurationError):
    """A ``REPRO_FAULTS`` / ``--faults`` spec does not parse or names
    an unknown site, action, or trigger."""


@dataclass(frozen=True)
class When:
    """A clause's trigger: which call ordinals it fires on."""

    kind: str  # "ordinals" | "every" | "prob"
    first: int = 1
    last: int = 1
    step: int = 1
    probability: float = 0.0

    def matches(self, ordinal: int, rng) -> bool:
        if self.kind == "ordinals":
            return self.first <= ordinal <= self.last
        if self.kind == "every":
            return ordinal % self.step == 0
        # "prob": one seeded draw per evaluated call — deterministic
        # given the plan seed and the site's call sequence.
        return rng.random() < self.probability

    def describe(self) -> str:
        if self.kind == "ordinals":
            if self.first == self.last:
                return f"@{self.first}"
            return f"@{self.first}-{self.last}"
        if self.kind == "every":
            return f"@every={self.step}"
        return f"@p={self.probability:g}"


@dataclass(frozen=True)
class FaultClause:
    """One armed ``site:action`` rule of a plan."""

    site: str
    action: str
    arg: Optional[float] = None
    when: When = field(default_factory=When)

    def describe(self) -> str:
        arg = f"({self.arg:g})" if self.arg is not None else ""
        return f"{self.site}:{self.action}{arg}{self.when.describe()}"


@dataclass(frozen=True)
class Injection:
    """One recorded firing: which clause hit which site call."""

    site: str
    ordinal: int
    action: str


def _parse_when(text: Optional[str], clause: str) -> When:
    if text is None:
        return When(kind="ordinals", first=1, last=1)
    if text.startswith("every="):
        try:
            step = int(text[len("every="):])
        except ValueError:
            step = 0
        if step <= 0:
            raise FaultSpecError(f"bad trigger {text!r} in clause {clause!r}")
        return When(kind="every", step=step)
    if text.startswith("p="):
        try:
            probability = float(text[len("p="):])
        except ValueError:
            probability = -1.0
        if not 0.0 <= probability <= 1.0:
            raise FaultSpecError(f"bad trigger {text!r} in clause {clause!r}")
        return When(kind="prob", probability=probability)
    first, sep, last = text.partition("-")
    try:
        lo = int(first)
        hi = int(last) if sep else lo
    except ValueError:
        raise FaultSpecError(
            f"bad trigger {text!r} in clause {clause!r}"
        ) from None
    if lo <= 0 or hi < lo:
        raise FaultSpecError(f"bad trigger {text!r} in clause {clause!r}")
    return When(kind="ordinals", first=lo, last=hi)


class FaultPlan:
    """A parsed fault plan: clauses, per-site counters, injection log.

    Thread-safe — the service's HTTP threads and worker threads share
    one installed plan.  Counters advance on every :meth:`decide`
    (fired or not), so a clause's ``@3`` always means "the third call
    at that site in this process".
    """

    def __init__(self, clauses: List[FaultClause], seed: int = 0, text: str = "") -> None:
        self.clauses = list(clauses)
        self.seed = seed
        self.text = text
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._rngs: Dict[str, object] = {}
        #: Every firing, in decision order — the replay-audit trail.
        self.injections: List[Injection] = []

    # Construction ------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a plan spec; raises :class:`FaultSpecError` on any
        malformed clause, unknown site, or unknown action."""
        from repro.faults.sites import SITE_CATALOG

        clauses: List[FaultClause] = []
        seed = 0
        for raw in text.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            if raw.startswith("seed="):
                try:
                    seed = int(raw[len("seed="):])
                except ValueError:
                    raise FaultSpecError(f"bad seed clause {raw!r}") from None
                continue
            match = _CLAUSE_RE.match(raw)
            if match is None:
                raise FaultSpecError(
                    f"cannot parse fault clause {raw!r} "
                    "(expected site:action[(arg)][@when])"
                )
            site = match.group("site")
            action = match.group("action")
            entry = SITE_CATALOG.get(site)
            if entry is None:
                known = ", ".join(sorted(SITE_CATALOG))
                raise FaultSpecError(
                    f"unknown fault site {site!r} (have: {known})"
                )
            if action not in ACTIONS:
                raise FaultSpecError(
                    f"unknown fault action {action!r} "
                    f"(have: {', '.join(ACTIONS)})"
                )
            if action in DATA_ACTIONS and not entry.carries_data:
                raise FaultSpecError(
                    f"action {action!r} needs payload bytes, but site "
                    f"{site!r} carries none"
                )
            arg = match.group("arg")
            clauses.append(
                FaultClause(
                    site=site,
                    action=action,
                    arg=float(arg) if arg is not None else None,
                    when=_parse_when(match.group("when"), raw),
                )
            )
        return cls(clauses, seed=seed, text=text)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The plan ``REPRO_FAULTS`` selects, or ``None`` when unset
        or empty."""
        import os

        environ = environ if environ is not None else os.environ
        text = environ.get("REPRO_FAULTS", "").strip()
        if not text:
            return None
        return cls.parse(text)

    # Matching ----------------------------------------------------------
    def _rng_for(self, site: str):
        rng = self._rngs.get(site)
        if rng is None:
            rng = make_rng("faults", self.seed, site)
            self._rngs[site] = rng
        return rng

    def decide(self, site: str) -> Optional[Tuple[FaultClause, int]]:
        """Advance ``site``'s call counter and return the first armed
        clause matching this ordinal (with the ordinal), or ``None``."""
        with self._lock:
            ordinal = self._counters.get(site, 0) + 1
            self._counters[site] = ordinal
            for clause in self.clauses:
                if clause.site != site:
                    continue
                if clause.when.matches(ordinal, self._rng_for(site)):
                    self.injections.append(
                        Injection(site=site, ordinal=ordinal, action=clause.action)
                    )
                    return clause, ordinal
        return None

    # Introspection ------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Per-site call counts so far (copy)."""
        with self._lock:
            return dict(self._counters)

    def describe(self) -> str:
        """Canonical one-line rendering of the plan."""
        parts = [clause.describe() for clause in self.clauses]
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)

    def __repr__(self) -> str:
        return f"FaultPlan({self.describe()!r}, fired={len(self.injections)})"
