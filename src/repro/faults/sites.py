"""Named injection sites and the process-wide active plan.

An injection site is one line of defence-relevant code — a store read,
an atomic publish, a worker attempt — that consults the active fault
plan via :func:`fault_point` before (or while) doing its real work.
With no plan installed the call is a dictionary miss and an early
return; the hot paths pay essentially nothing.

The site catalog below is the authoritative list; plans naming any
other site are rejected at parse time, and ``docs/ROBUSTNESS.md``
documents each entry.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import FaultInjected
from repro.common.rng import make_rng


class InjectedIOError(OSError):
    """An injected disk/IO failure.

    Subclasses :class:`OSError` so it travels the exact error-handling
    paths a real ``EIO`` would — the point is to prove those paths,
    not to add new ones.
    """


@dataclass(frozen=True)
class Site:
    """One catalog entry."""

    name: str
    description: str
    #: Whether :func:`fault_point` is handed payload bytes here (and
    #: therefore whether ``truncate``/``bitflip`` make sense).
    carries_data: bool = False


def _catalog(*sites: Site) -> Dict[str, Site]:
    return {site.name: site for site in sites}


#: Every injection site threaded through the codebase.
SITE_CATALOG: Dict[str, Site] = _catalog(
    Site(
        "trace_cache.read",
        "Trace-cache entry read: the enveloped bytes as loaded from disk.",
        carries_data=True,
    ),
    Site(
        "trace_cache.write",
        "Trace-cache entry write: the enveloped bytes about to be persisted.",
        carries_data=True,
    ),
    Site(
        "trace_cache.write.publish",
        "Between the trace-cache temp-file write and its atomic rename.",
    ),
    Site(
        "result_store.read",
        "Result-store entry read: the enveloped bytes as loaded from disk.",
        carries_data=True,
    ),
    Site(
        "result_store.write",
        "Result-store entry write: the enveloped bytes about to be persisted.",
        carries_data=True,
    ),
    Site(
        "result_store.write.publish",
        "Between the result-store temp-file write and its atomic rename.",
    ),
    Site(
        "checkpoint.read",
        "Checkpoint record read: the enveloped bytes as loaded from disk.",
        carries_data=True,
    ),
    Site(
        "checkpoint.write",
        "Checkpoint record write: the enveloped bytes about to be persisted.",
        carries_data=True,
    ),
    Site(
        "checkpoint.write.publish",
        "Between the checkpoint temp-file write and its atomic rename.",
    ),
    Site(
        "journal.append",
        "Control-plane journal append: the enveloped record bytes about "
        "to be written to the write-ahead log (io_error models ENOSPC, "
        "truncate a torn write, bitflip a corrupt record).",
        carries_data=True,
    ),
    Site(
        "journal.snapshot",
        "Control-plane snapshot write: the enveloped snapshot bytes "
        "about to be atomically published.",
        carries_data=True,
    ),
    Site(
        "journal.replay",
        "Recovery-time journal/snapshot read: the bytes as loaded from "
        "disk, before any record is applied.",
        carries_data=True,
    ),
    Site(
        "engine.cell",
        "Entry of repro.engine.cells.run_cell, before any simulation.",
    ),
    Site(
        "worker.child",
        "One service worker attempt, applied inside the child process "
        "(crash/hang/slow/raise); the deciding counter lives in the "
        "parent, so @1 means the job's first attempt.",
    ),
    Site(
        "server.request",
        "Entry of every HTTP request handler in the service front end.",
    ),
    Site(
        "client.request",
        "Entry of every ServiceClient HTTP request (transport layer).",
    ),
    Site(
        "cluster.lease",
        "Coordinator-side entry of every /v1/cells/lease grant, before "
        "any task is dequeued or stolen.",
    ),
    Site(
        "cluster.heartbeat",
        "Coordinator-side receipt of every worker heartbeat, before "
        "the liveness clock is refreshed.",
    ),
    Site(
        "cluster.result",
        "Coordinator-side ingest of every pushed cell result, before "
        "the lease is resolved.",
    ),
)

# The active plan -------------------------------------------------------
_UNRESOLVED = object()
_active = _UNRESOLVED


def install(plan) -> None:
    """Install ``plan`` (a :class:`~repro.faults.plan.FaultPlan` or
    ``None``) as this process's active plan."""
    global _active
    _active = plan


def reset() -> None:
    """Forget the active plan; the next :func:`active` re-reads
    ``REPRO_FAULTS``.  Test plumbing."""
    global _active
    _active = _UNRESOLVED


def active():
    """The process-wide active plan, resolved lazily from
    ``REPRO_FAULTS`` on first use (child processes therefore inherit
    the environment's plan automatically)."""
    global _active
    if _active is _UNRESOLVED:
        from repro.faults.plan import FaultPlan

        _active = FaultPlan.from_env()
    return _active


# Applying actions ------------------------------------------------------
_DEFAULT_SLEEP = {"delay": 0.01, "slow": 0.05, "hang": 300.0}


def _flip_one_bit(data: bytes, seed: int, site: str, ordinal: int) -> bytes:
    if not data:
        return data
    rng = make_rng("faults", "bitflip", seed, site, ordinal)
    position = rng.randrange(len(data) * 8)
    mutated = bytearray(data)
    mutated[position // 8] ^= 1 << (position % 8)
    return bytes(mutated)


def _apply(clause, ordinal: int, site: str, data: Optional[bytes], seed: int):
    # Observability first: the action may raise or exit the process, and
    # an injected fault is exactly the kind of event a trace should show.
    from repro import obs
    from repro.obs import tracing

    action = clause.action
    tracing.event(
        "fault_injected", site=site, action=action, ordinal=ordinal
    )
    if obs.enabled():
        obs.registry().counter("faults_injected_total").inc()
    if action == "io_error":
        raise InjectedIOError(
            f"injected io_error at {site} (call #{ordinal})"
        )
    if action == "raise":
        raise FaultInjected(
            f"injected fault at {site} (call #{ordinal})"
        )
    if action in ("delay", "slow", "hang"):
        time.sleep(clause.arg if clause.arg is not None else _DEFAULT_SLEEP[action])
        return data
    if action == "crash":
        os._exit(70)
    if action == "truncate":
        return data if data is None else data[: len(data) // 2]
    if action == "bitflip":
        return data if data is None else _flip_one_bit(data, seed, site, ordinal)
    raise FaultInjected(f"unhandled fault action {action!r}")  # pragma: no cover


def fault_point(site: str, data: Optional[bytes] = None) -> Optional[bytes]:
    """Consult the active plan at ``site``.

    Returns ``data`` unchanged when no plan is installed or no clause
    fires; otherwise applies the clause — raising, sleeping, exiting
    the process, or returning a mutated copy of ``data``.
    """
    plan = active()
    if plan is None:
        return data
    decision = plan.decide(site)
    if decision is None:
        return data
    clause, ordinal = decision
    return _apply(clause, ordinal, site, data, plan.seed)


def decide_child_fault(site: str = "worker.child"):
    """Parent-side decision for a fault applied inside a child process.

    Returns the picklable ``(clause, ordinal)`` pair (or ``None``) so
    the parent's counters govern ordinals across attempts — ``@1``
    means "the first attempt", even though each attempt is a fresh
    process.
    """
    plan = active()
    if plan is None:
        return None
    return plan.decide(site)


def apply_child_fault(decision) -> None:
    """Apply a parent-decided fault inside the child (see
    :func:`decide_child_fault`).  ``crash`` hard-exits, ``hang``/
    ``slow``/``delay`` sleep, ``raise``/``io_error`` raise."""
    if decision is None:
        return
    clause, ordinal = decision
    _apply(clause, ordinal, clause.site, None, 0)
