"""Deterministic fault injection (see ``docs/ROBUSTNESS.md``).

A *fault plan* — parsed from ``REPRO_FAULTS=<spec>`` or ``run
--faults`` — arms named **injection sites** threaded through the
repository's IO and execution paths: the trace cache, the result
store, engine cells, service worker children and the HTTP server.
Each armed site can raise, delay, hang, crash the process, truncate or
bit-flip payload bytes, at exact call ordinals, so every failure mode
the durability layers claim to survive can be provoked on demand and
replayed bit-identically.

Two principles govern the design:

* **determinism** — plans are seeded through
  :func:`repro.common.rng.make_rng` and matched against per-site call
  counters, so the same plan over the same command injects at exactly
  the same points every run;
* **observability** — every firing is recorded in the plan's
  injection log, so tests can assert both *that* and *where* faults
  landed.

Nothing in this package runs unless a plan is installed; the default
(`REPRO_FAULTS` unset) is a no-op on every hot path.
"""

from repro.common.errors import FaultInjected
from repro.faults.plan import FaultClause, FaultPlan, FaultSpecError
from repro.faults.sites import (
    SITE_CATALOG,
    InjectedIOError,
    active,
    fault_point,
    install,
    reset,
)

__all__ = [
    "FaultClause",
    "FaultInjected",
    "FaultPlan",
    "FaultSpecError",
    "InjectedIOError",
    "SITE_CATALOG",
    "active",
    "fault_point",
    "install",
    "reset",
]
