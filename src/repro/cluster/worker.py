"""The thin cluster worker: register, heartbeat, lease, compute, push.

``repro-fvc worker --coordinator URL`` runs :func:`run_worker`: an
event loop that registers with the coordinator, heartbeats from a
daemon thread, pulls cell leases in small batches and executes each
cell through the one shared :func:`repro.engine.cells.run_cell` path —
so a worker-computed cell is bit-identical to a locally computed one
by construction.

The worker is deliberately stateless: everything it needs travels over
the ``/v1`` protocol.  Missing workload traces resolve through
:class:`ClusterTraceCache` — local content-addressed cache first, then
a fetch of the coordinator's enveloped entry (integrity re-verified
before use and before persisting), then local synthesis as the final
fallback.  Transport failures lean on the PR-4 machinery: the client
is armed with a seeded-backoff :class:`~repro.service.resilience
.RetryPolicy` and a :class:`~repro.service.resilience.CircuitBreaker`,
and anything that still escapes is treated as transient — the worker
sleeps and re-polls, and the coordinator's lease timeout covers the
cells it was holding.

SIGTERM/SIGINT finish the in-flight cell, push its result, deregister,
and exit; SIGKILL is the case the lease protocol exists for.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import zlib
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.common.errors import IntegrityError, TraceFormatError
from repro.common.integrity import unwrap, write_enveloped
from repro.engine.cells import cell_span_key, run_cell
from repro.engine.trace_cache import TraceCache, default_cache_dir
from repro.service.api import cell_payload
from repro.service.client import ServiceClient, ServiceError
from repro.service.resilience import CircuitBreaker, CircuitOpenError, RetryPolicy
from repro.trace.io import trace_from_bytes
from repro.trace.trace import Trace
from repro.workloads.store import TraceStore
from repro.cluster.protocol import DEFAULT_LEASE_BATCH, cell_from_fields


@dataclass
class WorkerConfig:
    """One worker process's knobs (CLI flags map 1:1)."""

    coordinator: str
    name: str = "worker"
    #: Leases pulled per request (>1 amortises round trips; stealing
    #: rebalances the skew).
    batch: int = DEFAULT_LEASE_BATCH
    #: Idle re-poll interval when the coordinator has nothing to lease.
    poll: float = 0.5
    #: HTTP timeout per request.
    timeout: float = 30.0
    #: Exit after this many completed cells (test/benchmark bound).
    max_cells: Optional[int] = None
    #: Exit once the coordinator drains (after completing >= 1 cell).
    once: bool = False


class ClusterTraceCache(TraceCache):
    """A worker-side trace cache that fetches misses from the
    coordinator before falling back to local synthesis.

    The fetched bytes are the coordinator's entry file verbatim —
    integrity envelope intact — so the worker re-verifies the sha256
    before decoding, and persists the verified payload into its own
    content-addressed cache (same address, same bytes).  This is the
    trace-sharding half of the fabric: a trace synthesised anywhere is
    served everywhere.
    """

    def __init__(self, directory, client: ServiceClient, persist: bool = True) -> None:
        super().__init__(directory)
        self.client = client
        #: ``False`` mirrors ``REPRO_TRACE_CACHE=off``: still fetch
        #: remotely, never touch the local disk.
        self.persist = persist
        self.remote_fetches = 0

    def _fetch_remote(self, workload_name: str, input_name: str) -> Optional[Trace]:
        from repro.obs import tracing

        try:
            blob = self.client.fetch_trace_entry(workload_name, input_name)
        except (ServiceError, CircuitOpenError):
            return None
        try:
            payload = unwrap(
                blob, source=f"remote:{workload_name}/{input_name}"
            )
            trace = trace_from_bytes(
                zlib.decompress(payload),
                source=f"remote:{workload_name}/{input_name}",
            )
        except (IntegrityError, TraceFormatError, zlib.error, EOFError):
            # A corrupt wire copy is a miss, never a crash — synthesis
            # still produces the identical trace.
            return None
        self.remote_fetches += 1
        if obs.enabled():
            obs.registry().counter("cluster_trace_fetches_total").inc()
        tracing.event(
            "cluster_trace_fetched", workload=workload_name, input=input_name
        )
        if self.persist:
            try:
                path = self.path_for(workload_name, input_name)
                self.directory.mkdir(parents=True, exist_ok=True)
                write_enveloped(path, payload, site="trace_cache.write")
                self.stores += 1
            except OSError:
                pass  # read-only cache dir: serve the trace unpersisted
        return trace

    def load_or_generate(self, workload_name: str, input_name: str = "ref") -> Trace:
        if self.persist:
            trace = self.load(workload_name, input_name)
            if trace is not None:
                return trace
        trace = self._fetch_remote(workload_name, input_name)
        if trace is not None:
            return trace
        if self.persist:
            return super().load_or_generate(workload_name, input_name)
        from repro.workloads.registry import get_workload

        return get_workload(workload_name).generate_trace(input_name)


class _Registration:
    """The worker's current identity, shared with the heartbeat thread."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.worker_id: Optional[str] = None
        self.heartbeat_seconds = 3.0

    def adopt(self, grant: dict) -> None:
        with self.lock:
            self.worker_id = grant["worker_id"]
            self.heartbeat_seconds = max(
                0.2, float(grant.get("heartbeat_seconds", 3.0))
            )

    def current(self) -> Optional[str]:
        with self.lock:
            return self.worker_id


def _register(client: ServiceClient, config: WorkerConfig, reg: _Registration) -> None:
    grant = client.register_worker(
        name=config.name, pid=os.getpid(), host=socket.gethostname()
    )
    reg.adopt(grant)


def _heartbeat_loop(
    client: ServiceClient,
    config: WorkerConfig,
    reg: _Registration,
    stop: threading.Event,
) -> None:
    while not stop.wait(reg.heartbeat_seconds):
        worker_id = reg.current()
        if worker_id is None:
            continue
        try:
            ack = client.worker_heartbeat(worker_id)
        except (ServiceError, CircuitOpenError):
            continue  # transient: the TTL gives us slack for 2 misses
        if not ack.get("known", False):
            try:
                _register(client, config, reg)
            except (ServiceError, CircuitOpenError):
                continue


def run_worker(config: WorkerConfig) -> int:
    """Run one worker process until stopped or drained.

    Returns the process exit code (0 on a clean stop).  Installs
    SIGTERM/SIGINT handlers when running in the main thread.
    """
    from repro.obs import tracing

    client = ServiceClient(
        config.coordinator,
        timeout=config.timeout,
        retry=RetryPolicy(retries=3, backoff=0.2, seed=os.getpid()),
        breaker=CircuitBreaker(failure_threshold=8, reset_timeout=2.0),
    )
    stop = threading.Event()

    def _graceful(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)

    reg = _Registration()
    try:
        _register(client, config, reg)
    except (ServiceError, CircuitOpenError) as exc:
        print(f"worker: cannot register with {config.coordinator}: {exc}")
        return 1

    persist = os.environ.get("REPRO_TRACE_CACHE", "").lower() not in (
        "off", "0", "no", "false",
    )
    store = TraceStore(
        disk_cache=ClusterTraceCache(default_cache_dir(), client, persist=persist)
    )

    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(client, config, reg, stop),
        name="repro-worker-heartbeat",
        daemon=True,
    )
    beat.start()

    completed = 0
    exit_code = 0
    try:
        while not stop.is_set():
            if config.max_cells is not None and completed >= config.max_cells:
                break
            worker_id = reg.current()
            try:
                grant = client.lease_cells(worker_id, max_leases=config.batch)
            except (ServiceError, CircuitOpenError):
                stop.wait(config.poll)
                continue
            if not grant.get("known", False):
                try:
                    _register(client, config, reg)
                except (ServiceError, CircuitOpenError):
                    stop.wait(config.poll)
                continue
            leases = grant.get("leases", [])
            if not leases:
                if config.once and completed > 0:
                    break
                stop.wait(config.poll)
                continue
            for lease in leases:
                if stop.is_set():
                    break  # unpushed leases re-issue via their timeout
                cell = cell_from_fields(lease["cell"])
                with tracing.span(
                    "cluster.cell",
                    key=cell_span_key(cell),
                    attrs={
                        "lease": lease["lease_id"],
                        "attempt": lease["attempt"],
                    },
                ):
                    result = run_cell(cell, store)
                payload = cell_payload(result)
                try:
                    ack = client.push_cell_result(
                        lease["lease_id"], reg.current(), payload
                    )
                except (ServiceError, CircuitOpenError):
                    continue  # lease expiry covers the lost push
                if not ack.get("accepted", False):
                    # Stale lease — expired, stolen, or the coordinator
                    # restarted and invalidated every pre-crash grant.
                    # The rest of this batch is just as dead: drop it
                    # and re-lease (re-registering if needed) instead
                    # of computing cells nobody will accept.
                    break
                completed += 1
                if obs.enabled():
                    obs.registry().counter("cluster_cells_total").inc()
                if (
                    config.max_cells is not None
                    and completed >= config.max_cells
                ):
                    break
    finally:
        stop.set()
        worker_id = reg.current()
        if worker_id is not None:
            try:
                client.deregister_worker(worker_id)
            except (ServiceError, CircuitOpenError):
                pass
        beat.join(timeout=2.0)
    return exit_code
