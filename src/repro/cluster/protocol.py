"""Wire vocabulary shared by the coordinator and its workers.

The cluster protocol is a thin extension of the service's ``/v1`` JSON
API (``docs/CLUSTER.md`` documents every endpoint).  This module holds
what both sides must agree on: schema tags, default timing constants,
and the cell <-> JSON converters.

A leased cell travels as its plain field dict (the
:class:`~repro.engine.cells.SimCell` dataclass fields), and a cell's
*task key* is exactly the service's :func:`repro.service.api
.result_key` over the equivalent ``{"type": "cell", ...}`` job spec.
Sharing the key space is what makes the result store a cluster-wide
memo: a cell computed by a remote worker is stored under the same key
a direct ``POST /v1/jobs`` cell submission resolves to, so a cell
computed anywhere is served everywhere.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.cells import SimCell
from repro.service.api import _CELL_FIELDS, normalise_spec, result_key

#: Schema tag on registration responses and heartbeat acknowledgements.
WORKER_SCHEMA = "worker/v1"

#: Schema tag on the ``GET /v1/workers`` fabric view.
WORKERS_SCHEMA = "workers/v1"

#: Schema tag on lease grants (``POST /v1/cells/lease`` responses).
LEASE_SCHEMA = "lease/v1"

#: How long a granted lease stays valid before the coordinator assumes
#: the holder is lost and re-issues the cell.
DEFAULT_LEASE_SECONDS = 30.0

#: How long a silent worker stays registered.  Workers heartbeat at a
#: third of this, so one dropped beat never kills a healthy worker.
DEFAULT_WORKER_TTL_SECONDS = 10.0

#: How many leases a worker pulls per request by default.  Values > 1
#: amortise round trips; the coordinator's work stealing rebalances
#: any resulting skew.
DEFAULT_LEASE_BATCH = 2

#: Lease attempts per cell before the coordinator stops re-issuing and
#: computes the cell locally (the liveness backstop).
DEFAULT_MAX_ATTEMPTS = 3


def cell_fields(cell: SimCell) -> Dict[str, object]:
    """A cell as its plain JSON field dict (the wire form)."""
    return {name: getattr(cell, name) for name in _CELL_FIELDS}


def cell_from_fields(fields: Dict[str, object]) -> SimCell:
    """Rebuild a validated :class:`SimCell` from its wire form.

    Goes through :func:`~repro.service.api.normalise_spec`, so a
    malformed or unknown-workload cell raises the same typed errors a
    bad job submission would.
    """
    spec = dict(fields)
    spec["type"] = "cell"
    normalised = normalise_spec(spec)
    return SimCell(**{name: normalised[name] for name in _CELL_FIELDS})


def cell_task_key(cell: SimCell) -> str:
    """The content-addressed key of one cell's result.

    Identical to the result key of the equivalent ``type: cell`` job
    spec, by construction — the cluster and the job API share one
    result namespace.
    """
    spec: Dict[str, object] = {"type": "cell"}
    spec.update(cell_fields(cell))
    return result_key(spec)
