"""Coordinator-side cluster state: leases, liveness, work stealing.

:class:`ClusterScheduler` is the fabric's brain.  It tracks registered
workers (heartbeat-refreshed, TTL-expired), keeps the queue of pending
cell tasks, grants time-bounded **leases** over them, and folds pushed
results back into plan-ordered :class:`~repro.engine.cells.CellResult`
lists.  :class:`ClusterExecutor` is the thin thread layer that claims
``cluster``-lane jobs from the service's :class:`~repro.service.jobs
.JobQueue` and drives whole specs through the scheduler.

Failure model (see ``docs/CLUSTER.md``):

* **worker loss** — a worker that stops heartbeating past its TTL is
  dropped and every lease it held is re-queued (front of the queue, so
  takeovers run first);
* **lease expiry** — a lease older than the lease timeout is revoked
  and its cell re-queued even while the holder still heartbeats (a
  hung simulation on a live worker);
* **work stealing** — a worker that asks for work while the queue is
  drained steals the youngest lease from the most-loaded worker
  (holders keep at least one), rebalancing batch skew;
* **retry budget + local fallback** — a cell whose lease was issued
  ``max_attempts`` times stops being offered to workers and is
  computed by the coordinator itself; the same fallback engages when
  no live workers remain.  The fabric therefore *always* terminates
  with exactly the payload a local run produces.

Every one of those transitions is appended to :attr:`ClusterScheduler
.events` — the lease audit log — and counted in the ``cluster_*``
metrics (``/v1/metrics``).  Duplicated computation from stale leases
is harmless by design: cells are deterministic, so any copy of a cell
produces the same bytes, and stale pushes are acknowledged-and-ignored.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set

from repro.engine.cells import CellResult, SimCell, run_cell
from repro.engine.runner import RunCancelled
from repro.service.api import CELL_SCHEMA, cell_payload, payload_bytes
from repro.cluster.protocol import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_WORKER_TTL_SECONDS,
    LEASE_SCHEMA,
    WORKER_SCHEMA,
    WORKERS_SCHEMA,
    cell_fields,
    cell_task_key,
)

#: Task states.
PENDING = "pending"
LEASED = "leased"
LOCAL = "local"
DONE = "done"

#: The audit log keeps this many most-recent events.
_MAX_EVENTS = 4096


class CellTask:
    """One cell the fabric owes somebody an answer for.

    Tasks are keyed by :func:`~repro.cluster.protocol.cell_task_key`,
    so concurrent runs needing the same cell share one task (and one
    computation).  ``event`` fires exactly once, when the task reaches
    ``done``; ``payload`` then holds the ``repro.cell/1`` dict.
    """

    __slots__ = ("key", "cell", "state", "attempts", "payload", "event")

    def __init__(self, key: str, cell: SimCell) -> None:
        self.key = key
        self.cell = cell
        self.state = PENDING
        self.attempts = 0
        self.payload: Optional[Dict] = None
        self.event = threading.Event()


@dataclass
class Lease:
    """One time-bounded grant of one task to one worker."""

    id: str
    task: CellTask
    worker_id: str
    issued: float
    deadline: float


@dataclass
class WorkerInfo:
    """Coordinator-side view of one registered worker."""

    id: str
    name: str
    pid: Optional[int]
    host: Optional[str]
    registered: float
    last_seen: float
    completed: int = 0
    lease_ids: Set[str] = field(default_factory=set)


class ClusterScheduler:
    """Worker registry + lease table + pending-cell queue.

    Thread-safe: HTTP handler threads (register/heartbeat/lease/
    result), executor threads (:meth:`run_cells`) and the reaper logic
    all serialise on one lock; cell simulation and store IO happen
    outside it.  The clock is injectable (monotonic seconds) so lease
    expiry is unit-testable without sleeping.
    """

    def __init__(
        self,
        store=None,
        registry=None,
        lease_timeout: float = DEFAULT_LEASE_SECONDS,
        worker_ttl: float = DEFAULT_WORKER_TTL_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = time.monotonic,
        journal=None,
    ) -> None:
        #: Optional :class:`repro.service.result_store.ResultStore`;
        #: consulted before leasing and offered every completed cell,
        #: which is what makes results cluster-wide.
        self.store = store
        #: Optional :class:`repro.obs.MetricsRegistry` (kept for
        #: symmetry; the owning service merges :meth:`metric_samples`
        #: into its own view instead).
        self.registry = registry
        self.lease_timeout = lease_timeout
        self.worker_ttl = worker_ttl
        self.max_attempts = max_attempts
        # The scheduler owns an explicit clock *epoch* so every TTL and
        # lease deadline survives a restart: ``now()`` reads the raw
        # (injectable, monotonic) clock relative to the instant the
        # epoch was (re-)based.  Recovery calls :meth:`restore` with
        # the highest pre-crash reading, so post-restart timestamps
        # keep increasing even though ``time.monotonic`` reset to an
        # arbitrary origin with the new process.
        self._raw_clock = clock
        self._base = clock()
        self._epoch = 0.0
        #: Optional write-ahead journal; recovery-relevant transitions
        #: are buffered under the lock and appended after release.
        self.journal = journal
        self._journal_pending: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._workers: Dict[str, WorkerInfo] = {}
        self._tasks: Dict[str, CellTask] = {}
        self._queue: Deque[CellTask] = deque()
        #: Tasks past their lease budget, reserved for local fallback.
        self._exhausted: Deque[CellTask] = deque()
        self._leases: Dict[str, Lease] = {}
        self._worker_serial = 0
        self._lease_serial = 0
        #: The lease audit log: every issue/complete/expiry/steal/
        #: takeover, most recent last (bounded).
        self.events: Deque[Dict[str, object]] = deque(maxlen=_MAX_EVENTS)
        self.counters: Dict[str, int] = {
            "cluster_workers_registered_total": 0,
            "cluster_workers_lost_total": 0,
            "cluster_heartbeats_total": 0,
            "cluster_leases_issued_total": 0,
            "cluster_leases_completed_total": 0,
            "cluster_leases_expired_total": 0,
            "cluster_leases_reissued_total": 0,
            "cluster_cells_stolen_total": 0,
            "cluster_results_stale_total": 0,
            "cluster_local_fallback_total": 0,
            "cluster_trace_serves_total": 0,
        }

    #: Scheduler events the journal records (enough to restore serial
    #: high-water marks and the clock epoch on recovery; heartbeats are
    #: deliberately not journaled — they are liveness, not state).
    _JOURNALED_EVENTS = frozenset(
        {
            "register",
            "deregister",
            "worker_lost",
            "issue",
            "lease_expired",
            "steal",
            "complete",
        }
    )

    # Clock -------------------------------------------------------------
    def now(self) -> float:
        """Scheduler time: epoch-based monotonic seconds.

        Monotonic across restarts *of this scheduler* (via
        :meth:`restore`), which is what lease deadlines and worker TTLs
        are compared against."""
        return self._epoch + (self._raw_clock() - self._base)

    # Bookkeeping -------------------------------------------------------
    def _log(self, event: str, **attrs) -> None:
        # Callers hold the lock.  The audit log mirrors into the span
        # stream so takeovers show up next to the cells they re-run.
        entry: Dict[str, object] = {"event": event}
        entry.update(attrs)
        self.events.append(entry)
        if self.journal is not None and event in self._JOURNALED_EVENTS:
            record: Dict[str, object] = {"ev": event, "t": self.now()}
            for key in ("worker", "lease"):
                value = attrs.get(key)
                if isinstance(value, str):
                    record[key] = value
            self._journal_pending.append(record)

    def _flush_journal(self) -> None:
        # Journal appends fsync and host a fault point, so buffered
        # records drain strictly outside the scheduler lock.
        if self.journal is None:
            return
        with self._lock:
            pending, self._journal_pending = self._journal_pending, []
        for record in pending:
            self.journal.append_safe("sched", **record)

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def log_events(self, event: Optional[str] = None) -> List[Dict]:
        """A snapshot of the audit log (optionally one event kind)."""
        with self._lock:
            entries = list(self.events)
        if event is None:
            return entries
        return [entry for entry in entries if entry["event"] == event]

    # Worker registry ---------------------------------------------------
    def register(
        self,
        name: str = "worker",
        pid: Optional[int] = None,
        host: Optional[str] = None,
    ) -> Dict:
        """Register a worker; returns its id and the fabric's timing
        contract (heartbeat cadence, lease deadline)."""
        from repro.obs import tracing

        now = self.now()
        with self._lock:
            self._worker_serial += 1
            worker_id = f"w-{self._worker_serial:04d}"
            self._workers[worker_id] = WorkerInfo(
                id=worker_id,
                name=str(name),
                pid=pid,
                host=host,
                registered=now,
                last_seen=now,
            )
            self._count("cluster_workers_registered_total")
            self._log("register", worker=worker_id, name=str(name))
        self._flush_journal()
        tracing.event("cluster_worker_registered", worker=worker_id)
        return {
            "schema": WORKER_SCHEMA,
            "worker_id": worker_id,
            "heartbeat_seconds": round(self.worker_ttl / 3.0, 3),
            "lease_seconds": self.lease_timeout,
        }

    def heartbeat(self, worker_id: str) -> Dict:
        """Refresh a worker's liveness clock.  ``known: false`` tells a
        forgotten worker (coordinator restart, TTL expiry) to
        re-register."""
        from repro.faults.sites import fault_point

        fault_point("cluster.heartbeat")
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                return {"schema": WORKER_SCHEMA, "known": False}
            worker.last_seen = self.now()
            self._count("cluster_heartbeats_total")
        return {"schema": WORKER_SCHEMA, "known": True}

    def deregister(self, worker_id: str) -> bool:
        """Graceful goodbye (worker SIGTERM): drop the worker and
        re-queue anything it still held."""
        with self._lock:
            worker = self._workers.pop(worker_id, None)
            if worker is None:
                return False
            self._log("deregister", worker=worker_id)
            self._requeue_worker_leases(worker, reason="deregister")
        self._flush_journal()
        return True

    def live_worker_count(self) -> int:
        """Workers inside their TTL right now."""
        now = self.now()
        with self._lock:
            return sum(
                1
                for worker in self._workers.values()
                if now - worker.last_seen <= self.worker_ttl
            )

    def workers_view(self) -> Dict:
        """The ``GET /v1/workers`` body: fabric topology + queue state."""
        now = self.now()
        with self._lock:
            workers = [
                {
                    "id": worker.id,
                    "name": worker.name,
                    "pid": worker.pid,
                    "host": worker.host,
                    "age_seconds": round(now - worker.registered, 3),
                    "idle_seconds": round(now - worker.last_seen, 3),
                    "leases": len(worker.lease_ids),
                    "completed": worker.completed,
                }
                for worker in self._workers.values()
            ]
            return {
                "schema": WORKERS_SCHEMA,
                "workers": workers,
                "pending_cells": len(self._queue) + len(self._exhausted),
                "leased_cells": len(self._leases),
                "events_total": len(self.events),
            }

    # Reaping -----------------------------------------------------------
    def _requeue_task(self, task: CellTask, reason: str, worker: str) -> None:
        # Lock held.  Front of the queue: a takeover should run before
        # fresh work so the stalled run unblocks first.
        if task.state != LEASED:
            return
        task.state = PENDING
        self._queue.appendleft(task)
        self._count("cluster_leases_reissued_total")
        self._log(
            "reissue", task=task.key, worker=worker, reason=reason,
            attempt=task.attempts,
        )

    def _requeue_worker_leases(self, worker: WorkerInfo, reason: str) -> None:
        # Lock held.
        for lease_id in sorted(worker.lease_ids):
            lease = self._leases.pop(lease_id, None)
            if lease is not None:
                self._requeue_task(lease.task, reason=reason, worker=worker.id)
        worker.lease_ids.clear()

    def reap(self) -> None:
        """Expire silent workers and overdue leases; re-queue their
        cells.  Called from lease requests and the executor wait loop,
        so liveness never depends on a dedicated timer thread."""
        from repro.obs import tracing

        lost: List[str] = []
        expired: List[str] = []
        now = self.now()
        with self._lock:
            for worker_id in sorted(self._workers):
                worker = self._workers[worker_id]
                if now - worker.last_seen > self.worker_ttl:
                    lost.append(worker_id)
                    self._count("cluster_workers_lost_total")
                    self._log(
                        "worker_lost", worker=worker_id,
                        idle=round(now - worker.last_seen, 3),
                    )
                    self._requeue_worker_leases(worker, reason="worker_lost")
                    del self._workers[worker_id]
            for lease_id in sorted(self._leases):
                lease = self._leases[lease_id]
                if lease.deadline < now:
                    expired.append(lease_id)
                    self._count("cluster_leases_expired_total")
                    self._log(
                        "lease_expired", lease=lease_id, task=lease.task.key,
                        worker=lease.worker_id,
                    )
                    holder = self._workers.get(lease.worker_id)
                    if holder is not None:
                        holder.lease_ids.discard(lease_id)
                    self._requeue_task(
                        lease.task, reason="lease_expired",
                        worker=lease.worker_id,
                    )
                    del self._leases[lease_id]
        self._flush_journal()
        for worker_id in lost:
            tracing.event("cluster_takeover", worker=worker_id, cause="worker_lost")
        for lease_id in expired:
            tracing.event("cluster_takeover", lease=lease_id, cause="lease_expired")

    # Leasing -----------------------------------------------------------
    def _pop_grantable(self) -> Optional[CellTask]:
        # Lock held.  Skip stale queue entries and divert tasks past
        # their lease budget to the local-fallback lane.
        while self._queue:
            task = self._queue.popleft()
            if task.state != PENDING:
                continue
            if task.attempts >= self.max_attempts:
                self._exhausted.append(task)
                self._log("lease_budget_exhausted", task=task.key)
                continue
            return task
        return None

    def _steal(self, thief_id: str) -> Optional[CellTask]:
        # Lock held.  Revoke the youngest lease of the most-loaded
        # *other* worker — but never its last one, so stealing converges
        # instead of ping-ponging a single cell between idle workers.
        victim: Optional[WorkerInfo] = None
        for worker in self._workers.values():
            if worker.id == thief_id or len(worker.lease_ids) < 2:
                continue
            if victim is None or len(worker.lease_ids) > len(victim.lease_ids):
                victim = worker
        if victim is None:
            return None
        lease_id = max(
            victim.lease_ids, key=lambda lid: (self._leases[lid].issued, lid)
        )
        lease = self._leases.pop(lease_id)
        victim.lease_ids.discard(lease_id)
        lease.task.state = PENDING
        self._count("cluster_cells_stolen_total")
        self._log(
            "steal", task=lease.task.key, victim=victim.id, thief=thief_id,
            lease=lease_id,
        )
        return lease.task

    def lease(self, worker_id: str, max_leases: int = 1) -> Dict:
        """Grant up to ``max_leases`` cells to ``worker_id``.

        An empty queue triggers work stealing (one cell).  An unknown
        worker gets ``known: false`` and should re-register.
        """
        from repro.faults.sites import fault_point

        fault_point("cluster.lease")
        self.reap()
        max_leases = max(1, int(max_leases))
        now = self.now()
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                return {"schema": LEASE_SCHEMA, "known": False, "leases": []}
            worker.last_seen = now
            granted: List[CellTask] = []
            while len(granted) < max_leases:
                task = self._pop_grantable()
                if task is None:
                    break
                granted.append(task)
            if not granted:
                stolen = self._steal(worker_id)
                if stolen is not None:
                    granted.append(stolen)
            leases = []
            for task in granted:
                task.state = LEASED
                task.attempts += 1
                self._lease_serial += 1
                lease = Lease(
                    id=f"lease-{self._lease_serial:06d}",
                    task=task,
                    worker_id=worker_id,
                    issued=now,
                    deadline=now + self.lease_timeout,
                )
                self._leases[lease.id] = lease
                worker.lease_ids.add(lease.id)
                self._count("cluster_leases_issued_total")
                self._log(
                    "issue", lease=lease.id, task=task.key, worker=worker_id,
                    attempt=task.attempts,
                )
                leases.append(
                    {
                        "lease_id": lease.id,
                        "attempt": task.attempts,
                        "deadline_seconds": self.lease_timeout,
                        "cell": cell_fields(task.cell),
                    }
                )
        self._flush_journal()
        return {"schema": LEASE_SCHEMA, "known": True, "leases": leases}

    # Results -----------------------------------------------------------
    def _valid_payload(self, task: CellTask, payload: object) -> bool:
        return (
            isinstance(payload, dict)
            and payload.get("schema") == CELL_SCHEMA
            and payload.get("cell") == cell_fields(task.cell)
            and isinstance(payload.get("stats"), dict)
            and isinstance(payload.get("extras"), dict)
        )

    def _finish_task(
        self, task: CellTask, payload: Dict, source: str
    ) -> None:
        offer = False
        with self._lock:
            if task.state != DONE:
                task.state = DONE
                task.payload = payload
                self._log("complete", task=task.key, source=source)
                offer = True
        task.event.set()
        self._flush_journal()
        if offer and self.store is not None:
            # The cluster-wide memo: identical bytes to a local run's
            # stored result, under the identical key.
            self.store.put(task.key, payload_bytes(payload))

    def complete(self, lease_id: str, worker_id: str, payload: object) -> Dict:
        """Ingest one pushed cell result.

        Stale pushes (expired/stolen/unknown leases, id mismatches) are
        acknowledged and dropped — the authoritative copy either exists
        already or is owed by a newer lease.  A payload that does not
        match the leased cell re-queues the cell.
        """
        from repro.faults.sites import fault_point

        fault_point("cluster.result")
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None or lease.worker_id != worker_id:
                self._count("cluster_results_stale_total")
                self._log("stale_result", lease=lease_id, worker=worker_id)
                return {"accepted": False, "stale": True}
            del self._leases[lease_id]
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.lease_ids.discard(lease_id)
                worker.last_seen = self.now()
            task = lease.task
            if not self._valid_payload(task, payload):
                self._count("cluster_results_stale_total")
                self._log(
                    "rejected_result", lease=lease_id, task=task.key,
                    worker=worker_id,
                )
                self._requeue_task(task, reason="rejected_result", worker=worker_id)
                return {"accepted": False, "stale": False}
            self._count("cluster_leases_completed_total")
            if worker is not None:
                worker.completed += 1
        self._finish_task(task, payload, source=worker_id)
        return {"accepted": True, "stale": False}

    # Trace sharding ----------------------------------------------------
    def trace_entry_bytes(self, workload: str, input_name: str) -> bytes:
        """The enveloped trace-cache entry for one ``(workload,
        input)`` — what ``GET /v1/traces/<workload>/<input>`` serves.

        Served verbatim from the coordinator's content-addressed cache
        (envelope intact, so the fetching worker re-verifies the sha256
        before persisting).  With disk persistence off, the entry is
        synthesised and enveloped on the fly.
        """
        from repro.engine.trace_cache import default_trace_cache

        cache = default_trace_cache()
        if cache is not None:
            path = cache.ensure(workload, input_name)
            blob = path.read_bytes()
        else:
            from repro.common.integrity import wrap
            from repro.trace.io import trace_to_columnar_bytes
            from repro.workloads.registry import get_workload

            trace = get_workload(workload).generate_trace(input_name)
            blob = wrap(zlib.compress(trace_to_columnar_bytes(trace), 6))
        with self._lock:
            self._count("cluster_trace_serves_total")
        return blob

    # Execution ---------------------------------------------------------
    def _task_for(self, cell: SimCell) -> CellTask:
        key = cell_task_key(cell)
        with self._lock:
            task = self._tasks.get(key)
            if task is not None:
                return task
            task = CellTask(key, cell)
            self._tasks[key] = task
        # Store lookup outside the lock (disk IO); racing creators are
        # impossible — the dict insert above is the only entry point
        # and runs under the lock.
        stored = self.store.get(key) if self.store is not None else None
        if stored is not None:
            self._finish_task(task, json.loads(stored), source="store")
            return task
        with self._lock:
            if task.state == PENDING:
                self._queue.append(task)
        return task

    def _claim_local(self) -> Optional[CellTask]:
        # A task past its lease budget is always ours; a pending task
        # is ours only when no live worker could take it.
        now = self.now()
        with self._lock:
            while self._exhausted:
                task = self._exhausted.popleft()
                if task.state == PENDING:
                    task.state = LOCAL
                    return task
            live = any(
                now - worker.last_seen <= self.worker_ttl
                for worker in self._workers.values()
            )
            if not live:
                while self._queue:
                    task = self._queue.popleft()
                    if task.state == PENDING:
                        task.state = LOCAL
                        return task
        return None

    def run_cells(
        self,
        cells: Sequence[SimCell],
        progress=None,
        should_cancel=None,
        store=None,
    ) -> List[CellResult]:
        """Execute cells across the fabric; results in input order.

        This is the engine's :data:`~repro.engine.runner.CellExecutor`
        hook.  Cells resolve through (in order): the result store, an
        in-flight shared task, a worker lease, or — when workers are
        gone or a cell's lease budget is spent — local computation in
        this thread.  Either way the cell runs through
        :func:`repro.engine.cells.run_cell` semantics, so the merged
        results are bit-identical to a local run.
        """
        tasks = [self._task_for(cell) for cell in cells]
        total = len(tasks)
        reported = -1
        while True:
            done = sum(1 for task in tasks if task.state == DONE)
            if progress is not None and done != reported:
                progress(done, total)
                reported = done
            if done == total:
                break
            if should_cancel is not None and should_cancel():
                raise RunCancelled(
                    f"cancelled after {done}/{total} cells"
                )
            self.reap()
            claimed = self._claim_local()
            if claimed is not None:
                self._run_local(claimed, store)
                continue
            for task in tasks:
                if task.state != DONE:
                    task.event.wait(0.05)
                    break
        return [self._result_for(task) for task in tasks]

    def _run_local(self, task: CellTask, store) -> None:
        from repro.obs import tracing

        with self._lock:
            self._count("cluster_local_fallback_total")
            self._log(
                "local_fallback", task=task.key, attempt=task.attempts,
            )
        tracing.event("cluster_local_fallback", task=task.key)
        if store is None:
            from repro.workloads.store import shared_store

            store = shared_store
        result = run_cell(task.cell, store)
        self._finish_task(task, cell_payload(result), source="local")

    @staticmethod
    def _result_for(task: CellTask) -> CellResult:
        payload = task.payload
        assert payload is not None  # task.state == DONE guarantees it
        # JSON round-trips preserve int vs float, so the dicts are the
        # originals bit-for-bit — no numeric coercion wanted here.
        return CellResult(
            cell=task.cell,
            stats=dict(payload["stats"]),
            extras=dict(payload["extras"]),
        )

    # Durability --------------------------------------------------------
    def restore(
        self,
        worker_serial: int = 0,
        lease_serial: int = 0,
        epoch: float = 0.0,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        """Re-base this scheduler on recovered control-plane state
        (startup only, before any worker traffic).

        The serial high-water marks guarantee post-restart worker and
        lease ids never collide with ids pre-crash workers still hold —
        a stale ``w-0002`` pushing against a dead ``lease-000007`` is
        acknowledged stale instead of corrupting a fresh grant.  The
        clock epoch re-bases :meth:`now` past the highest pre-crash
        reading, so TTL and deadline arithmetic stays monotonic across
        the restart.  Pre-crash leases and workers are deliberately
        *not* recreated: their leases are dead by definition, and the
        workers re-register through their heartbeat ``known: false``
        loop.
        """
        with self._lock:
            self._worker_serial = max(self._worker_serial, int(worker_serial))
            self._lease_serial = max(self._lease_serial, int(lease_serial))
            if counters:
                for name in self.counters:
                    if name in counters:
                        self.counters[name] = int(counters[name])
            # Re-base past BOTH the recovered epoch and whatever this
            # incarnation's clock already read — now() must never rewind.
            raw = self._raw_clock()
            elapsed = self._epoch + (raw - self._base)
            self._base = raw
            self._epoch = max(elapsed, float(epoch))

    def snapshot_state(self) -> Dict:
        """The scheduler's contribution to the journal snapshot."""
        with self._lock:
            return {
                "worker_serial": self._worker_serial,
                "lease_serial": self._lease_serial,
                "epoch": self.now(),
                "counters": dict(self.counters),
            }

    # Observability -----------------------------------------------------
    def metric_samples(self) -> Dict[str, Dict[str, object]]:
        """The scheduler's ``cluster_*`` entries for ``/v1/metrics``."""
        live = self.live_worker_count()
        with self._lock:
            samples: Dict[str, Dict[str, object]] = {
                name: {"type": "counter", "value": value}
                for name, value in self.counters.items()
            }
            samples["cluster_workers"] = {"type": "gauge", "value": live}
            samples["cluster_pending_cells"] = {
                "type": "gauge",
                "value": len(self._queue) + len(self._exhausted),
            }
            samples["cluster_leased_cells"] = {
                "type": "gauge",
                "value": len(self._leases),
            }
        return samples


def execute_spec_cluster(
    spec: Dict,
    scheduler: ClusterScheduler,
    progress=None,
    should_cancel=None,
) -> Dict:
    """Run one normalised job spec through the cluster fabric.

    The cluster analogue of :func:`repro.service.api.execute_spec`:
    experiments decompose via ``plan_cells`` and fan their cells across
    workers through the scheduler's executor hook; single-cell specs
    lease directly.  Same payload bytes either way.
    """
    from repro.workloads.store import shared_store

    if spec["type"] == "experiment":
        from repro.experiments.registry import get_experiment
        from repro.experiments.render import experiment_payload

        experiment = get_experiment(spec["experiment_id"])
        result = experiment.run_with_engine(
            shared_store,
            fast=spec["fast"],
            jobs=1,
            progress=progress,
            should_cancel=should_cancel,
            executor=scheduler.run_cells,
        )
        return experiment_payload(result)
    if spec["type"] == "cell":
        from repro.cluster.protocol import cell_from_fields

        cell = cell_from_fields(
            {k: v for k, v in spec.items() if k != "type"}
        )
        results = scheduler.run_cells(
            [cell], progress=progress, should_cancel=should_cancel
        )
        return cell_payload(results[0])
    from repro.service.api import SpecError

    raise SpecError(f"cannot execute spec type {spec.get('type')!r}")


class ClusterExecutor:
    """Threads that claim ``cluster``-lane jobs and drive them through
    the scheduler.

    The local :class:`~repro.service.workers.WorkerPool` keeps its
    child-process isolation for the ``local`` lane; cluster jobs run in
    coordinator threads because the heavy lifting happens in remote
    worker processes anyway (and the local-fallback path is the same
    ``run_cell`` the pool's children execute).
    """

    def __init__(
        self,
        queue,
        scheduler: ClusterScheduler,
        on_done=None,
        dispatchers: int = 2,
        registry=None,
    ) -> None:
        if dispatchers <= 0:
            raise ValueError("cluster executor needs at least one dispatcher")
        self.queue = queue
        self.scheduler = scheduler
        self.on_done = on_done
        self.dispatchers = dispatchers
        self.registry = registry
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = threading.Event()

    def start(self) -> "ClusterExecutor":
        """Spawn the dispatcher threads (idempotent)."""
        if self._threads:
            return self
        for index in range(self.dispatchers):
            thread = threading.Thread(
                target=self._loop,
                name=f"repro-cluster-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop dispatching; ``drain=True`` finishes accepted cluster
        jobs first (the SIGTERM path)."""
        from repro.service import jobs as jobstates

        if drain:
            self._draining.set()
        else:
            for job in self.queue.jobs():
                if job.lane == jobstates.CLUSTER_LANE and job.state in (
                    jobstates.QUEUED, jobstates.RUNNING,
                ):
                    job.cancel_event.set()
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        if not drain:
            while self.queue.queue_depth(lane=jobstates.CLUSTER_LANE):
                self.queue.next_job(
                    timeout=0.01, lane=jobstates.CLUSTER_LANE
                )

    def _loop(self) -> None:
        from repro.service import jobs as jobstates

        while True:
            if self._stop.is_set():
                if not self._draining.is_set():
                    return
                if not self.queue.queue_depth(lane=jobstates.CLUSTER_LANE):
                    return
            job = self.queue.next_job(
                timeout=0.1, lane=jobstates.CLUSTER_LANE
            )
            if job is not None:
                self._execute(job)

    def _execute(self, job) -> None:
        from repro.common.errors import ReproError
        from repro.obs import tracing
        from repro.service import jobs as jobstates

        self.queue.note_attempt(job, 1)
        if self.registry is not None:
            self.registry.counter("worker_attempts_total").inc()

        def report(done: int, total: int) -> None:
            self.queue.note_progress(job, done, total)

        with tracing.span(
            "cluster.job",
            key=f"{job.result_key}#1",
            attrs={"job_id": job.id},
        ) as span:
            try:
                payload = execute_spec_cluster(
                    job.spec,
                    self.scheduler,
                    progress=report,
                    should_cancel=job.cancel_event.is_set,
                )
            except RunCancelled:
                if span is not None:
                    span.attrs["outcome"] = "cancelled"
                self.queue.finish(job, jobstates.CANCELLED)
                return
            except ReproError as exc:
                if span is not None:
                    span.attrs["outcome"] = "error"
                self.queue.finish(
                    job, jobstates.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return
            except Exception as exc:  # noqa: BLE001 - verdict, not handling
                if span is not None:
                    span.attrs["outcome"] = "error"
                self.queue.finish(
                    job, jobstates.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return
            if span is not None:
                span.attrs["outcome"] = "done"
        stored = None
        if self.on_done is not None:
            stored = self.on_done(job, payload)
        self.queue.finish(
            job, jobstates.DONE, payload=payload, stored=stored
        )
