"""Distributed experiment fabric: coordinator + remote workers.

The cluster subsystem scales the engine past one process boundary
without giving up the repo's bit-identical contract.  A ``repro-fvc
serve`` process doubles as the **coordinator**: it owns the job queue,
the result store and a :class:`~repro.cluster.coordinator
.ClusterScheduler` that shards decomposable jobs into their
content-addressed :class:`~repro.engine.cells.SimCell` units.  Thin
``repro-fvc worker --coordinator URL`` processes register themselves,
heartbeat, and pull cells over the extended ``/v1`` protocol
(``/v1/workers``, ``/v1/cells/lease``, ``/v1/cells/<id>/result`` —
see ``docs/CLUSTER.md``).

Determinism is inherited, not re-proved: every worker executes cells
through the one shared :func:`repro.engine.cells.run_cell` path, cells
are pure functions of their content-addressed inputs, and the
coordinator merges results in plan order — so a fig13 sweep sharded
across three hosts produces payload bytes identical to ``run --jobs
1``.  Failure handling leans on the same property: leases expire and
re-issue on worker loss, idle workers steal queued cells from loaded
ones, and duplicated computation (a stale worker finishing a stolen
cell) is harmless because every copy of a cell computes the same
result.
"""

from repro.cluster.coordinator import ClusterExecutor, ClusterScheduler
from repro.cluster.protocol import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_WORKER_TTL_SECONDS,
    LEASE_SCHEMA,
    WORKER_SCHEMA,
    WORKERS_SCHEMA,
    cell_fields,
    cell_from_fields,
    cell_task_key,
)
from repro.cluster.worker import WorkerConfig, run_worker

__all__ = [
    "ClusterExecutor",
    "ClusterScheduler",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_WORKER_TTL_SECONDS",
    "LEASE_SCHEMA",
    "WORKER_SCHEMA",
    "WORKERS_SCHEMA",
    "WorkerConfig",
    "cell_fields",
    "cell_from_fields",
    "cell_task_key",
    "run_worker",
]
