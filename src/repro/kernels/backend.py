"""``REPRO_BACKEND`` resolution: which replay path a process uses.

The switch travels through the environment — like ``REPRO_SANITIZE``
and ``REPRO_FAULTS`` — so pool workers and service children spawned by
``run --jobs N`` resolve the same backend as their parent without any
extra plumbing.  Resolution is re-evaluated on every call (it is two
dict lookups), so tests can flip the variable per case.

Values:

======== =======================================================
python   always the pure-Python oracle simulators
numpy    vectorized kernels (error when numpy is not importable)
auto     kernels when numpy imports, oracle otherwise (default)
======== =======================================================
"""

from __future__ import annotations

import os
from typing import Optional

from repro.common.errors import ConfigurationError

#: Environment variable naming the replay backend.
ENV_VAR = "REPRO_BACKEND"

_VALID = ("auto", "python", "numpy")

#: Cached numpy probe: ``None`` until first use, then the module or
#: ``False``.  The probe is an import, so caching it matters; the
#: *choice* between backends stays per-call.
_numpy_probe = None


def numpy_or_none():
    """The numpy module when importable, else ``None`` (cached)."""
    global _numpy_probe
    if _numpy_probe is None:
        try:
            import numpy
        except ImportError:
            _numpy_probe = False
        else:
            _numpy_probe = numpy
    return _numpy_probe if _numpy_probe is not False else None


def numpy_available() -> bool:
    """Whether the vectorized backend can run in this process."""
    return numpy_or_none() is not None


def resolve_backend(value: Optional[str] = None) -> str:
    """Resolve a backend name to ``"python"`` or ``"numpy"``.

    ``value`` defaults to ``$REPRO_BACKEND`` (itself defaulting to
    ``auto``).  Raises :class:`ConfigurationError` for an unknown name
    or for ``numpy`` requested without numpy installed — a misspelt
    backend must never silently fall back to a different replay path.
    """
    if value is None:
        value = os.environ.get(ENV_VAR, "") or "auto"
    value = value.strip().lower()
    if value not in _VALID:
        raise ConfigurationError(
            f"{ENV_VAR}={value!r} is not one of {', '.join(_VALID)}"
        )
    if value == "auto":
        return "numpy" if numpy_available() else "python"
    if value == "numpy" and not numpy_available():
        raise ConfigurationError(
            f"{ENV_VAR}=numpy requested but numpy is not importable; "
            "install the optional extra (pip install .[fast]) or use "
            f"{ENV_VAR}=python"
        )
    return value


def active_backend() -> str:
    """The backend this process replays with (``python``/``numpy``)."""
    return resolve_backend()


def backend_is_numpy() -> bool:
    """Whether the vectorized kernels should be attempted."""
    return active_backend() == "numpy"
