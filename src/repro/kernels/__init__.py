"""Vectorized simulation kernels behind the ``REPRO_BACKEND`` switch.

The pure-Python simulators in :mod:`repro.cache` and :mod:`repro.fvc`
are the *oracle*: they define the semantics, record by record.  This
package provides numpy-vectorized kernels for the hot models — the
direct-mapped baseline, the set-associative baseline, the DMC+FVC
system, and the two-level hierarchy's L1 filter — that produce
**byte-identical statistics** to the oracle while replaying traces as
columnar array operations instead of per-record tuple dispatch.

Backend selection (:mod:`repro.kernels.backend`):

* ``REPRO_BACKEND=python`` — always the oracle;
* ``REPRO_BACKEND=numpy`` — kernels where supported (error if numpy is
  not importable);
* ``REPRO_BACKEND=auto`` / unset — kernels when numpy is importable,
  oracle otherwise.

Kernels never change results: every kernel either reproduces the
oracle's counters exactly for the configuration it supports, or
declines (returns ``None``) and the caller replays the oracle.  The
dual-run regression suite (``tests/kernels/``) holds that contract for
every experiment payload; ``docs/PERFORMANCE.md`` documents it.
"""

from __future__ import annotations

from repro.kernels.backend import (
    active_backend,
    backend_is_numpy,
    numpy_available,
    numpy_or_none,
    resolve_backend,
)

__all__ = [
    "active_backend",
    "backend_is_numpy",
    "numpy_available",
    "numpy_or_none",
    "resolve_backend",
]
