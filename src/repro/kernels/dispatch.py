"""Backend dispatch: the one place oracle call sites try a kernel.

A kernel runs only when all three gates open:

* the resolved backend is ``numpy`` (:mod:`repro.kernels.backend`);
* the runtime sanitizer is off — its checks audit the oracle's
  per-access behaviour, which a bulk kernel never exhibits, so
  ``REPRO_SANITIZE=1`` always replays the oracle;
* the kernel supports the configuration and trace (otherwise it
  returns ``None``/``False`` itself).

Every decline falls back to the oracle, so the backend switch changes
time, never numbers.  Dispatch outcomes feed the opt-in metrics
registry (``kernel_replays_total`` / ``kernel_declines_total`` /
``kernel_replay_seconds``) so a run can show which path served it.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.fvc.encoding import FrequentValueEncoder
from repro.kernels.backend import backend_is_numpy
from repro.trace.trace import Trace


def kernels_active() -> bool:
    """Whether this process should attempt vectorized kernels."""
    from repro.analysis import sanitize

    return backend_is_numpy() and not sanitize.enabled()


def _record(outcome: str, elapsed: Optional[float] = None) -> None:
    from repro import obs

    if not obs.enabled():
        return
    registry = obs.registry()
    if outcome == "replay":
        registry.counter("kernel_replays_total").inc()
        if elapsed is not None:
            registry.histogram("kernel_replay_seconds").observe(elapsed)
    else:
        registry.counter("kernel_declines_total").inc()


def try_baseline_stats(
    trace: Trace, geometry: CacheGeometry
) -> Optional[CacheStats]:
    """Kernel statistics for a conventional cache, or ``None``."""
    if not kernels_active():
        return None
    from repro.kernels.dmc import dmc_stats
    from repro.kernels.setassoc import setassoc_stats

    started = time.perf_counter()
    if geometry.ways == 1:
        stats = dmc_stats(trace, geometry)
    else:
        stats = setassoc_stats(trace, geometry)
    if stats is None:
        _record("decline")
        return None
    _record("replay", time.perf_counter() - started)
    return stats


def try_fvc_replay(
    trace: Trace,
    geometry: CacheGeometry,
    fvc_entries: int,
    encoder: FrequentValueEncoder,
) -> Optional[Tuple[CacheStats, dict]]:
    """Kernel statistics + extras for a DMC+FVC cell, or ``None``."""
    if not kernels_active():
        return None
    from repro.kernels.fvc import fvc_cell_replay

    started = time.perf_counter()
    result = fvc_cell_replay(trace, geometry, fvc_entries, encoder)
    if result is None:
        _record("decline")
        return None
    _record("replay", time.perf_counter() - started)
    return result


def try_hierarchy_replay(system, trace: Trace) -> bool:
    """Fast-forward a fresh two-level system; ``False`` = use oracle."""
    if not kernels_active():
        return False
    from repro.kernels.hierarchy import hierarchy_replay

    started = time.perf_counter()
    if not hierarchy_replay(system, trace):
        _record("decline")
        return False
    _record("replay", time.perf_counter() - started)
    return True
