"""Closed-form direct-mapped replay over the set-grouped order.

A direct-mapped set holds exactly the line of the latest access, so in
the set-grouped (time-preserving) order every access hits unless it
starts a new same-line run; a run is dirty when it contains a store,
and a run start writes back exactly when the previous run in the same
segment was dirty.  All four counters therefore reduce to run-level
reductions — no per-record Python loop at all.

The optional miss stream recovers, in time order, each miss's record
position and dirty victim line — what the two-level hierarchy needs to
replay the L1 filter's output through an L2.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.kernels.columnar import (
    KernelUnsupported,
    require_numpy,
    set_order,
    trace_columns,
)
from repro.trace.trace import Trace


def _run_reductions(np, trace: Trace, geometry: CacheGeometry):
    cols = trace_columns(trace)
    if not cols.in_range:
        raise KernelUnsupported("records outside the 32-bit domain")
    so = set_order(trace, geometry.line_shift, geometry.num_sets)
    run_starts = so.run_start[:-1]
    miss_pos = so.sorder[run_starts]
    store_s = (cols.ops[so.sorder] == 1).astype(np.int64)
    spref = np.zeros(cols.n + 1, dtype=np.int64)
    np.cumsum(store_s, out=spref[1:])
    run_stores = spref[so.run_start[1:]] - spref[run_starts]
    wb = np.zeros(so.nruns, dtype=bool)
    if so.nruns > 1:
        wb[1:] = (so.run_set[1:] == so.run_set[:-1]) & (run_stores[:-1] > 0)
    return cols, so, miss_pos, wb


def dmc_stats(trace: Trace, geometry: CacheGeometry) -> Optional[CacheStats]:
    """Exact :class:`DirectMappedCache` statistics, or ``None`` when the
    kernel declines (no numpy, non-direct-mapped, out-of-range trace)."""
    if geometry.ways != 1:
        return None
    try:
        np = require_numpy()
        cols, so, miss_pos, wb = _run_reductions(np, trace, geometry)
    except KernelUnsupported:
        return None
    stats = CacheStats()
    read_misses = int((cols.ops[miss_pos] == 0).sum())
    stats.read_misses = read_misses
    stats.write_misses = so.nruns - read_misses
    stats.read_hits = cols.nloads - read_misses
    stats.write_hits = (cols.n - cols.nloads) - stats.write_misses
    stats.fills = so.nruns
    stats.fill_words = so.nruns * geometry.words_per_line
    stats.writebacks = int(wb.sum())
    stats.writeback_words = stats.writebacks * geometry.words_per_line
    return stats


def dmc_miss_stream(trace: Trace, geometry: CacheGeometry):
    """Time-ordered ``(record_position, victim_line_or_-1)`` pairs for
    every L1 miss, or ``None`` when the kernel declines.

    ``victim_line`` is set only for dirty evictions — the cases the
    oracle hierarchy forwards to the L2 as write-backs.
    """
    if geometry.ways != 1:
        return None
    try:
        np = require_numpy()
        _, so, miss_pos, wb = _run_reductions(np, trace, geometry)
    except KernelUnsupported:
        return None
    victims = np.full(so.nruns, -1, dtype=np.int64)
    if so.nruns > 1:
        victims[1:][wb[1:]] = so.run_line[:-1][wb[1:]]
    torder = np.argsort(miss_pos)
    return miss_pos[torder], victims[torder]
