"""Shared columnar decomposition of a trace, memoised on ``Trace.memo``.

Every vectorized kernel — and the profiler — works from the same
derived arrays instead of re-walking the record tuples per model:

* :func:`trace_columns` — the raw ``op``/``address``/``value`` columns;
* :func:`word_layer` — per-word previous-store values and the
  value-consistency flag the FVC kernel's hit predicate relies on;
* :func:`line_index` — per ``line_shift``: line ids, the line-grouped
  (CSR) time order, per-record CSR ranks, and next-store positions;
* :func:`freq_layer` — per ``(line_shift, encoder)``: frequent-value
  flags, the packed per-line prefix (frequent-load / frequent-store /
  frequent-word-delta counts in one cumulative sum), next-infrequent
  positions and the frequent-store sub-CSR;
* :func:`set_order` — per ``(line_shift, num_sets)``: the stable
  set-grouped order, its run-length structure and the alternation
  breaks used to bound FVC hit batches;
* :func:`ranked_value_counts` — the access-value ranking (Fig. 1)
  straight from the columns.

All entries live on ``trace.memo`` so cells sharing a geometry (or just
a line size) pay for each decomposition once; ``Trace.append``/
``extend`` drop them with the other aggregates.

Layout invariants the kernels lean on (checked against the oracle
simulators, not re-derived here):

* line = address >> line_shift, set = line & (num_sets - 1), word
  offset = (address >> 2) & (words_per_line - 1);
* CSR rank arithmetic: ``rank[lorder] == arange(n)`` so any record's
  position within its line's time-ordered access list is O(1);
* the packed prefix uses 21/21/22-bit fields, so these layers decline
  (raise :class:`KernelUnsupported`) for traces of 2**21 records or
  more — far above every bundled workload.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.kernels.backend import numpy_or_none
from repro.trace.trace import Trace

#: Field widths of the packed per-line prefix (see :func:`freq_layer`).
PACK_BITS = 21
PACK_MASK = (1 << PACK_BITS) - 1
#: Traces at or above this record count overflow the packed prefix.
MAX_RECORDS = 1 << PACK_BITS

_WORD_MASK = 0xFFFFFFFF


class KernelUnsupported(Exception):
    """Raised internally when a decomposition cannot represent a trace;
    kernels catch it and decline to the oracle."""


def require_numpy():
    """The numpy module, or :class:`KernelUnsupported` when absent."""
    np = numpy_or_none()
    if np is None:
        raise KernelUnsupported("numpy is not importable")
    return np


class TraceColumns:
    """The raw columns plus the bounds checks every kernel needs."""

    __slots__ = ("n", "ops", "addrs", "values", "nloads", "in_range")

    def __init__(self, np, records: List[Tuple[int, int, int]]) -> None:
        n = len(records)
        flat = np.fromiter(
            (field for record in records for field in record),
            dtype=np.int64,
            count=3 * n,
        ).reshape(n, 3)
        self.n = n
        self.ops = np.ascontiguousarray(flat[:, 0])
        self.addrs = np.ascontiguousarray(flat[:, 1])
        self.values = np.ascontiguousarray(flat[:, 2])
        self.nloads = int((self.ops == 0).sum()) if n else 0
        # The oracle treats op/address/value as unsigned 32-bit-ish
        # domain values; anything outside means a synthetic trace the
        # kernels refuse rather than approximate.
        if n:
            ok = bool(
                ((self.ops | 1) == 1).all()
                and (self.addrs >= 0).all()
                and (self.addrs <= _WORD_MASK).all()
                and (self.values >= 0).all()
                and (self.values <= _WORD_MASK).all()
            )
        else:
            ok = True
        self.in_range = ok


def trace_columns(trace: Trace) -> TraceColumns:
    """Columnar view of ``trace.records`` (memoised)."""
    np = require_numpy()
    return trace.memo("kernel:columns", lambda t: TraceColumns(np, t.records))


class WordLayer:
    """Word-granular derivations: previous-store values and consistency."""

    __slots__ = ("words", "wuniq", "prevval", "consistent")

    def __init__(self, np, cols: TraceColumns) -> None:
        n = cols.n
        self.words = cols.addrs >> 2
        if n == 0:
            self.wuniq = np.zeros(0, dtype=np.int64)
            self.prevval = np.zeros(0, dtype=np.int64)
            self.consistent = True
            return
        wuniq, winv = np.unique(self.words, return_inverse=True)
        self.wuniq = wuniq
        worder = np.argsort(winv.astype(np.int32), kind="stable")
        grp = winv[worder].astype(np.int64)
        ops_w = cols.ops[worder]
        vals_w = cols.values[worder]
        base = grp * (n + 1)
        idx = np.arange(n, dtype=np.int64)
        # Forward-fill the latest store position within each word group:
        # stores contribute base+i+1, everything else the group floor, so
        # a running max never bleeds across the base jumps.
        cand = np.where(ops_w == 1, base + idx + 1, base)
        ffill = np.maximum.accumulate(cand)
        prev = np.empty(n, dtype=np.int64)
        prev[0] = base[0]
        prev[1:] = ffill[:-1]
        rel = prev - base  # i+1 of the last store strictly before, else <= 0
        has_prev = rel > 0
        prevval_sorted = np.where(
            has_prev, vals_w[np.maximum(rel - 1, 0)], 0
        )
        self.prevval = np.empty(n, dtype=np.int64)
        self.prevval[worder] = prevval_sorted
        loads = ops_w == 0
        self.consistent = bool((vals_w[loads] == prevval_sorted[loads]).all())


def word_layer(trace: Trace) -> WordLayer:
    """Word-granular layer (memoised)."""
    np = require_numpy()
    return trace.memo(
        "kernel:words", lambda t: WordLayer(np, trace_columns(t))
    )


def is_value_consistent(trace: Trace) -> bool:
    """Whether every load returns the last value stored to its word (or
    zero before any store) — the invariant equating the FVC oracle's
    stored-code probe with a frequency test of the record's own value."""
    return word_layer(trace).consistent


class LineIndex:
    """Per-``line_shift`` line decomposition in CSR (line-grouped) form."""

    __slots__ = ("lines", "luniq", "lslot", "lorder", "start", "rank", "ns")

    def __init__(self, np, cols: TraceColumns, wl: WordLayer, shift: int) -> None:
        n = cols.n
        self.lines = wl.words >> (shift - 2)
        # The distinct lines come from the (tiny) distinct-word set, not
        # from an O(n) unique over the per-record line column.
        self.luniq = np.unique(wl.wuniq >> (shift - 2))
        self.lslot = np.searchsorted(self.luniq, self.lines)
        self.lorder = np.argsort(self.lslot.astype(np.int32), kind="stable")
        nlines = len(self.luniq)
        self.start = np.zeros(nlines + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.lslot, minlength=nlines), out=self.start[1:]
        )
        self.rank = np.empty(n, dtype=np.int64)
        self.rank[self.lorder] = np.arange(n, dtype=np.int64)
        # ns[p]: position of the first store to line(p) at-or-after p
        # (n when none) via a reversed running min over the CSR order.
        if n:
            seg = self.lslot[self.lorder].astype(np.int64)
            key = np.where(
                cols.ops[self.lorder] == 1, seg * (n + 1) + self.lorder, seg * (n + 1) + n
            )
            rmin = np.minimum.accumulate(key[::-1])[::-1] - seg * (n + 1)
            self.ns = np.empty(n, dtype=np.int64)
            self.ns[self.lorder] = rmin
        else:
            self.ns = np.zeros(0, dtype=np.int64)


def line_index(trace: Trace, line_shift: int) -> LineIndex:
    """Line decomposition for one line size (memoised)."""
    np = require_numpy()
    return trace.memo(
        f"kernel:lines:{line_shift}",
        lambda t: LineIndex(np, trace_columns(t), word_layer(t), line_shift),
    )


class FreqLayer:
    """Per-``(line_shift, encoder)`` frequent-value derivations.

    ``pref`` packs three per-record counters into one cumulative sum
    over the line-CSR order — frequent loads (bits 0..20), frequent
    stores (bits 21..41), and per-store frequent-word deltas, biased by
    +1 so every field stays non-negative (bits 42..63).  A window of
    CSR ranks ``[r0, r1)`` then yields all three in two array reads.
    """

    __slots__ = ("opf", "pref", "nir", "fs_pos", "fs_word", "cf0")

    def __init__(
        self,
        np,
        cols: TraceColumns,
        wl: WordLayer,
        li: LineIndex,
        shift: int,
        values: Tuple[int, ...],
    ) -> None:
        n = cols.n
        if n >= MAX_RECORDS:
            raise KernelUnsupported("trace too long for the packed prefix")
        wpl = 1 << (shift - 2)
        freq = np.unique(np.asarray(sorted(values), dtype=np.int64))
        isf = np.isin(cols.values, freq)
        stores = cols.ops == 1
        isf_prev = np.isin(wl.prevval, freq)
        cfdelta = np.where(
            stores, isf.astype(np.int64) - isf_prev.astype(np.int64), 0
        )
        self.opf = (cols.ops | (isf.astype(np.int64) << 1)).astype(np.int8)
        packed = (
            (isf & ~stores).astype(np.int64)
            | ((isf & stores).astype(np.int64) << PACK_BITS)
            | ((cfdelta + 1) << (2 * PACK_BITS))
        )
        self.pref = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(packed[li.lorder], out=self.pref[1:])
        # nir[p]: first infrequent-valued touch of line(p) at-or-after p.
        if n:
            seg = li.lslot[li.lorder].astype(np.int64)
            key = np.where(
                isf[li.lorder], seg * (n + 1) + n, seg * (n + 1) + li.lorder
            )
            rmin = np.minimum.accumulate(key[::-1])[::-1] - seg * (n + 1)
            self.nir = np.empty(n, dtype=np.int64)
            self.nir[li.lorder] = rmin
        else:
            self.nir = np.zeros(0, dtype=np.int64)
        fs_csr = (isf & stores)[li.lorder]
        self.fs_pos = li.lorder[fs_csr]
        self.fs_word = (wl.words[self.fs_pos]) & (wpl - 1)
        self.cf0 = wpl if 0 in set(int(v) for v in values) else 0


def freq_layer(
    trace: Trace, line_shift: int, values: Tuple[int, ...]
) -> FreqLayer:
    """Frequent-value layer for one (line size, encoder) pair (memoised)."""
    np = require_numpy()
    key = f"kernel:freq:{line_shift}:" + ",".join(str(int(v)) for v in values)
    return trace.memo(
        key,
        lambda t: FreqLayer(
            np,
            trace_columns(t),
            word_layer(t),
            line_index(t, line_shift),
            line_shift,
            values,
        ),
    )


class SetOrder:
    """Per-``(line_shift, num_sets)`` set-grouped order and run structure.

    Records sorted stably by set index preserve time order within each
    set; maximal same-line runs inside a set segment are the unit of
    replacement activity (a direct-mapped set hits on everything except
    run starts).  ``brk2`` lists the runs that break the two-line
    alternation pattern — from any run, the first ``brk2`` entry at
    least two runs later is the first appearance of a third line, which
    bounds how far an FVC hit batch can extend.
    """

    __slots__ = (
        "sorder",
        "sstart",
        "run_start",
        "run_line",
        "run_set",
        "run_id",
        "brk2",
        "nruns",
    )

    def __init__(self, np, cols: TraceColumns, li: LineIndex, num_sets: int) -> None:
        n = cols.n
        sets = (li.lines & (num_sets - 1)).astype(
            np.uint16 if num_sets <= 1 << 16 else np.int64
        )
        self.sorder = np.argsort(sets, kind="stable")
        self.sstart = np.zeros(num_sets + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(sets, minlength=num_sets), out=self.sstart[1:]
        )
        if n == 0:
            self.run_start = np.zeros(1, dtype=np.int64)
            self.run_line = np.zeros(0, dtype=np.int64)
            self.run_set = np.zeros(0, dtype=np.int64)
            self.run_id = np.zeros(0, dtype=np.int64)
            self.brk2 = np.zeros(0, dtype=np.int64)
            self.nruns = 0
            return
        line_s = li.lines[self.sorder]
        new = np.empty(n, dtype=bool)
        new[0] = True
        # Lines determine sets, so a line change is exactly a run
        # boundary (equal adjacent lines are necessarily the same set).
        new[1:] = line_s[1:] != line_s[:-1]
        self.run_id = np.cumsum(new) - 1
        starts = np.flatnonzero(new)
        self.nruns = len(starts)
        self.run_start = np.empty(self.nruns + 1, dtype=np.int64)
        self.run_start[:-1] = starts
        self.run_start[-1] = n
        self.run_line = line_s[starts]
        self.run_set = self.run_line & (num_sets - 1)
        brk = np.ones(self.nruns, dtype=bool)
        if self.nruns > 2:
            brk[2:] = (self.run_line[2:] != self.run_line[:-2]) | (
                self.run_set[2:] != self.run_set[:-2]
            )
        self.brk2 = np.flatnonzero(brk)


def set_order(trace: Trace, line_shift: int, num_sets: int) -> SetOrder:
    """Set-grouped order for one geometry family (memoised)."""
    np = require_numpy()
    return trace.memo(
        f"kernel:sets:{line_shift}:{num_sets}",
        lambda t: SetOrder(
            np, trace_columns(t), line_index(t, line_shift), num_sets
        ),
    )


def ranked_value_counts(trace: Trace, depth: int):
    """``(total, distinct, ranked)`` matching ``ExactTopK`` semantics:
    ranked ``(value, count)`` pairs sorted by (-count, value), truncated
    to ``depth``, as plain Python ints."""
    np = require_numpy()
    cols = trace_columns(trace)
    if cols.n == 0:
        return 0, 0, ()
    uniq, counts = np.unique(cols.values, return_counts=True)
    order = np.lexsort((uniq, -counts))[:depth]
    ranked = tuple(
        (int(uniq[i]), int(counts[i])) for i in order.tolist()
    )
    return cols.n, len(uniq), ranked
