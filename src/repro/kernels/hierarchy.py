"""Fast-forward for the two-level hierarchy's direct-mapped L1.

The L2 only ever sees the L1's miss stream — one read per fill plus one
write per dirty victim — and for a direct-mapped L1 that stream is a
closed-form run reduction (:mod:`repro.kernels.dmc`).  So instead of
replaying every processor access through two Python simulators, the
kernel computes the L1's statistics in numpy and replays only the
(small) time-ordered miss stream through the system's own
:class:`~repro.cache.setassoc.SetAssociativeCache` L2 — the identical
object the oracle composition drives, so the L2 statistics are
byte-identical by construction.

The fast-forward applies to *fresh* systems only (no accesses at either
level): it merges the L1 statistics wholesale rather than diffing
against a warm state, and it does not maintain the L1's tag array —
callers that inspect residency afterwards must use the oracle path.
"""

from __future__ import annotations

from repro.cache.direct import DirectMappedCache
from repro.kernels.dmc import dmc_miss_stream, dmc_stats
from repro.kernels.columnar import trace_columns
from repro.trace.trace import Trace


def hierarchy_replay(system, trace: Trace) -> bool:
    """Fast-forward a fresh ``TwoLevelSystem`` through ``trace``.

    Returns ``True`` when the system's statistics now equal a full
    oracle replay; ``False`` when the kernel declines (set-associative
    L1, warm state, no numpy, out-of-range trace) and the caller must
    simulate normally.
    """
    l1 = system._l1
    if not isinstance(l1, DirectMappedCache):
        return False
    if system.stats.accesses or system.l2_stats.accesses:
        return False
    geometry = system.l1_geometry
    stats = dmc_stats(trace, geometry)
    if stats is None:
        return False
    stream = dmc_miss_stream(trace, geometry)
    if stream is None:
        return False
    miss_pos, victims = stream
    addr_list = trace_columns(trace).addrs[miss_pos].tolist()
    victim_list = victims.tolist()
    l2_access = system._l2.access
    shift = geometry.line_shift
    for addr, victim in zip(addr_list, victim_list):  # repro: allow[PERF001] miss stream, |misses| not |records|
        l2_access(0, addr)
        if victim >= 0:
            l2_access(1, victim << shift)
    l1.stats.merge(stats)
    return True
