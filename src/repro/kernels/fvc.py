"""Vectorized DMC+FVC replay: per-slot-group sequential automata.

Exactness argument (each step checked against :class:`FvcSystem`):

* With the default config and ``fvc_entries <= num_sets`` (every
  bundled FVC configuration), all lines of main-cache set ``s`` map to
  FVC slot ``s & (fvc_entries - 1)``; the sets sharing one slot form an
  independent group, so the trace replays as per-group automata with no
  global state.
* For a value-consistent trace (loads return the last value stored to
  their word, zero before any store), an FVC probe of a resident line
  hits exactly when the record's own value is frequent — for loads
  because the stored code always encodes the word's last-stored value,
  for stores because the oracle tests the incoming value directly.
* Only *events* are visited: run starts whose line differs from the
  set's occupant, promotion points (next infrequent touch of a
  slot-resident line), and batch boundaries.  Everything between is a
  main-cache hit or a frequent-value FVC hit, counted in bulk from the
  packed per-line prefix of :mod:`repro.kernels.columnar`.
* A main victim is dirty iff its fill was a store or a store touched
  it while resident (O(1) from the next-store array).  An FVC entry's
  dirty words accumulate from the frequent-store word offsets of each
  committed batch window; a flush writes back exactly the distinct
  dirty words, and a promotion is dirty iff the mask is non-empty.
* Installs are lazy: whether a victim actually enters the FVC depends
  on its frequent-word count at eviction time, which is resolved O(1)
  at the victim's next touch (no touches can intervene), or by one
  bisect when another slot operation needs the answer first.  A still-
  pending install at end of trace is resolved then: entering the FVC
  displaces the resident entry, whose dirty words the oracle flushed
  eagerly at install time.

The kernel declines (returns ``None``) for anything outside this
envelope — set-associative mains or FVCs, non-default configs,
``fvc_entries > num_sets``, value-inconsistent or out-of-range traces —
and the caller replays the pure-Python oracle.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.fvc.encoding import FrequentValueEncoder
from repro.kernels.columnar import (
    PACK_BITS,
    PACK_MASK,
    KernelUnsupported,
    freq_layer,
    is_value_consistent,
    line_index,
    require_numpy,
    set_order,
    trace_columns,
)
from repro.trace.trace import Trace

#: Batch windows with more frequent stores than this use a numpy
#: reduction for the dirty-word mask instead of a short Python loop.
_MASK_REDUCE_THRESHOLD = 64


def fvc_cell_replay(
    trace: Trace,
    geometry: CacheGeometry,
    fvc_entries: int,
    encoder: FrequentValueEncoder,
) -> Optional[Tuple[CacheStats, dict]]:
    """Exact ``FvcSystem`` statistics and extras for one cell, or
    ``None`` when this trace/configuration is outside the kernel's
    proven envelope."""
    if geometry.ways != 1:
        return None
    num_sets = geometry.num_sets
    if not 1 <= fvc_entries <= num_sets:
        return None
    if fvc_entries & (fvc_entries - 1):
        return None
    n = len(trace.records)
    if n == 0:
        return None
    try:
        np = require_numpy()
        cols = trace_columns(trace)
        if not cols.in_range:
            raise KernelUnsupported("records outside the 32-bit domain")
        if not is_value_consistent(trace):
            raise KernelUnsupported("trace is not value-consistent")
        shift = geometry.line_shift
        li = line_index(trace, shift)
        fl = freq_layer(trace, shift, encoder.values)
        so = set_order(trace, shift, num_sets)
    except KernelUnsupported:
        return None

    wpl = geometry.words_per_line
    cf0 = fl.cf0
    nruns = so.nruns

    # Hot per-event lookups go through ndarray.item / plain lists.
    lines = li.lines
    rank = li.rank
    ns = li.ns
    nir = fl.nir
    opf = fl.opf
    pref = fl.pref
    run_id = so.run_id
    run_line = so.run_line
    run_set = so.run_set
    run_start = so.run_start
    sorder = so.sorder
    fs_word = fl.fs_word
    lorder_list = trace.memo(
        f"kernel:lorder_list:{shift}", lambda t: li.lorder.tolist()
    )
    start_list = trace.memo(
        f"kernel:lstart_list:{shift}", lambda t: li.start.tolist()
    )
    sstart_list = trace.memo(
        f"kernel:sstart_list:{shift}:{num_sets}", lambda t: so.sstart.tolist()
    )
    sorder_list = trace.memo(
        f"kernel:sorder_list:{shift}:{num_sets}", lambda t: so.sorder.tolist()
    )
    brk2_list = so.brk2.tolist()
    nbrk = len(brk2_list)
    fs_word_list = fs_word.tolist()
    lslot = li.lslot

    read_misses = write_misses = 0
    fills = writebacks = writeback_words = 0
    fvc_read_hits = fvc_write_hits = 0

    # Per-set occupant state (index = set number).
    occ_line = [-1] * num_sets
    occ_pd = [False] * num_sets
    occ_ns = [0] * num_sets
    occ_slot = [0] * num_sets
    cur_pos = [n] * num_sets
    cur_k = [-1] * num_sets
    for s in range(num_sets):
        k0 = sstart_list[s]
        if k0 < sstart_list[s + 1]:
            cur_pos[s] = sorder_list[k0]
            cur_k[s] = k0

    group_count = fvc_entries
    stride = fvc_entries

    for g in range(group_count):
        group_sets = range(g, num_sets, stride)
        # FVC slot state for this group.
        tag = -1
        tag_slot = 0
        mask = 0
        open_r0 = -1  # CSR rank where the uncommitted hit window starts
        pend_line = -1
        pend_slot = 0
        pend_pos = 0

        def commit(r0: int, r1: int) -> None:
            nonlocal fvc_read_hits, fvc_write_hits, mask
            d = pref.item(r1) - pref.item(r0)
            loads = d & PACK_MASK
            stores = (d >> PACK_BITS) & PACK_MASK
            fvc_read_hits += loads
            fvc_write_hits += stores
            if stores:
                a = (pref.item(r0) >> PACK_BITS) & PACK_MASK
                if stores > _MASK_REDUCE_THRESHOLD:
                    mask |= int(
                        np.bitwise_or.reduce(
                            np.left_shift(1, fs_word[a : a + stores])
                        )
                    )
                else:
                    for w in fs_word_list[a : a + stores]:  # repro: allow[PERF001] short distinct-word slice, numpy reduction above threshold
                        mask |= 1 << w

        def resolve(r_first: int) -> None:
            nonlocal tag, tag_slot, mask, open_r0, pend_line
            nonlocal writebacks, writeback_words
            s0 = start_list[pend_slot]
            d = pref.item(r_first) - pref.item(s0)
            cf = cf0 + (d >> (2 * PACK_BITS)) - (r_first - s0)
            if cf > 0:
                if tag != -1:
                    # Displaced at install time; its window was already
                    # closed there, so the mask is final.
                    if mask:
                        writebacks += 1
                        writeback_words += bin(mask).count("1")
                tag = pend_line
                tag_slot = pend_slot
                mask = 0
                open_r0 = -1
            pend_line = -1

        def install(victim: int, victim_slot: int, p: int) -> None:
            nonlocal open_r0, pend_line, pend_slot, pend_pos
            if open_r0 >= 0:
                # The resident entry has an open hit window: cut it at
                # the install position and reposition the owning set's
                # cursor onto the entry's next touch, which must now be
                # replayed as an explicit event either way.
                hi = start_list[tag_slot + 1]
                r_cut = bisect_left(lorder_list, p, start_list[tag_slot], hi)
                commit(open_r0, r_cut)
                open_r0 = -1
                if r_cut < hi:
                    touch = lorder_list[r_cut]
                    owner = tag & (num_sets - 1)
                    if touch < cur_pos[owner]:
                        cur_pos[owner] = touch
                        cur_k[owner] = -1
            if pend_line != -1:
                resolve(
                    bisect_left(
                        lorder_list,
                        pend_pos,
                        start_list[pend_slot],
                        start_list[pend_slot + 1],
                    )
                )
            pend_line = victim
            pend_slot = victim_slot
            pend_pos = p

        def evict_fill(s: int, line: int, p: int, pd: bool, slot: int) -> None:
            nonlocal fills, writebacks, writeback_words
            victim = occ_line[s]
            if victim != -1:
                if occ_pd[s] or occ_ns[s] < p:
                    writebacks += 1
                    writeback_words += wpl
                install(victim, occ_slot[s], p)
            occ_line[s] = line
            occ_pd[s] = pd
            occ_ns[s] = ns.item(p)
            occ_slot[s] = slot
            fills += 1

        def advance(s: int, p: int, k: int) -> None:
            if k < 0:
                k = bisect_left(sorder_list, p, sstart_list[s], sstart_list[s + 1])
            r = run_id.item(k)
            nxt = r + 1
            if nxt >= nruns or run_set.item(nxt) != s:
                cur_pos[s] = n
            else:
                k2 = run_start.item(nxt)
                cur_pos[s] = sorder_list[k2]
                cur_k[s] = k2

        while True:
            best = n
            bs = -1
            for s in group_sets:
                cp = cur_pos[s]
                if cp < best:
                    best = cp
                    bs = s
            if bs < 0:
                break
            s = bs
            p = best
            k = cur_k[s]
            line = lines.item(p)
            if pend_line != -1:
                if pend_line == line:
                    resolve(rank.item(p))
                elif tag == line:
                    resolve(
                        bisect_left(
                            lorder_list,
                            pend_pos,
                            start_list[pend_slot],
                            start_list[pend_slot + 1],
                        )
                    )
            o = opf.item(p)
            if tag == line:
                if o & 2:
                    # Frequent-value touch of the slot-resident line:
                    # extend/open the bulk hit window and jump the
                    # cursor to the batch boundary.
                    r = rank.item(p)
                    if open_r0 >= 0:
                        commit(open_r0, r)
                    open_r0 = r
                    boundary = nir.item(p)
                    boundary_k = -1
                    if k < 0:
                        k = bisect_left(
                            sorder_list, p, sstart_list[s], sstart_list[s + 1]
                        )
                    r_run = run_id.item(k)
                    nxt = r_run + 1
                    if nxt < nruns and run_set.item(nxt) == s:
                        if run_line.item(nxt) != occ_line[s]:
                            k2 = run_start.item(nxt)
                            third = sorder_list[k2]
                            if third < boundary:
                                boundary = third
                                boundary_k = k2
                        else:
                            # Runs alternate between the resident line
                            # and the occupant until the first break at
                            # least two runs out names a third line.
                            j = bisect_left(brk2_list, nxt + 1)
                            if j < nbrk:
                                rb = brk2_list[j]
                                if run_set.item(rb) == s:
                                    k2 = run_start.item(rb)
                                    third = sorder_list[k2]
                                    if third < boundary:
                                        boundary = third
                                        boundary_k = k2
                    cur_pos[s] = boundary
                    cur_k[s] = boundary_k
                else:
                    # Infrequent touch of the resident line: promotion.
                    r = rank.item(p)
                    if open_r0 >= 0:
                        commit(open_r0, r)
                        open_r0 = -1
                    pd = mask != 0
                    tag = -1
                    mask = 0
                    if o & 1:
                        write_misses += 1
                    else:
                        read_misses += 1
                    evict_fill(s, line, p, pd, lslot.item(p))
                    advance(s, p, k)
            else:
                # Miss in both structures: plain fill.
                if o & 1:
                    write_misses += 1
                else:
                    read_misses += 1
                evict_fill(s, line, p, False, lslot.item(p))
                advance(s, p, k)

        if pend_line != -1:
            # The oracle installs eagerly: a pending install left at end
            # of trace still displaces the resident entry (flushing its
            # dirty words) when the victim's frequent-word count admits
            # it.  A pending install implies no open hit window.
            resolve(
                bisect_left(
                    lorder_list,
                    pend_pos,
                    start_list[pend_slot],
                    start_list[pend_slot + 1],
                )
            )
        if open_r0 >= 0:
            # Remaining touches of the resident line are all frequent
            # hits (any infrequent touch or third line would have been
            # a boundary event) and nothing displaced the entry.
            commit(open_r0, start_list[tag_slot + 1])

    stats = CacheStats()
    stats.read_misses = read_misses
    stats.write_misses = write_misses
    stats.read_hits = cols.nloads - read_misses
    stats.write_hits = (n - cols.nloads) - write_misses
    stats.fills = fills
    stats.fill_words = fills * wpl
    stats.writebacks = writebacks
    stats.writeback_words = writeback_words
    total_fvc = fvc_read_hits + fvc_write_hits
    extras = {
        "main_hits": n - read_misses - write_misses - total_fvc,
        "fvc_hits": total_fvc,
        "fvc_read_hits": fvc_read_hits,
        "fvc_write_hits": fvc_write_hits,
    }
    return stats, extras
