"""Vectorized set-associative LRU replay via conservative run flags.

In the set-grouped order, a run of accesses to one line can only miss
at its first access.  A run start whose line appeared within the
previous ``ways`` runs of the same segment cannot miss either: at most
``ways - 1`` distinct other lines touched the set since that
appearance, so the line's stack distance is below ``ways``.  Flagging
only the remaining run starts gives a superset of the misses; each
flagged *event* is then resolved against a per-set resident map, where
a flagged hit is simply skipped (recency is recovered exactly from the
line-CSR order at victim-selection time, so false events need no state
updates at all).

Victim choice bisects each resident line's access list for its last
touch before the miss — ``ways`` O(log n) probes per true miss — and a
victim is dirty exactly when its fill access was a store or any store
touched it while resident (an O(1) next-store lookup).  The bisects run
over a memoised plain-list copy of the CSR order: ``bisect_left`` on a
list subrange is an order of magnitude cheaper per probe than a numpy
``searchsorted`` call at these sizes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.kernels.columnar import (
    KernelUnsupported,
    line_index,
    require_numpy,
    set_order,
    trace_columns,
)
from repro.trace.trace import Trace

#: Above this associativity the per-miss bisection cost approaches the
#: oracle's, so the kernel declines.
_MAX_WAYS = 8


def setassoc_stats(trace: Trace, geometry: CacheGeometry) -> Optional[CacheStats]:
    """Exact :class:`SetAssociativeCache` statistics, or ``None`` when
    the kernel declines."""
    ways = geometry.ways
    if ways < 2 or ways > _MAX_WAYS:
        return None
    try:
        np = require_numpy()
        cols = trace_columns(trace)
        if not cols.in_range:
            raise KernelUnsupported("records outside the 32-bit domain")
        li = line_index(trace, geometry.line_shift)
        so = set_order(trace, geometry.line_shift, geometry.num_sets)
    except KernelUnsupported:
        return None

    flagged = trace.memo(
        f"kernel:saflags:{geometry.line_shift}:{geometry.num_sets}:{ways}",
        lambda t: _flagged_runs(np, so, ways),
    )
    event_pos = so.sorder[so.run_start[:-1][flagged]].tolist()
    event_line = so.run_line[flagged].tolist()
    event_set = so.run_set[flagged].tolist()
    event_op = cols.ops[so.sorder[so.run_start[:-1][flagged]]].tolist()

    shift = geometry.line_shift
    lorder_list = trace.memo(
        f"kernel:lorder_list:{shift}", lambda t: li.lorder.tolist()
    )
    start_list = trace.memo(
        f"kernel:lstart_list:{shift}", lambda t: li.start.tolist()
    )
    lslot = li.lslot
    ns = li.ns

    stats = CacheStats()
    read_misses = write_misses = fills = writebacks = 0
    current_set = -1
    # line -> (fill position, CSR bounds of the line's access list)
    resident = {}
    index = 0
    total = len(event_pos)
    while index < total:
        p = event_pos[index]
        line = event_line[index]
        set_id = event_set[index]
        if set_id != current_set:
            current_set = set_id
            resident = {}
        if line in resident:
            index += 1
            continue  # conservative flag; actually a hit
        if event_op[index]:
            write_misses += 1
        else:
            read_misses += 1
        index += 1
        fills += 1
        if len(resident) == ways:
            victim = -1
            victim_touch = -1
            victim_fill = -1
            for resident_line, (fill_pos, lo, hi) in resident.items():
                touch_rank = bisect_left(lorder_list, p, lo, hi) - 1
                last_touch = lorder_list[touch_rank]
                if victim < 0 or last_touch < victim_touch:
                    victim = resident_line
                    victim_touch = last_touch
                    victim_fill = fill_pos
            del resident[victim]
            if ns.item(victim_fill) < p:
                writebacks += 1
        slot = lslot.item(p)
        resident[line] = (p, start_list[slot], start_list[slot + 1])
    stats.read_misses = read_misses
    stats.write_misses = write_misses
    stats.read_hits = cols.nloads - read_misses
    stats.write_hits = (cols.n - cols.nloads) - write_misses
    stats.fills = fills
    stats.fill_words = fills * geometry.words_per_line
    stats.writebacks = writebacks
    stats.writeback_words = writebacks * geometry.words_per_line
    return stats


def _flagged_runs(np, so, ways: int):
    """Boolean mask over runs: True when the run's line did *not* appear
    in the previous ``ways`` runs of the same segment (a potential miss)."""
    seen = np.zeros(so.nruns, dtype=bool)
    for lag in range(1, ways + 1):
        if so.nruns > lag:
            seen[lag:] |= (so.run_line[lag:] == so.run_line[:-lag]) & (
                so.run_set[lag:] == so.run_set[:-lag]
            )
    return ~seen
