"""The 147.vortex analog: an object-oriented database.

147.vortex builds and queries an object store with several indexes.
The analog implements the database for real: fixed-shape 16-word
objects (type tag, id, flags, link, key, 11 payload words) are
allocated in the heap, indexed by two chained hash indexes (by id and
by key) plus a type-extent list, then exercised by a Zipf-distributed
query mix of lookups, range-ish scans, field updates, deletes and
re-inserts.

Behavioural signature: the store (several hundred KB) dwarfs every
cache, so misses are dominated by *capacity* — which is why vortex
keeps most of its FVC benefit even under a 4-way base cache (Fig. 14),
and why the benefit keeps growing with FVC size (Fig. 10): roughly 60%
of object words are frequent values (zero padding, type tags, status
enums), so each FVC entry shields most of a line's reloads.
"""

from __future__ import annotations

from typing import Dict

from repro.mem.space import AddressSpace
from repro.workloads.base import Workload, WorkloadInput

_OBJ_WORDS = 16
_ID_BUCKETS = 2048
_KEY_BUCKETS = 2048

# Object field offsets (bytes).
_F_TYPE = 0
_F_ID = 4
_F_FLAGS = 8
_F_ID_NEXT = 12
_F_KEY = 16
_F_KEY_NEXT = 20
_F_PAYLOAD = 24  # ten payload words follow

_TYPE_TAGS = (4, 5, 6, 0x30)  # small enums, as in vortex's Table 1 column


class VortexWorkload(Workload):
    """Object-database analog (build, query, update, churn)."""

    name = "vortex"
    spec_analog = "147.vortex"
    exhibits_fvl = True

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput(
                "test", {"objects": 1200, "queries": 3000, "churn": 120},
                data_seed=91,
            ),
            "train": WorkloadInput(
                "train", {"objects": 2200, "queries": 7000, "churn": 220},
                data_seed=92,
            ),
            "ref": WorkloadInput(
                "ref", {"objects": 4000, "queries": 14000, "churn": 400},
                data_seed=93,
            ),
        }

    # ------------------------------------------------------------------
    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        rng = self._rng(inp, "db")
        load, store = space.load, space.store
        heap = space.heap
        static = space.static

        id_index = static.alloc(_ID_BUCKETS)
        key_index = static.alloc(_KEY_BUCKETS)
        # Tombstone map: one status word per possible object slot (0 =
        # live).  Every query checks it first; being large (24 KB) and
        # almost entirely zero, its reuse misses are capacity misses
        # made of frequent values — FVC food at any associativity.
        tombstones = static.alloc(6144)
        for index in range(_ID_BUCKETS):
            store(id_index + index * 4, 0)
        for index in range(_KEY_BUCKETS):
            store(key_index + index * 4, 0)
        for index in range(6144):
            store(tombstones + index * 4, 0)

        num_objects = inp.params["objects"]

        def insert(object_id: int) -> int:
            """Allocate, initialise and index one object."""
            obj = heap.alloc(_OBJ_WORDS)
            key = (object_id * 2654435761) & 0xFFFF
            store(obj + _F_TYPE, _TYPE_TAGS[object_id % len(_TYPE_TAGS)])
            store(obj + _F_ID, object_id)
            store(obj + _F_FLAGS, 0)
            store(obj + _F_KEY, key)
            # Payload: mostly zero padding plus a few live fields —
            # the frequent-value-rich interior of a vortex record.
            for slot in range(10):
                offset = obj + _F_PAYLOAD + slot * 4
                if slot == 0:
                    store(offset, 1)  # refcount
                elif slot == 1:
                    store(offset, rng.randrange(1 << 16))  # timestamp
                else:
                    store(offset, 0)
            id_bucket = id_index + (object_id % _ID_BUCKETS) * 4
            store(obj + _F_ID_NEXT, load(id_bucket))
            store(id_bucket, obj)
            key_bucket = key_index + (key % _KEY_BUCKETS) * 4
            store(obj + _F_KEY_NEXT, load(key_bucket))
            store(key_bucket, obj)
            return obj

        def lookup_by_id(object_id: int) -> int:
            entry = load(id_index + (object_id % _ID_BUCKETS) * 4)
            while entry:
                if load(entry + _F_ID) == object_id:
                    return entry
                entry = load(entry + _F_ID_NEXT)
            return 0

        def _chain_remove(bucket: int, target: int, next_offset: int) -> bool:
            """Splice ``target`` out of the chain rooted at ``bucket``."""
            entry = load(bucket)
            previous = 0
            while entry:
                follower = load(entry + next_offset)
                if entry == target:
                    if previous:
                        store(previous + next_offset, follower)
                    else:
                        store(bucket, follower)
                    return True
                previous = entry
                entry = follower
            return False

        def unlink(object_id: int) -> int:
            """Remove one object from both indexes; returns it or 0."""
            obj = lookup_by_id(object_id)
            if not obj:
                return 0
            _chain_remove(
                id_index + (object_id % _ID_BUCKETS) * 4, obj, _F_ID_NEXT
            )
            key = load(obj + _F_KEY)
            _chain_remove(
                key_index + (key % _KEY_BUCKETS) * 4, obj, _F_KEY_NEXT
            )
            return obj

        # --- Build phase ------------------------------------------------
        for object_id in range(num_objects):
            insert(object_id)

        # --- Query mix ---------------------------------------------------
        for query in range(inp.params["queries"]):
            u = rng.random()
            # Zipf-flavoured id: recent/low ids are much hotter, so hot
            # objects fit the cache and the tail supplies capacity misses.
            object_id = int(num_objects ** (rng.random() ** 1.8)) - 1
            object_id = min(max(object_id, 0), num_objects - 1)
            # Validity check against the tombstone map (frequent-valued).
            load(tombstones + (object_id % 6144) * 4)
            obj = lookup_by_id(object_id)
            if not obj:
                continue
            if u < 0.55:
                # Read query: type check + full field read.
                load(obj + _F_TYPE)
                for slot in range(10):
                    load(obj + _F_PAYLOAD + slot * 4)
            elif u < 0.80:
                # Key probe: hash chain walk on the second index.
                key = load(obj + _F_KEY)
                entry = load(key_index + (key % _KEY_BUCKETS) * 4)
                while entry and load(entry + _F_KEY) != key:
                    entry = load(entry + _F_KEY_NEXT)
            else:
                # Update: toggle status flags, bump refcount.
                flags = load(obj + _F_FLAGS)
                store(obj + _F_FLAGS, flags ^ 1)
                count = load(obj + _F_PAYLOAD)
                store(obj + _F_PAYLOAD, (count + 1) & 0xFFFFFFFF)
            # Churn: periodically delete one object and insert a new one.
            if query % (inp.params["queries"] // inp.params["churn"] + 1) == 0:
                victim = rng.randrange(num_objects)
                removed = unlink(victim)
                if removed:
                    heap.free(removed)
                    store(tombstones + (victim % 6144) * 4, 1)
                insert(victim)
                store(tombstones + (victim % 6144) * 4, 0)
