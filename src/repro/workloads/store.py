"""Session-wide trace cache.

Every experiment replays the same workload traces against many cache
configurations.  Regenerating a trace per configuration would dominate
run time, while holding all twelve ref traces resident would dominate
memory — so the store keeps a small LRU of materialised traces (the
experiments sweep configurations workload-by-workload, which this
policy serves perfectly).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from repro.trace.trace import Trace


class TraceStore:
    """LRU cache of ``(workload name, input name) → Trace``."""

    def __init__(self, max_traces: int = 8) -> None:
        if max_traces <= 0:
            raise ValueError("store must hold at least one trace")
        self.max_traces = max_traces
        self._traces: "OrderedDict[Tuple[str, str], Trace]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, workload_name: str, input_name: str = "ref") -> Trace:
        """Fetch (or generate and cache) one trace."""
        key = (workload_name, input_name)
        cached = self._traces.get(key)
        if cached is not None:
            self._traces.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        from repro.workloads.registry import get_workload

        trace = get_workload(workload_name).generate_trace(input_name)
        self._traces[key] = trace
        if len(self._traces) > self.max_traces:
            self._traces.popitem(last=False)
        return trace

    def clear(self) -> None:
        """Drop every cached trace."""
        self._traces.clear()

    def __len__(self) -> int:
        return len(self._traces)


#: The store shared by experiments, benchmarks and examples.
shared_store = TraceStore()


def get_trace(workload_name: str, input_name: str = "ref") -> Trace:
    """Convenience accessor for :data:`shared_store`."""
    return shared_store.get(workload_name, input_name)
