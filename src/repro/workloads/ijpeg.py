"""The 132.ijpeg analog: a working DCT image codec.

132.ijpeg compresses and decompresses images.  The analog implements
the core pipeline for real on simulated memory: per frame it
synthesises a gradient-plus-noise image, runs a forward 8x8 DCT with
quantisation over every block (pixels loaded from memory, transforms
in registers — i.e. Python locals — as a compiled codec would), packs
coefficient pairs into words, then reconstructs the image via
dequantise + inverse DCT, storing pixels back.

The second no-FVL control: pixel and packed-coefficient values are
spread over hundreds of distinct magnitudes, and each frame rewrites
the image and coefficient planes in place, so neither frequent values
nor constant addresses emerge (Table 4: 6.7%).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.mem.space import AddressSpace
from repro.workloads.base import Workload, WorkloadInput

_BLOCK = 8

#: Precomputed DCT-II basis (the codec's constant tables live in host
#: memory, standing in for compiled-in coefficient ROMs).
_COS = [
    [math.cos((2 * x + 1) * u * math.pi / 16) for x in range(_BLOCK)]
    for u in range(_BLOCK)
]
_ALPHA = [math.sqrt(0.5) if u == 0 else 1.0 for u in range(_BLOCK)]


class IjpegWorkload(Workload):
    """DCT-codec analog — the second no-FVL control."""

    name = "ijpeg"
    spec_analog = "132.ijpeg"
    exhibits_fvl = False

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput("test", {"size": 48, "frames": 2}, data_seed=7),
            "train": WorkloadInput("train", {"size": 80, "frames": 2}, data_seed=8),
            "ref": WorkloadInput("ref", {"size": 96, "frames": 3}, data_seed=9),
        }

    # ------------------------------------------------------------------
    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        rng = self._rng(inp, "image")
        load, store = space.load, space.store
        static = space.static

        size = inp.params["size"]
        pixels = static.alloc(size * size)
        # Coefficients are packed two per word (like the codec's int16
        # planes), halving the plane and keeping values diverse.
        coeffs = static.alloc(size * size // 2)
        recon = static.alloc(size * size)
        quant = static.alloc(_BLOCK * _BLOCK)

        # Quantisation matrix: mild (few forced zeros).
        for v in range(_BLOCK):
            for u in range(_BLOCK):
                store(quant + (v * _BLOCK + u) * 4, 4 + ((u + v) * 3) // 2)

        # The codec reads the quantisation matrix into registers once
        # per frame (traced loads), then uses the register copy in the
        # per-block loops, as compiled codecs do.
        for frame in range(inp.params["frames"]):
            quant_regs = [
                load(quant + index * 4) for index in range(_BLOCK * _BLOCK)
            ]
            # --- Synthesise the frame in place ------------------------
            phase = frame * 17
            for row in range(size):
                for col in range(size):
                    value = (
                        128
                        + int(80 * math.sin((row + phase) * 0.11))
                        + int(40 * math.cos(col * 0.19))
                        + rng.randrange(-24, 25)
                    )
                    store(pixels + (row * size + col) * 4, max(0, min(255, value)))

            # --- Forward DCT + quantise per 8x8 block ------------------
            for block_row in range(0, size, _BLOCK):
                for block_col in range(0, size, _BLOCK):
                    block: List[List[int]] = [
                        [
                            load(pixels + ((block_row + y) * size + block_col + x) * 4)
                            - 128
                            for x in range(_BLOCK)
                        ]
                        for y in range(_BLOCK)
                    ]
                    quantised = self._forward_block(block, quant_regs)
                    self._store_block(
                        quantised, coeffs, size, block_row, block_col, store
                    )

            # --- Dequantise + inverse DCT ------------------------------
            for block_row in range(0, size, _BLOCK):
                for block_col in range(0, size, _BLOCK):
                    quantised = self._load_block(
                        coeffs, size, block_row, block_col, load
                    )
                    restored = self._inverse_block(quantised, quant_regs)
                    for y in range(_BLOCK):
                        for x in range(_BLOCK):
                            value = max(0, min(255, restored[y][x] + 128))
                            store(
                                recon + ((block_row + y) * size + block_col + x) * 4,
                                value,
                            )

    # DCT helpers ----------------------------------------------------------
    @staticmethod
    def _forward_block(block, quant_regs) -> List[List[int]]:
        out = [[0] * _BLOCK for _ in range(_BLOCK)]
        for v in range(_BLOCK):
            for u in range(_BLOCK):
                total = 0.0
                for y in range(_BLOCK):
                    for x in range(_BLOCK):
                        total += block[y][x] * _COS[u][x] * _COS[v][y]
                coefficient = 0.25 * _ALPHA[u] * _ALPHA[v] * total
                q = quant_regs[v * _BLOCK + u]
                out[v][u] = int(round(coefficient / q))
        return out

    @staticmethod
    def _inverse_block(quantised, quant_regs) -> List[List[int]]:
        scaled = [
            [
                quantised[v][u] * quant_regs[v * _BLOCK + u]
                for u in range(_BLOCK)
            ]
            for v in range(_BLOCK)
        ]
        out = [[0] * _BLOCK for _ in range(_BLOCK)]
        for y in range(_BLOCK):
            for x in range(_BLOCK):
                total = 0.0
                for v in range(_BLOCK):
                    for u in range(_BLOCK):
                        total += (
                            _ALPHA[u]
                            * _ALPHA[v]
                            * scaled[v][u]
                            * _COS[u][x]
                            * _COS[v][y]
                        )
                out[y][x] = int(round(0.25 * total))
        return out

    # Packed-coefficient plane I/O ----------------------------------------
    @staticmethod
    def _store_block(quantised, coeffs, size, block_row, block_col, store) -> None:
        """Pack coefficient pairs into int16 halves of each word."""
        for y in range(_BLOCK):
            for x in range(0, _BLOCK, 2):
                a = quantised[y][x] & 0xFFFF
                b = quantised[y][x + 1] & 0xFFFF
                linear = (block_row + y) * size + block_col + x
                store(coeffs + (linear // 2) * 4, (b << 16) | a)

    @staticmethod
    def _load_block(coeffs, size, block_row, block_col, load) -> List[List[int]]:
        def unpack(half: int) -> int:
            return half - 0x10000 if half >= 0x8000 else half

        out = [[0] * _BLOCK for _ in range(_BLOCK)]
        for y in range(_BLOCK):
            for x in range(0, _BLOCK, 2):
                linear = (block_row + y) * size + block_col + x
                word = load(coeffs + (linear // 2) * 4)
                out[y][x] = unpack(word & 0xFFFF)
                out[y][x + 1] = unpack(word >> 16)
        return out
