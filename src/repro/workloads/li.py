"""The 130.li analog: a working Lisp interpreter over simulated memory.

130.li is xlisp running Lisp programs.  The analog implements a real
Lisp evaluator whose *entire object world* — cons cells, symbols,
environments, closures — lives in the simulated heap and static
segments, so every ``car``/``cdr`` is a traced load and every
``rplacd`` a traced store.

Value representation (one word):

* ``0`` — NIL;
* ``(n << 8) | 3`` — tagged fixnum (xlisp-style immediates; these are
  exactly the 0x3/0x103/0x303 values in the paper's Table 1 column for
  130.li);
* heap address — cons cell (two words: car, cdr);
* static address — symbol entry (three words: type tag, global value,
  id) — xlisp objects carry a type word that the evaluator checks
  before every use.

The interpreted programs: a recursive Fibonacci (environment churn), an
in-place insertion sort via ``rplacd`` surgery (the address mutation
that drives li's low 28.8% constant-address fraction), and map/sum
pipelines that allocate fresh lists which are arena-freed afterwards
(address reuse).  The symbol table is placed 64 KB-aligned with the
heap base so hot symbol entries alias the hot program cells in every
direct-mapped cache — li's conflict-dominated FVC profile (Fig. 14).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import WorkloadError
from repro.mem.space import AddressSpace
from repro.workloads.base import Workload, WorkloadInput

NIL = 0
_FIXNUM_TAG = 3
#: Type word at the head of every symbol entry (xlisp-style header).
_SYMBOL_TYPE = 0x53


def make_fixnum(n: int) -> int:
    """Tag a small integer as a Lisp immediate."""
    return ((n << 8) | _FIXNUM_TAG) & 0xFFFFFFFF


def fixnum_value(word: int) -> int:
    """Untag a Lisp immediate (sign-extended from 24 bits)."""
    n = word >> 8
    if n >= 1 << 23:
        n -= 1 << 24
    return n


def is_fixnum(word: int) -> bool:
    """True for tagged immediates."""
    return (word & 0xFF) == _FIXNUM_TAG


class LispMachine:
    """The evaluator.  All Lisp data lives in ``space``."""

    def __init__(self, space: AddressSpace) -> None:
        self._space = space
        self._heap = space.heap
        self._load = space.load
        self._store = space.store
        # Symbol table: 256 three-word entries, placed so that its base
        # is 64 KB-congruent with the heap base (conflict pair).
        static_base = space.layout.static_base
        aligned = (static_base + 0xFFFF) & ~0xFFFF
        self._symbols = space.static.alloc(256 * 3, at=aligned)
        self._symbol_ids: Dict[str, int] = {}
        self._arena: List[int] = []

    # Object constructors ------------------------------------------------
    def cons(self, car: int, cdr: int) -> int:
        """Allocate one cell (registered in the current arena).

        The cdr (usually a pointer) is initialised before the car, the
        order xlisp's cell initialisation uses — which also means a
        frequent-valued car never opens a new FVC entry that the cdr
        store would immediately invalidate.
        """
        cell = self._heap.alloc(2)
        self._store(cell + 4, cdr)
        self._store(cell, car)
        self._arena.append(cell)
        return cell

    def car(self, cell: int) -> int:
        return self._load(cell)

    def cdr(self, cell: int) -> int:
        return self._load(cell + 4)

    def rplaca(self, cell: int, value: int) -> None:
        self._store(cell, value)

    def rplacd(self, cell: int, value: int) -> None:
        self._store(cell + 4, value)

    def intern(self, name: str) -> int:
        """Find-or-create the symbol entry for ``name``."""
        entry = self._symbol_ids.get(name)
        if entry is not None:
            return entry
        index = len(self._symbol_ids)
        if index >= 256:
            raise WorkloadError("symbol table full")
        entry = self._symbols + index * 12
        self._store(entry, _SYMBOL_TYPE)  # object type word
        self._store(entry + 4, NIL)  # global value
        self._store(entry + 8, 0x1000 + index)  # symbol id word
        self._symbol_ids[name] = entry
        return entry

    def is_symbol(self, word: int) -> bool:
        """Static-segment addresses in the table range are symbols."""
        return self._symbols <= word < self._symbols + 256 * 12

    def list_from(self, items: List[int]) -> int:
        """Build a proper list from Python-side items."""
        result = NIL
        for item in reversed(items):
            result = self.cons(item, result)
        return result

    def commit_permanent(self) -> None:
        """Pin every cell allocated so far (program structure, toplevel
        closures) so later arena collections never reclaim them."""
        self._arena.clear()

    def free_arena(self) -> None:
        """Free every cell allocated since the last commit/collection
        (the analog of xlisp's GC; the free list makes addresses
        reusable)."""
        for cell in self._arena:
            self._heap.free(cell)
        self._arena.clear()

    # Globals / environments ---------------------------------------------
    def set_global(self, symbol: int, value: int) -> None:
        self._store(symbol + 4, value)

    def get_global(self, symbol: int) -> int:
        return self._load(symbol + 4)

    def env_bind(self, env: int, symbol: int, value: int) -> int:
        """Prepend one binding; environments are assoc lists."""
        return self.cons(self.cons(symbol, value), env)

    def env_lookup(self, env: int, symbol: int) -> Optional[int]:
        """Walk the assoc list; ``None`` when unbound locally."""
        probe = env
        while probe != NIL:
            binding = self.car(probe)
            if self.car(binding) == symbol:
                return self.cdr(binding)
            probe = self.cdr(probe)
        return None

    # Evaluator -----------------------------------------------------------
    def eval(self, expr: int, env: int = NIL) -> int:
        """Evaluate one expression word."""
        if expr == NIL or is_fixnum(expr):
            return expr
        if self.is_symbol(expr):
            # Dynamic type check, as xlisp performs before every symbol
            # dereference (reads the constant type word).
            self._load(expr)
            local = self.env_lookup(env, expr)
            return self.get_global(expr) if local is None else local

        # A cons: special form or application.
        frame = self._space.stack.push_frame(3)
        self._store(frame, expr)
        self._store(frame + 4, env)
        try:
            head = self.car(expr)
            args = self.cdr(expr)
            if self.is_symbol(head):
                self._load(head)  # type check on the head symbol
                name_id = self._load(head + 8)
                form = self._special_forms.get(name_id - 0x1000)
                if form is not None:
                    return form(self, args, env)
            func = self.eval(head, env)
            values = []
            probe = args
            while probe != NIL:
                values.append(self.eval(self.car(probe), env))
                probe = self.cdr(probe)
            return self.apply(func, values)
        finally:
            self._space.stack.pop_frame()

    def apply(self, func: int, values: List[int]) -> int:
        """Apply a closure or builtin to evaluated arguments."""
        if is_fixnum(func):
            # Builtins are tagged fixnum opcodes.
            return self._apply_builtin(fixnum_value(func), values)
        # Closure: (params body env), built by the lambda form.
        params = self.car(func)
        body = self.car(self.cdr(func))
        env = self.cdr(self.cdr(func))
        probe = params
        for value in values:
            if probe == NIL:
                break
            env = self.env_bind(env, self.car(probe), value)
            probe = self.cdr(probe)
        return self.eval(body, env)

    # Builtin opcodes -----------------------------------------------------
    _BUILTIN_NAMES = (
        "+", "-", "*", "<", "=", "cons", "car", "cdr", "null", "rplaca",
        "rplacd",
    )

    def _apply_builtin(self, opcode: int, values: List[int]) -> int:
        name = self._BUILTIN_NAMES[opcode]
        if name in ("+", "-", "*", "<", "="):
            a = fixnum_value(values[0])
            b = fixnum_value(values[1])
            if name == "+":
                return make_fixnum(a + b)
            if name == "-":
                return make_fixnum(a - b)
            if name == "*":
                return make_fixnum(a * b)
            if name == "<":
                return make_fixnum(1) if a < b else NIL
            return make_fixnum(1) if a == b else NIL
        if name == "cons":
            return self.cons(values[0], values[1])
        if name == "car":
            return self.car(values[0])
        if name == "cdr":
            return self.cdr(values[0])
        if name == "null":
            return make_fixnum(1) if values[0] == NIL else NIL
        if name == "rplaca":
            self.rplaca(values[0], values[1])
            return values[0]
        if name == "rplacd":
            self.rplacd(values[0], values[1])
            return values[0]
        raise WorkloadError(f"unknown builtin {name!r}")

    def install_builtins(self) -> None:
        """Bind every builtin symbol to its opcode immediate."""
        for opcode, name in enumerate(self._BUILTIN_NAMES):
            self.set_global(self.intern(name), make_fixnum(opcode))

    # Special forms ---------------------------------------------------
    def _form_quote(self, args: int, env: int) -> int:
        return self.car(args)

    def _form_if(self, args: int, env: int) -> int:
        test = self.eval(self.car(args), env)
        branch = self.cdr(args)
        if test != NIL:
            return self.eval(self.car(branch), env)
        alternative = self.cdr(branch)
        if alternative == NIL:
            return NIL
        return self.eval(self.car(alternative), env)

    def _form_lambda(self, args: int, env: int) -> int:
        params = self.car(args)
        body = self.car(self.cdr(args))
        return self.cons(params, self.cons(body, env))

    def _form_define(self, args: int, env: int) -> int:
        symbol = self.car(args)
        value = self.eval(self.car(self.cdr(args)), env)
        self.set_global(symbol, value)
        return symbol

    _special_forms = {}

    # Reader --------------------------------------------------------------
    def read(self, source) -> int:
        """Build the in-memory form of a Python-side S-expression
        (``int`` → fixnum, ``str`` → symbol, ``list``/``tuple`` → list)."""
        if isinstance(source, int):
            return make_fixnum(source)
        if isinstance(source, str):
            return self.intern(source)
        return self.list_from([self.read(item) for item in source])


# Special-form dispatch is keyed by symbol index; the first four
# interned symbols are reserved for them (see LiWorkload._run).
LispMachine._special_forms = {
    0: LispMachine._form_quote,
    1: LispMachine._form_if,
    2: LispMachine._form_lambda,
    3: LispMachine._form_define,
}


class LiWorkload(Workload):
    """Lisp-interpreter analog (tagged fixnums, assoc environments,
    heavy cell mutation and reuse)."""

    name = "li"
    spec_analog = "130.li"
    exhibits_fvl = True

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput(
                "test", {"fib": 9, "sort_len": 48, "map_len": 80, "rounds": 2},
                data_seed=41,
            ),
            "train": WorkloadInput(
                "train", {"fib": 11, "sort_len": 72, "map_len": 140, "rounds": 3},
                data_seed=42,
            ),
            "ref": WorkloadInput(
                "ref", {"fib": 13, "sort_len": 100, "map_len": 200, "rounds": 3},
                data_seed=43,
            ),
        }

    # ------------------------------------------------------------------
    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        # Deep Lisp recursion (mapd/sum over long lists) costs ~12 host
        # frames per interpreted level; give the host interpreter room.
        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 60_000))
        try:
            self._run_programs(space, inp)
        finally:
            sys.setrecursionlimit(old_limit)

    def _run_programs(self, space: AddressSpace, inp: WorkloadInput) -> None:
        machine = LispMachine(space)
        # Reserve the special-form symbol indexes first (reader order).
        for name in ("quote", "if", "lambda", "define"):
            machine.intern(name)
        machine.install_builtins()
        rng = self._rng(inp, "lists")

        # (define fib (lambda (n) (if (< n 2) n (+ (fib (- n 1))
        #                                          (fib (- n 2))))))
        machine.eval(machine.read(
            ["define", "fib",
             ["lambda", ["n"],
              ["if", ["<", "n", 2],
               "n",
               ["+", ["fib", ["-", "n", 1]],
                ["fib", ["-", "n", 2]]]]]]))
        # (define sum (lambda (l) (if (null l) 0
        #                              (+ (car l) (sum (cdr l))))))
        machine.eval(machine.read(
            ["define", "sum",
             ["lambda", ["l"],
              ["if", ["null", "l"], 0,
               ["+", ["car", "l"], ["sum", ["cdr", "l"]]]]]]))
        # (define double (lambda (x) (+ x x)))
        machine.eval(machine.read(
            ["define", "double", ["lambda", ["x"], ["+", "x", "x"]]]))
        # (define mapd (lambda (l) (if (null l) (quote ())
        #                  (cons (double (car l)) (mapd (cdr l))))))
        machine.eval(machine.read(
            ["define", "mapd",
             ["lambda", ["l"],
              ["if", ["null", "l"], ["quote", []],
               ["cons", ["double", ["car", "l"]],
                ["mapd", ["cdr", "l"]]]]]]))

        # A permanent quoted table (xlisp programs carry sizeable
        # constant list structure) scanned read-only every round — the
        # part of li's footprint that *does* stay constant (Table 4).
        table = machine.list_from(
            [make_fixnum(index % 16) for index in range(700)]
        )
        machine.set_global(machine.intern("table"), table)

        # The toplevel programs and their closures live for the whole
        # run; only per-round data is arena-collected.
        machine.commit_permanent()

        def insertion_sort_inplace(head: int) -> int:
            """Destructive insertion sort via rplacd surgery — the
            mutation that keeps li's constant-address fraction low."""
            sorted_head = NIL
            node = head
            while node != NIL:
                rest = machine.cdr(node)
                key = fixnum_value(machine.car(node))
                if sorted_head == NIL or key <= fixnum_value(
                    machine.car(sorted_head)
                ):
                    machine.rplacd(node, sorted_head)
                    sorted_head = node
                else:
                    probe = sorted_head
                    while (
                        machine.cdr(probe) != NIL
                        and fixnum_value(machine.car(machine.cdr(probe))) < key
                    ):
                        probe = machine.cdr(probe)
                    machine.rplacd(node, machine.cdr(probe))
                    machine.rplacd(probe, node)
                node = rest
            return sorted_head

        for _ in range(inp.params["rounds"]):
            # Recursive interpretation (environment churn).
            machine.eval(machine.read(["fib", inp.params["fib"]]))
            machine.free_arena()

            # Read-only scan of the permanent table.
            machine.apply(
                machine.get_global(machine.intern("sum")),
                [machine.get_global(machine.intern("table"))],
            )
            machine.free_arena()

            # Destructive sort over freshly consed data.
            data = machine.list_from(
                [make_fixnum(rng.randrange(1000))
                 for _ in range(inp.params["sort_len"])]
            )
            head = insertion_sort_inplace(data)
            machine.apply(machine.get_global(machine.intern("sum")), [head])
            machine.free_arena()

            # map/sum pipeline over small immediates (the tagged values
            # 0x3/0x103/... that dominate li's frequent value set).
            source = machine.list_from(
                [make_fixnum(rng.randrange(8))
                 for _ in range(inp.params["map_len"])]
            )
            machine.set_global(machine.intern("data"), source)
            machine.eval(machine.read(["sum", ["mapd", "data"]]))
            machine.free_arena()
