"""SRV-1: the guest RISC machine interpreted by the m88ksim analog.

124.m88ksim is a cycle-level simulator of the Motorola 88100 running
real guest programs.  The analog does the same thing one level down: it
implements a small load/store ISA (SRV-1) whose architectural state —
register file, code image, guest data RAM, decode table, status flags,
protection table — lives entirely in the *simulated* word memory, so
every step of the interpreter issues genuine loads and stores exactly
like the original simulator's.

Instruction word layout (32 bits)::

    op(8) | rd(4) | rs(4) | imm(16, signed)

Guest data addresses are word indexes into the guest RAM region;
``LD``/``ST`` compute ``rs + imm`` as a word index.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import SimulatedMachineError
from repro.common.words import WORD_MASK, to_s32
from repro.mem.space import AddressSpace

# Opcodes --------------------------------------------------------------
HALT = 0x00
LDI = 0x01   # rd = imm
ADD = 0x02   # rd += rs
ADDI = 0x03  # rd += imm
LD = 0x04    # rd = guest_ram[rs + imm]
ST = 0x05    # guest_ram[rs + imm] = rd
BNE = 0x06   # if rd != rs: pc += imm
BEQ = 0x07   # if rd == rs: pc += imm
MOV = 0x08   # rd = rs
AND = 0x09   # rd &= rs
SHR = 0x0A   # rd >>= imm
MUL = 0x0B   # rd *= rs
SUB = 0x0C   # rd -= rs
JMP = 0x0D   # pc += imm
BLT = 0x0E   # if signed(rd) < signed(rs): pc += imm
XOR = 0x0F   # rd ^= rs

NUM_OPCODES = 16
NUM_REGISTERS = 16

_MNEMONICS = {
    HALT: "halt", LDI: "ldi", ADD: "add", ADDI: "addi", LD: "ld",
    ST: "st", BNE: "bne", BEQ: "beq", MOV: "mov", AND: "and",
    SHR: "shr", MUL: "mul", SUB: "sub", JMP: "jmp", BLT: "blt",
    XOR: "xor",
}


def encode(op: int, rd: int = 0, rs: int = 0, imm: int = 0) -> int:
    """Pack one SRV-1 instruction word."""
    if not 0 <= op < NUM_OPCODES:
        raise SimulatedMachineError(f"bad opcode {op}")
    if not 0 <= rd < NUM_REGISTERS or not 0 <= rs < NUM_REGISTERS:
        raise SimulatedMachineError(f"bad register in ({rd}, {rs})")
    if not -0x8000 <= imm <= 0xFFFF:
        raise SimulatedMachineError(f"immediate {imm} out of 16-bit range")
    return (op << 24) | (rd << 20) | (rs << 16) | (imm & 0xFFFF)


def decode_fields(word: int) -> Tuple[int, int, int, int]:
    """Unpack ``(op, rd, rs, imm)`` from an instruction word."""
    op = (word >> 24) & 0xFF
    rd = (word >> 20) & 0xF
    rs = (word >> 16) & 0xF
    imm = word & 0xFFFF
    if imm >= 0x8000:
        imm -= 0x10000
    return op, rd, rs, imm


def disassemble(word: int) -> str:
    """Human-readable form of one instruction word (for diagnostics)."""
    op, rd, rs, imm = decode_fields(word)
    mnemonic = _MNEMONICS.get(op, f"op{op:#x}")
    return f"{mnemonic} r{rd}, r{rs}, {imm}"


class Assembler:
    """Two-pass assembler for SRV-1 with symbolic labels.

    Usage::

        asm = Assembler()
        asm.label("loop")
        asm.emit(LD, 4, 2, 0)
        asm.branch(BNE, 2, 3, "loop")
        words = asm.assemble()
    """

    def __init__(self) -> None:
        self._items: List[Tuple] = []
        self._labels: Dict[str, int] = {}

    @property
    def position(self) -> int:
        """Current instruction index."""
        return len(self._items)

    def label(self, name: str) -> None:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise SimulatedMachineError(f"duplicate label {name!r}")
        self._labels[name] = len(self._items)

    def emit(self, op: int, rd: int = 0, rs: int = 0, imm: int = 0) -> None:
        """Emit one fully resolved instruction."""
        self._items.append(("word", encode(op, rd, rs, imm)))

    def branch(self, op: int, rd: int, rs: int, target: str) -> None:
        """Emit a branch/jump whose offset resolves to ``target``."""
        self._items.append(("branch", op, rd, rs, target, len(self._items)))

    def assemble(self) -> List[int]:
        """Resolve labels and return the instruction words."""
        words: List[int] = []
        for item in self._items:
            if item[0] == "word":
                words.append(item[1])
            else:
                _, op, rd, rs, target, position = item
                if target not in self._labels:
                    raise SimulatedMachineError(f"undefined label {target!r}")
                # Branch offsets are relative to the *next* instruction.
                offset = self._labels[target] - (position + 1)
                words.append(encode(op, rd, rs, offset))
        return words


class Srv1Machine:
    """The interpreter: fetch/decode/execute over simulated memory.

    Parameters
    ----------
    space:
        The address space whose loads/stores are traced.
    code_base, regfile_base, ram_base, decode_base, flags_base, prot_base:
        Placed byte addresses of the architectural structures.  The
        m88ksim workload places ``flags_base`` and ``prot_base`` exactly
        64 KB apart, recreating the original's pathological
        direct-mapped aliasing between simulator bookkeeping structures.
    timer_period:
        Guest instructions between status-flag updates.
    prot_period:
        Guest memory operations between protection-table checks.
    """

    def __init__(
        self,
        space: AddressSpace,
        code_base: int,
        regfile_base: int,
        ram_base: int,
        decode_base: int,
        flags_base: int,
        prot_base: int,
        timer_period: int = 32,
        prot_period: int = 8,
    ) -> None:
        self._space = space
        self._code = code_base
        self._regs = regfile_base
        self._ram = ram_base
        self._decode = decode_base
        self._flags = flags_base
        self._prot = prot_base
        self._timer_period = timer_period
        self._prot_period = prot_period
        self.instructions_retired = 0
        self._mem_ops = 0
        self._flag_cursor = 0

    # Setup helpers ------------------------------------------------------
    def load_program(self, words: List[int]) -> None:
        """Store the guest program into the code image (traced stores —
        the original simulator loads guest binaries through its own
        memory interface too)."""
        self._space.store_block(self._code, words)

    def initialise_decode_table(self) -> None:
        """Fill the decode table: per opcode a dispatch id and a cycle
        count, consulted on every instruction."""
        store = self._space.store
        for op in range(NUM_OPCODES):
            store(self._decode + op * 8, op)  # dispatch id
            store(self._decode + op * 8 + 4, 1 + (op & 3))  # cycles

    # Execution -----------------------------------------------------------
    def run(self, start_pc: int = 0, max_instructions: int = 1_000_000) -> int:
        """Interpret until ``HALT`` or the instruction budget runs out.

        Returns the number of guest instructions retired in this call.
        """
        space = self._space
        load = space.load
        store = space.store
        code = self._code
        regs = self._regs
        ram = self._ram
        decode = self._decode
        retired = 0
        pc = start_pc
        while retired < max_instructions:
            word = load(code + pc * 4)
            op = (word >> 24) & 0xFF
            rd = (word >> 20) & 0xF
            rs = (word >> 16) & 0xF
            imm = word & 0xFFFF
            if imm >= 0x8000:
                imm -= 0x10000
            # Decode-table consultation (dispatch id), as the original
            # simulator does for every instruction.
            load(decode + op * 8)
            pc += 1
            retired += 1

            if op == LDI:
                store(regs + rd * 4, imm & WORD_MASK)
            elif op == ADD:
                a = load(regs + rd * 4)
                b = load(regs + rs * 4)
                store(regs + rd * 4, (a + b) & WORD_MASK)
            elif op == ADDI:
                a = load(regs + rd * 4)
                store(regs + rd * 4, (a + imm) & WORD_MASK)
            elif op == LD:
                base = load(regs + rs * 4)
                self._guest_mem_check()
                value = load(ram + ((base + imm) & 0xFFFF) * 4)
                store(regs + rd * 4, value)
            elif op == ST:
                base = load(regs + rs * 4)
                value = load(regs + rd * 4)
                self._guest_mem_check()
                store(ram + ((base + imm) & 0xFFFF) * 4, value)
            elif op == BNE:
                if load(regs + rd * 4) != load(regs + rs * 4):
                    pc += imm
            elif op == BEQ:
                if load(regs + rd * 4) == load(regs + rs * 4):
                    pc += imm
            elif op == MOV:
                store(regs + rd * 4, load(regs + rs * 4))
            elif op == AND:
                a = load(regs + rd * 4)
                b = load(regs + rs * 4)
                store(regs + rd * 4, a & b)
            elif op == SHR:
                a = load(regs + rd * 4)
                store(regs + rd * 4, a >> (imm & 31))
            elif op == MUL:
                a = load(regs + rd * 4)
                b = load(regs + rs * 4)
                store(regs + rd * 4, (a * b) & WORD_MASK)
            elif op == SUB:
                a = load(regs + rd * 4)
                b = load(regs + rs * 4)
                store(regs + rd * 4, (a - b) & WORD_MASK)
            elif op == JMP:
                pc += imm
            elif op == BLT:
                if to_s32(load(regs + rd * 4)) < to_s32(load(regs + rs * 4)):
                    pc += imm
            elif op == XOR:
                a = load(regs + rd * 4)
                b = load(regs + rs * 4)
                store(regs + rd * 4, a ^ b)
            elif op == HALT:
                break
            else:
                raise SimulatedMachineError(
                    f"illegal guest instruction {word:#010x} at pc {pc - 1}"
                )

            if retired % self._timer_period == 0:
                self._timer_tick()
        self.instructions_retired += retired
        return retired

    # Bookkeeping structures (the 64 KB-aliased hot pair) ---------------
    def _timer_tick(self) -> None:
        """Toggle one status flag (read-modify-write of 0/1 values)."""
        space = self._space
        addr = self._flags + (self._flag_cursor & 7) * 4
        self._flag_cursor += 1
        current = space.load(addr)
        space.store(addr, current ^ 1)

    def _guest_mem_check(self) -> None:
        """Consult the protection table every ``prot_period``-th guest
        memory operation (values are 0 / 0xffffffff permission masks)."""
        self._mem_ops += 1
        if self._mem_ops % self._prot_period == 0:
            self._space.load(self._prot + (self._mem_ops >> 3 & 7) * 4)

    # Guest state access for tests ---------------------------------------
    def register(self, index: int) -> int:
        """Read a guest register through the traced interface."""
        return self._space.load(self._regs + index * 4)

    def guest_word(self, word_index: int) -> int:
        """Read a guest RAM word through the traced interface."""
        return self._space.load(self._ram + word_index * 4)
