"""The 126.gcc analog: a compiler front/middle-end over heap ASTs.

126.gcc compiles C translation units: it tokenises, builds trees of
tagged nodes in the heap, runs folding/resolution passes that rewrite
them, and emits code.  The analog does the same for a small expression
language: per unit it generates a token stream, parses it into 4-word
AST nodes (tag, left, right, value), constant-folds, resolves
identifiers against a chained hash symbol table, emits stack-machine
opcodes into a ring buffer, then frees the unit's nodes (so the next
unit reuses the arena, as gcc's obstacks do).

Behavioural signature: null pointers and small tags make ~half of all
words frequent values; per-unit working sets of tens of KB walked by
three successive passes produce real capacity misses at 16 KB; constant
address fraction lands near gcc's 62% (symbol table and operator-
precedence tables are write-once, the arena and ring churn).
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.space import AddressSpace
from repro.workloads.base import Workload, WorkloadInput

# Node tags (word values chosen in the small-constant range that
# dominates gcc's Table 1 values).
_TAG_NUM = 0x23
_TAG_IDENT = 0x29
_TAG_ADD = 0xE7
_TAG_MUL = 0x403
_TAG_SUB = 0x1B
_BINARY_TAGS = (_TAG_ADD, _TAG_MUL, _TAG_SUB)

_NIL = 0

_SYMTAB_BUCKETS = 512
_EMIT_RING_WORDS = 4096

# Stack-machine opcodes emitted by the final pass.
_OP_PUSH_CONST = 1
_OP_LOAD_SYM = 2
_OP_ADD = 3
_OP_MUL = 4
_OP_SUB = 5


class GccWorkload(Workload):
    """Compiler analog: parse → fold → resolve → emit, per unit."""

    name = "gcc"
    spec_analog = "126.gcc"
    exhibits_fvl = True

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput(
                "test", {"units": 4, "exprs_per_unit": 40, "depth": 4},
                data_seed=555,
            ),
            "train": WorkloadInput(
                "train", {"units": 9, "exprs_per_unit": 48, "depth": 4},
                data_seed=666,
            ),
            "ref": WorkloadInput(
                "ref", {"units": 18, "exprs_per_unit": 42, "depth": 4},
                data_seed=777,
            ),
        }

    # ------------------------------------------------------------------
    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        rng = self._rng(inp, "source")
        load, store = space.load, space.store
        heap = space.heap
        static = space.static

        buckets = static.alloc(_SYMTAB_BUCKETS)
        emit_ring = static.alloc(_EMIT_RING_WORDS)
        token_buffer = static.alloc(2048)
        # Operator precedence / keyword tables: large, constant, read
        # during parsing (gcc's write-once reference data).
        precedence = static.alloc(8192)
        for index in range(_SYMTAB_BUCKETS):
            store(buckets + index * 4, _NIL)
        for index in range(8192):
            store(precedence + index * 4, (index * 7 + 3) & 3)

        emit_cursor = 0

        # --- AST construction ------------------------------------------
        def new_node(tag: int, left: int, right: int, value: int) -> int:
            # Child pointers are linked in before the node is tagged
            # (gcc's tree constructors do the same): a leaf node's
            # stores are then all frequent values, so a write-allocated
            # FVC entry stays intact.
            addr = heap.alloc(4)
            store(addr + 4, left)
            store(addr + 8, right)
            store(addr + 12, value)
            store(addr, tag)
            return addr

        def gen_expr(depth: int, arena: List[int]) -> int:
            """Parse one random expression into the arena (the token
            consumption models gcc's lexer reads)."""
            token_slot = token_buffer + (rng.randrange(512)) * 4
            if depth == 0 or rng.random() < 0.35:
                if rng.random() < 0.55:
                    literal = rng.choice((0, 1, 2, 4, 0xA, rng.randrange(256)))
                    store(token_slot, _TAG_NUM)
                    node = new_node(_TAG_NUM, _NIL, _NIL, literal)
                else:
                    name_id = rng.randrange(600)
                    store(token_slot, _TAG_IDENT)
                    node = new_node(_TAG_IDENT, _NIL, _NIL, name_id)
                arena.append(node)
                return node
            tag = rng.choice(_BINARY_TAGS)
            store(token_slot, tag)
            # Consult two production rows (16 words each); which rows
            # depend on the surrounding token context.
            for _ in range(2):
                row = rng.randrange(512)
                for column in range(16):
                    load(precedence + (row * 16 + column) * 4)
            left = gen_expr(depth - 1, arena)
            right = gen_expr(depth - 1, arena)
            node = new_node(tag, left, right, 0)
            arena.append(node)
            return node

        # --- Pass 1: constant folding ---------------------------------
        def fold(node: int) -> None:
            frame = space.stack.push_frame(2)
            store(frame, node)
            tag = load(node)
            if tag in _BINARY_TAGS:
                left = load(node + 4)
                right = load(node + 8)
                fold(left)
                fold(right)
                if load(left) == _TAG_NUM and load(right) == _TAG_NUM:
                    a = load(left + 12)
                    b = load(right + 12)
                    if tag == _TAG_ADD:
                        value = (a + b) & 0xFFFFFFFF
                    elif tag == _TAG_MUL:
                        value = (a * b) & 0xFFFFFFFF
                    else:
                        value = (a - b) & 0xFFFFFFFF
                    store(node, _TAG_NUM)
                    store(node + 4, _NIL)
                    store(node + 8, _NIL)
                    store(node + 12, value)
            space.stack.pop_frame()

        # --- Pass 2: identifier resolution ------------------------------
        def resolve(node: int) -> None:
            tag = load(node)
            if tag == _TAG_IDENT:
                name_id = load(node + 12)
                bucket = buckets + (name_id % _SYMTAB_BUCKETS) * 4
                entry = load(bucket)
                while entry != _NIL:
                    if load(entry) == name_id:
                        break
                    entry = load(entry + 8)
                if entry == _NIL:
                    # Insert: [name_id, value, next, flags]
                    entry = heap.alloc(4)
                    store(entry, name_id)
                    store(entry + 4, name_id * 3 + 1)
                    store(entry + 8, load(bucket))
                    store(entry + 12, 1)
                    store(bucket, entry)
                store(node + 8, entry)  # right slot caches the symbol
            elif tag in _BINARY_TAGS:
                resolve(load(node + 4))
                resolve(load(node + 8))

        # --- Pass 3: code emission -------------------------------------
        def emit(node: int) -> None:
            nonlocal emit_cursor

            def out(word: int) -> None:
                nonlocal emit_cursor
                store(emit_ring + (emit_cursor % _EMIT_RING_WORDS) * 4, word)
                emit_cursor += 1

            tag = load(node)
            if tag == _TAG_NUM:
                out(_OP_PUSH_CONST)
                out(load(node + 12))
            elif tag == _TAG_IDENT:
                out(_OP_LOAD_SYM)
                out(load(node + 12))
            else:
                emit(load(node + 4))
                emit(load(node + 8))
                out({_TAG_ADD: _OP_ADD, _TAG_MUL: _OP_MUL, _TAG_SUB: _OP_SUB}[tag])

        # --- Unit loop --------------------------------------------------
        for _ in range(inp.params["units"]):
            arena: List[int] = []
            roots = [
                gen_expr(inp.params["depth"], arena)
                for _ in range(inp.params["exprs_per_unit"])
            ]
            for root in roots:
                fold(root)
            for root in roots:
                resolve(root)
            for root in roots:
                emit(root)
            for node in arena:
                heap.free(node)
