"""The 099.go analog: board-game position evaluation and search.

099.go plays Go: its memory traffic is dominated by 19x19 board arrays
holding tiny values (empty/black/white, liberty counts, influence
scores) plus large constant pattern tables.  The analog plays a
Go-like game for real: candidate moves are generated, each candidate is
evaluated by placing the stone, flood-filling the affected chain to
count liberties, recomputing a local influence map, and scoring 3x3
neighbourhood patterns against a 16 KB pattern table; the best
candidate is committed.

Behavioural signature: very high frequent value locality (board and
feature arrays are almost entirely 0/1/2/small counts), a working set
(~25 KB of boards + 16 KB pattern table) that gives a direct-mapped
16 KB cache genuine capacity misses, and a ~78% constant-address
fraction (the pattern table never changes; the feature maps churn).
"""

from __future__ import annotations

from typing import Dict

from repro.mem.space import AddressSpace
from repro.workloads.base import Workload, WorkloadInput

_SIZE = 19
_CELLS = _SIZE * _SIZE
_EMPTY, _BLACK, _WHITE = 0, 1, 2
_EDGE = 0xFFFFFFFF  # off-board sentinel stored in the padded border


class GoWorkload(Workload):
    """Board-search analog with tiny-valued feature arrays."""

    name = "go"
    spec_analog = "099.go"
    exhibits_fvl = True

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput(
                "test", {"moves": 60, "candidates": 3}, data_seed=11
            ),
            "train": WorkloadInput(
                "train", {"moves": 150, "candidates": 4}, data_seed=22
            ),
            "ref": WorkloadInput(
                "ref", {"moves": 340, "candidates": 4}, data_seed=33
            ),
        }

    # ------------------------------------------------------------------
    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        rng = self._rng(inp, "game")
        static = space.static
        load, store = space.load, space.store

        # Padded 21x21 boards (the border holds the off-board sentinel).
        padded = (_SIZE + 2) * (_SIZE + 2)
        board = static.alloc(padded)
        influence = static.alloc(padded)
        liberties = static.alloc(padded)
        territory = static.alloc(padded)
        chain_mark = static.alloc(padded)
        history = static.alloc(1024)
        pattern_table = static.alloc(4096)
        worklist = static.alloc(256)
        # Opening/joseki book: 20 KB of tiny move scores consulted as a
        # sliding window each move.  It exceeds a 16 KB cache, so its
        # reuse misses are *capacity* misses — and since every word is a
        # frequent value, they are exactly the misses an FVC absorbs
        # regardless of base-cache associativity (Fig. 14).
        book = static.alloc(5120)

        stride = _SIZE + 2

        def cell(row: int, col: int) -> int:
            return (row * stride + col) * 4

        # Initialise: border sentinels, empty interior, pattern scores.
        for index in range(padded):
            row, col = divmod(index, stride)
            on_board = 1 <= row <= _SIZE and 1 <= col <= _SIZE
            store(board + index * 4, _EMPTY if on_board else _EDGE)
            store(influence + index * 4, 0)
            store(liberties + index * 4, 0)
            store(territory + index * 4, 0)
            store(chain_mark + index * 4, 0)
        pattern_rng = self._rng(inp, "patterns")
        for index in range(4096):
            store(pattern_table + index * 4, pattern_rng.randrange(0, 5))
        for index in range(5120):
            store(book + index * 4, pattern_rng.randrange(0, 5))

        # --- One candidate evaluation --------------------------------
        def flood_liberties(row: int, col: int, colour: int, mark: int) -> int:
            """Flood-fill the chain at (row, col); returns its liberty
            count.  The frontier lives in a real in-memory worklist."""
            head, tail = 0, 0
            store(worklist + tail * 4, row * stride + col)
            tail += 1
            store(chain_mark + cell(row, col), mark)
            libs = 0
            while head < tail:
                index = load(worklist + head * 4)
                head += 1
                r, c = divmod(index, stride)
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    neighbour = cell(r + dr, c + dc)
                    occupant = load(board + neighbour)
                    if occupant == _EMPTY:
                        libs += 1
                    elif occupant == colour and load(chain_mark + neighbour) != mark:
                        store(chain_mark + neighbour, mark)
                        if tail < 64:
                            store(worklist + tail * 4, (r + dr) * stride + c + dc)
                            tail += 1
            return libs

        def pattern_hash(row: int, col: int) -> int:
            """12-bit hash of the 3x3 neighbourhood occupancy."""
            value = 0
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    occupant = load(board + cell(row + dr, col + dc))
                    value = (value * 3 + (occupant & 3)) & 0xFFF
            return value

        mark_counter = 0

        def evaluate(row: int, col: int, colour: int) -> int:
            nonlocal mark_counter
            frame = space.stack.push_frame(8)
            store(frame, row * stride + col)
            store(frame + 4, colour)
            store(board + cell(row, col), colour)

            mark_counter += 1
            libs = flood_liberties(row, col, colour, mark_counter)
            store(liberties + cell(row, col), min(libs, 8))

            # Local influence: 5x5 decay field of small integers.  The
            # window must be clipped to the padded board — the padding
            # is one cell wide, the window reaches two.
            score = 0
            for dr in range(-2, 3):
                for dc in range(-2, 3):
                    r, c = row + dr, col + dc
                    if not (0 <= r <= _SIZE + 1 and 0 <= c <= _SIZE + 1):
                        continue
                    occupant = load(board + cell(r, c))
                    if occupant == _EDGE:
                        continue
                    weight = 3 - max(abs(dr), abs(dc))
                    current = load(influence + cell(r, c))
                    updated = (current + weight) & 3
                    store(influence + cell(r, c), updated)
                    if occupant == colour:
                        score += weight
            score += load(pattern_table + pattern_hash(row, col) * 4)
            score += libs * 2

            store(board + cell(row, col), _EMPTY)
            space.stack.pop_frame()
            return score

        # --- Game loop ----------------------------------------------
        move_count = 0
        colour = _BLACK
        for move in range(inp.params["moves"]):
            # Consult the opening book: a 64-word sliding window.
            window = (move * 193) % (5120 - 64)
            book_score = 0
            for offset in range(64):
                book_score += load(book + (window + offset) * 4)
            best_score = -1
            best_rc = None
            for _ in range(inp.params["candidates"]):
                row = rng.randrange(1, _SIZE + 1)
                col = rng.randrange(1, _SIZE + 1)
                if load(board + cell(row, col)) != _EMPTY:
                    continue
                score = evaluate(row, col, colour)
                if score > best_score:
                    best_score = score
                    best_rc = (row, col)
            if best_rc is None:
                continue
            row, col = best_rc
            store(board + cell(row, col), colour)
            store(history + (move_count & 255) * 4, row * stride + col)
            move_count += 1
            # Territory sweep every 16 moves: full-board read/update.
            if move_count % 16 == 0:
                for index in range(padded):
                    occupant = load(board + index * 4)
                    if occupant in (_BLACK, _WHITE):
                        current = load(territory + index * 4)
                        store(territory + index * 4, (current + occupant) & 15)
            colour = _WHITE if colour == _BLACK else _BLACK
