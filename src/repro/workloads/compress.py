"""The 129.compress analog: a working LZW compressor.

129.compress is the UNIX ``compress`` utility (LZW).  The analog
implements LZW for real over simulated memory: input bytes stream
through a ring buffer, a hash table of ``(prefix code, char)`` pairs is
probed and extended per character, and emitted codes fill an output
ring.

This is one of the paper's two *counter-examples*: the hash and code
tables hold densely packed, ever-changing values (the fcode of each
dictionary string), the rings are rewritten block after block, and the
table is cleared and rebuilt whenever it fills — so almost no address
stays constant (Table 4: 3.2%) and no small set of values dominates
(Fig. 1: negligible frequent value locality).
"""

from __future__ import annotations

from typing import Dict

from repro.mem.space import AddressSpace
from repro.workloads.base import Workload, WorkloadInput

# Prime, like compress's prime-sized htab: double hashing then probes
# every slot, so a non-full table always yields a hit or an empty slot.
_HASH_SIZE = 4801
_FIRST_CODE = 257
#: Stop growing the dictionary at 90% table load (like compress, which
#: then waits for the ratio check before clearing).
_MAX_CODE = int(_HASH_SIZE * 0.8)
#: Characters between compression-ratio checks (clear happens only at a
#: check point with a full dictionary — so clears stay rare).
_RATIO_CHECK_INTERVAL = 16_000
_CLEAR_MARK = 0xFFFFFFFF  # empty hash slot, as in compress's htab

_IN_RING_WORDS = 2048
_OUT_RING_WORDS = 2048


class CompressWorkload(Workload):
    """LZW analog — the no-frequent-value-locality control."""

    name = "compress"
    spec_analog = "129.compress"
    exhibits_fvl = False

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput("test", {"input_bytes": 16_000}, data_seed=1),
            "train": WorkloadInput("train", {"input_bytes": 34_000}, data_seed=2),
            "ref": WorkloadInput("ref", {"input_bytes": 52_000}, data_seed=3),
        }

    # ------------------------------------------------------------------
    def _make_input(self, inp: WorkloadInput) -> bytes:
        """Markov-ish byte stream: compressible but value-diverse."""
        rng = self._rng(inp, "input")
        output = bytearray()
        state = rng.randrange(256)
        while len(output) < inp.params["input_bytes"]:
            if output and rng.random() < 0.30:
                # Repeat a recent run (gives LZW something to find).
                start = rng.randrange(max(1, len(output) - 64), len(output) + 1)
                chunk = output[max(0, start - rng.randrange(3, 12)) : start]
                output.extend(chunk)
            else:
                state = (state * 131 + rng.randrange(97)) & 0xFF
                output.append(state)
        return bytes(output[: inp.params["input_bytes"]])

    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        load, store = space.load, space.store
        static = space.static

        htab = static.alloc(_HASH_SIZE)
        codetab = static.alloc(_HASH_SIZE)
        in_ring = static.alloc(_IN_RING_WORDS)
        out_ring = static.alloc(_OUT_RING_WORDS)

        def clear_table() -> None:
            # Both tables are wiped (compress resets its whole
            # dictionary), so their slots never hold one value for the
            # whole run — the source of the 3.2% constant-address figure.
            for index in range(_HASH_SIZE):
                store(htab + index * 4, _CLEAR_MARK)
                store(codetab + index * 4, 0)

        clear_table()
        data = self._make_input(inp)

        out_cursor = 0

        def emit(code: int) -> None:
            nonlocal out_cursor
            store(out_ring + (out_cursor % _OUT_RING_WORDS) * 4, code)
            out_cursor += 1

        # Stream input through the ring, one byte per word (compress
        # reads chars; the ring rewrite is what kills address constancy).
        next_code = _FIRST_CODE
        prefix = -1
        chars_since_check = 0
        for position, byte in enumerate(data):
            chars_since_check += 1
            slot = in_ring + (position % _IN_RING_WORDS) * 4
            store(slot, byte)
            char = load(slot)
            if prefix < 0:
                prefix = char
                continue
            fcode = (char << 16) | prefix  # the packed dictionary key
            probe = ((char << 5) ^ prefix) % _HASH_SIZE
            step = 1 if probe == 0 else _HASH_SIZE - probe
            found = False
            for _ in range(_HASH_SIZE):
                current = load(htab + probe * 4)
                if current == _CLEAR_MARK:
                    break
                if current == fcode:
                    prefix = load(codetab + probe * 4)
                    found = True
                    break
                probe -= step
                if probe < 0:
                    probe += _HASH_SIZE
            if found:
                continue
            # New dictionary string: emit prefix, maybe insert, restart.
            emit(prefix)
            if next_code < _MAX_CODE:
                store(codetab + probe * 4, next_code)
                store(htab + probe * 4, fcode)
                next_code += 1
            elif chars_since_check >= _RATIO_CHECK_INTERVAL:
                # Ratio check with a full dictionary: clear and rebuild.
                emit(_FIRST_CODE - 1)
                clear_table()
                next_code = _FIRST_CODE
                chars_since_check = 0
            prefix = char
        if prefix >= 0:
            emit(prefix)
