"""The 134.perl analog: text scanning, tokenising, hash counting.

134.perl runs text-processing scripts; its Table 1 values are packed
ASCII words (0x78787878 = "xxxx", 0x20207878 = "xx  ") plus 0/1 and hot
pointers.  The analog executes the classic scripting kernel for real: a
generated corpus of text lines is streamed through a fixed line buffer,
tokenised, and every token is counted in a chained hash table; a report
pass then walks the table and formats output lines.

Layout choices that recreate perl's cache character:

* the corpus is written once (buffered file input) and then *streamed*
  (each line read once) — the flat residual miss rate that neither a
  bigger DMC nor the FVC removes;
* the line buffer is placed 64 KB-congruent with the heap base, where
  the hot word entries (allocated first, thanks to the Zipf token
  distribution) live — tokenisation ping-pongs between the two in
  every direct-mapped cache, and both sides' words are frequent values
  (packed ASCII, small counts, null links), exactly the misses a small
  FVC eliminates and 2-way associativity absorbs (Fig. 14);
* the word-entry heap totals ~12 KB, fitting a 16 KB cache but
  thrashing an 8 KB one (the paper's 8 KB → 16 KB drop).
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.space import AddressSpace
from repro.workloads.base import Workload, WorkloadInput

_SPACE = 0x20
_BUCKETS = 1024
_LINE_WORDS = 32  # 128-byte line buffer


def pack_chars(chars: str) -> int:
    """Pack up to four characters into one little-endian word."""
    word = 0
    for position, char in enumerate(chars[:4]):
        word |= (ord(char) & 0xFF) << (8 * position)
    return word


class PerlWorkload(Workload):
    """Script-interpreter analog (streamed text + hash counting)."""

    name = "perl"
    spec_analog = "134.perl"
    exhibits_fvl = True

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput(
                "test", {"lines": 300, "vocab": 400, "reports": 1},
                data_seed=71,
            ),
            "train": WorkloadInput(
                "train", {"lines": 800, "vocab": 550, "reports": 2},
                data_seed=72,
            ),
            "ref": WorkloadInput(
                "ref", {"lines": 1100, "vocab": 700, "reports": 3},
                data_seed=73,
            ),
        }

    # ------------------------------------------------------------------
    def _make_vocabulary(self, inp: WorkloadInput) -> List[str]:
        """Zipf-ish vocabulary over a small, skewed character set.

        The top words are short runs of repeated characters — the
        source of perl's packed-ASCII frequent values.
        """
        rng = self._rng(inp, "vocab")
        alphabet = "xxxypq2078abce"  # heavily skewed toward 'x'
        words = ["xxxx", "xx", "yy", "x7", "2078", "pp", "qq", "xy"]
        while len(words) < inp.params["vocab"]:
            length = rng.randrange(2, 7)
            word = "".join(rng.choice(alphabet) for _ in range(length))
            if word not in words:
                words.append(word)
        return words

    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        rng = self._rng(inp, "text")
        load, store = space.load, space.store
        heap = space.heap
        static = space.static
        base = space.layout.static_base

        vocabulary = self._make_vocabulary(inp)
        vocab_size = len(vocabulary)

        # Zipf rank sampling: rank ~ floor(vocab ** u²) biases hard
        # toward the first few words (~60% of tokens hit the top 8).
        def pick_word() -> str:
            u = rng.random() ** 3
            rank = int(vocab_size ** u) - 1
            return vocabulary[min(rank, vocab_size - 1)]

        # Layout: line buffer 64 KB-congruent with the heap base.
        aligned = (base + 0xFFFF) & ~0xFFFF
        line_buffer = static.alloc(_LINE_WORDS, at=aligned)
        buckets = static.alloc(_BUCKETS)
        out_ring = static.alloc(2048)
        corpus = static.alloc(inp.params["lines"] * _LINE_WORDS)

        for index in range(_BUCKETS):
            store(buckets + index * 4, 0)

        # --- Generate the corpus (write-once, then streamed) ----------
        # Records are fixed-field: every token starts on a 4-character
        # boundary (space padded), so the hot tokens always pack to the
        # same words — "xxxx" is 0x78787878, its padding 0x20202020 —
        # exactly the packed-ASCII frequent values of the paper's
        # Table 1 column for 134.perl.
        lines = inp.params["lines"]
        for line in range(lines):
            text = ""
            while len(text) < (_LINE_WORDS - 1) * 4:
                token = pick_word() + " "
                text += token.ljust(((len(token) + 3) // 4) * 4)
            text = text[: _LINE_WORDS * 4].ljust(_LINE_WORDS * 4)
            for word_index in range(_LINE_WORDS):
                chunk = text[word_index * 4 : word_index * 4 + 4]
                store(
                    corpus + (line * _LINE_WORDS + word_index) * 4,
                    pack_chars(chunk),
                )

        out_cursor = 0

        def emit(word: int) -> None:
            nonlocal out_cursor
            store(out_ring + (out_cursor % 2048) * 4, word)
            out_cursor += 1

        def find_or_add(packed: List[int], token_hash: int) -> int:
            """Probe the chain for this token; insert when missing.
            Entry layout: [packed0, packed1, count, next]."""
            bucket = buckets + (token_hash % _BUCKETS) * 4
            entry = load(bucket)
            while entry:
                if load(entry) == packed[0] and load(entry + 4) == packed[1]:
                    return entry
                entry = load(entry + 12)
            entry = heap.alloc(4)
            store(entry + 12, load(bucket))  # chain link first
            store(entry + 8, 0)
            store(entry + 4, packed[1])
            store(entry, packed[0])
            store(bucket, entry)
            return entry

        # --- Main scan: stream lines, tokenise, count -------------------
        for line in range(lines):
            # Copy the corpus line into the working buffer.
            src = corpus + line * _LINE_WORDS * 4
            for word_index in range(_LINE_WORDS):
                store(line_buffer + word_index * 4, load(src + word_index * 4))
            # Match pass: scripts typically run a regex over the line
            # before splitting it; re-read the buffer word by word.
            for word_index in range(_LINE_WORDS):
                load(line_buffer + word_index * 4)
            # Tokenise out of the buffer (byte scan over packed words).
            token_chars: List[int] = []
            for word_index in range(_LINE_WORDS):
                packed = load(line_buffer + word_index * 4)
                for shift in (0, 8, 16, 24):
                    char = (packed >> shift) & 0xFF
                    if char == _SPACE or char == 0:
                        if token_chars:
                            self._count_token(
                                token_chars, load, store, find_or_add
                            )
                            token_chars = []
                    else:
                        token_chars.append(char)
            if token_chars:
                self._count_token(token_chars, load, store, find_or_add)
            # Periodic progress output (packed ASCII stores).
            if line % 8 == 0:
                emit(pack_chars("line"))
                emit(line)

        # --- Report passes: walk the whole table, format output ---------
        for _ in range(inp.params["reports"]):
            for index in range(_BUCKETS):
                entry = load(buckets + index * 4)
                while entry:
                    emit(load(entry))
                    emit(load(entry + 8))
                    entry = load(entry + 12)

    @staticmethod
    def _count_token(token_chars, load, store, find_or_add) -> None:
        """Hash the token, find its entry, bump its count."""
        first = 0
        second = 0
        token_hash = 5381
        for position, char in enumerate(token_chars[:8]):
            if position < 4:
                first |= char << (8 * position)
            else:
                second |= char << (8 * (position - 4))
        for char in token_chars:
            token_hash = (token_hash * 33 + char) & 0xFFFFFFFF
        entry = find_or_add([first, second], token_hash)
        store(entry + 8, (load(entry + 8) + 1) & 0xFFFFFFFF)
