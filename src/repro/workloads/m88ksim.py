"""The 124.m88ksim analog: a working CPU simulator simulating a guest.

124.m88ksim interprets Motorola 88100 binaries; its memory behaviour is
dominated by the interpreter's own structures — code image, register
file, decode table, bookkeeping — plus the guest's data.  The analog
reproduces that shape with the SRV-1 machine of
:mod:`repro.workloads.srv1` running a real guest program (table fill,
checksum passes, a bubble-sort phase, and a cold scan).

Placement (see DESIGN.md):

* the status-flag block and the protection table sit exactly 64 KB
  apart, so they alias in every direct-mapped cache from 4 KB to 64 KB
  — the conflict pair whose misses the FVC removes (their words are all
  0/1/0xffffffff, i.e. frequent values) and which any 2-way cache
  absorbs (Fig. 14);
* every other hot structure (decode table, register file, guest code,
  guest data regions) is offset so it does not alias the pair — the
  engineered conflict is exactly two lines wide, which is what lets a
  2-way cache absorb it completely;
* the hot guest table (8 KB) plus code and sort array thrash a 4/8 KB
  cache but fit 16 KB (the paper's 8 KB → 16 KB drop), while the
  noise-filled cold region supplies the residual misses that neither
  the FVC nor a doubled cache removes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.space import AddressSpace
from repro.workloads import srv1
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.srv1 import (
    ADD,
    ADDI,
    AND,
    Assembler,
    BLT,
    BNE,
    HALT,
    JMP,
    LD,
    LDI,
    MOV,
    MUL,
    ST,
    Srv1Machine,
)

# Guest RAM word-index map.  The offsets are chosen so none of the hot
# regions accidentally alias each other in any 4-64 KB direct-mapped
# cache (the only engineered aliasing is the flags/protection pair).
_TABLE_BASE = 0
_OUT_BASE = 4352
_SORT_BASE = 6656
_COLD_BASE = 13568


class M88ksimWorkload(Workload):
    """CPU-simulator analog with the 64 KB-aliased bookkeeping pair."""

    name = "m88ksim"
    spec_analog = "124.m88ksim"
    exhibits_fvl = True

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput(
                "test",
                {
                    "table_words": 1024,
                    "sort_words": 256,
                    "cold_words": 2048,
                    "passes": 2,
                    "timer_period": 32,
                    "prot_period": 12,
                },
                data_seed=101,
            ),
            "train": WorkloadInput(
                "train",
                {
                    "table_words": 1536,
                    "sort_words": 768,
                    "cold_words": 3072,
                    "passes": 3,
                    "timer_period": 32,
                    "prot_period": 12,
                },
                data_seed=202,
            ),
            "ref": WorkloadInput(
                "ref",
                {
                    "table_words": 2048,
                    "sort_words": 1024,
                    "cold_words": 4096,
                    "passes": 4,
                    "timer_period": 32,
                    "prot_period": 12,
                },
                data_seed=303,
            ),
        }

    # ------------------------------------------------------------------
    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        static = space.static
        base = space.layout.static_base
        # The decode table sits off the segment-alignment boundary so it
        # does not stack onto the flags/prot set and turn the engineered
        # 2-line conflict into a 3-line pile-up that associativity can't
        # absorb.
        decode_base = static.alloc(srv1.NUM_OPCODES * 2, at=base + 0x80)
        flags_base = static.alloc(8, at=base + 0x8000)
        regfile_base = static.alloc(srv1.NUM_REGISTERS, at=base + 0x8100)
        code_base = static.alloc(1024, at=base + 0xA400)
        prot_base = static.alloc(8, at=base + 0x18000)  # flags + 64 KB
        # Guest RAM goes 256 KB up, offset so its hot table does not
        # accidentally alias the flag/protection pair at 16-64 KB.
        ram_base = static.alloc(1 << 16, at=base + 0x40000)

        machine = Srv1Machine(
            space,
            code_base=code_base,
            regfile_base=regfile_base,
            ram_base=ram_base,
            decode_base=decode_base,
            flags_base=flags_base,
            prot_base=prot_base,
            timer_period=inp.params["timer_period"],
            prot_period=inp.params["prot_period"],
        )
        machine.initialise_decode_table()
        # Seed the protection table with permission masks (read once in
        # a while by the guest-memory check; values are 0 / -1).
        for index in range(8):
            space.store(prot_base + index * 4, 0xFFFFFFFF if index & 1 else 0)

        seed = self._rng(inp, "guest-seed").randrange(1, 0x7FFF)
        program = _build_guest_program(inp.params, seed)
        machine.load_program(program)
        machine.run(max_instructions=2_000_000)
        self.last_retired = machine.instructions_retired


def _build_guest_program(params: Dict[str, int], seed: int) -> List[int]:
    """Assemble the guest: fill, checksum passes, sort, cold scans.

    Register conventions: r0 = 0 throughout; r15 = LCG state; r14 =
    outer pass counter; r13 = pass limit.
    """
    table_words = params["table_words"]
    sort_words = params["sort_words"]
    cold_words = params["cold_words"]
    passes = params["passes"]

    asm = Assembler()
    asm.emit(LDI, 0, 0, 0)  # r0 = 0
    asm.emit(LDI, 15, 0, seed)

    # --- Fill the hot table with sparse frequent-value-rich data -------
    asm.emit(LDI, 1, 0, _TABLE_BASE)  # i
    asm.emit(LDI, 2, 0, _TABLE_BASE + table_words)  # limit
    asm.label("fill")
    # LCG step: r15 = r15 * 25173 + 13849 (mod 2^32, masked to 16 bits)
    asm.emit(LDI, 3, 0, 25173)
    asm.emit(MUL, 15, 3, 0)
    asm.emit(LDI, 3, 0, 13849)
    asm.emit(ADD, 15, 3, 0)
    asm.emit(LDI, 3, 0, 0xFFFF)
    asm.emit(AND, 15, 3, 0)
    asm.emit(MOV, 4, 15, 0)
    asm.emit(LDI, 3, 0, 255)
    asm.emit(AND, 4, 3, 0)
    # Sparse classification: ~70% zeros, then 1, 2, or raw LCG noise.
    asm.emit(LDI, 3, 0, 180)
    asm.branch(BLT, 4, 3, "fill_zero")
    asm.emit(LDI, 3, 0, 230)
    asm.branch(BLT, 4, 3, "fill_one")
    asm.emit(LDI, 3, 0, 250)
    asm.branch(BLT, 4, 3, "fill_two")
    asm.emit(MOV, 5, 15, 0)
    asm.branch(JMP, 0, 0, "fill_store")
    asm.label("fill_zero")
    asm.emit(LDI, 5, 0, 0)
    asm.branch(JMP, 0, 0, "fill_store")
    asm.label("fill_one")
    asm.emit(LDI, 5, 0, 1)
    asm.branch(JMP, 0, 0, "fill_store")
    asm.label("fill_two")
    asm.emit(LDI, 5, 0, 2)
    asm.label("fill_store")
    asm.emit(ST, 5, 1, 0)  # table[i] = r5
    asm.emit(ADDI, 1, 0, 1)
    asm.branch(BNE, 1, 2, "fill")

    # --- Fill the scanned slots of the cold region with noise ---------
    # (diverse values: the cold-region misses are the share of m88ksim's
    # misses that neither the FVC nor a doubled cache removes)
    asm.emit(LDI, 1, 0, _COLD_BASE)
    asm.emit(LDI, 2, 0, _COLD_BASE + cold_words)
    asm.label("fill_cold")
    asm.emit(LDI, 3, 0, 26699)
    asm.emit(MUL, 15, 3, 0)
    asm.emit(LDI, 3, 0, 11213)
    asm.emit(ADD, 15, 3, 0)
    asm.emit(ST, 15, 1, 0)
    asm.emit(ADDI, 1, 0, 8)
    asm.branch(BNE, 1, 2, "fill_cold")

    # --- Seed the sort array from the table --------------------------
    asm.emit(LDI, 1, 0, 0)
    asm.emit(LDI, 2, 0, sort_words)
    asm.label("seed_sort")
    asm.emit(LD, 4, 1, _TABLE_BASE)
    asm.emit(MOV, 5, 1, 0)
    asm.emit(MUL, 5, 5, 0)  # i*i scrambles ordering a little
    asm.emit(ADD, 4, 5, 0)
    asm.emit(ST, 4, 1, _SORT_BASE)
    asm.emit(ADDI, 1, 0, 1)
    asm.branch(BNE, 1, 2, "seed_sort")

    # --- Outer measurement loop ---------------------------------------
    asm.emit(LDI, 14, 0, 0)  # pass counter
    asm.emit(LDI, 13, 0, passes)
    asm.label("outer")

    # Checksum pass over the hot table.
    asm.emit(LDI, 1, 0, _TABLE_BASE)
    asm.emit(LDI, 2, 0, _TABLE_BASE + table_words)
    asm.emit(LDI, 7, 0, 0)  # sum
    asm.label("sum")
    asm.emit(LD, 4, 1, 0)
    asm.emit(ADD, 7, 4, 0)
    asm.emit(ADDI, 1, 0, 1)
    asm.branch(BNE, 1, 2, "sum")
    asm.emit(ST, 7, 14, _OUT_BASE)  # out[pass] = checksum

    # One bubble pass over the sort array (compare/swap stores).
    asm.emit(LDI, 1, 0, _SORT_BASE)
    asm.emit(LDI, 2, 0, _SORT_BASE + sort_words - 1)
    asm.label("bubble")
    asm.emit(LD, 4, 1, 0)
    asm.emit(LD, 5, 1, 1)
    asm.branch(BLT, 4, 5, "no_swap")
    asm.emit(ST, 5, 1, 0)
    asm.emit(ST, 4, 1, 1)
    asm.label("no_swap")
    asm.emit(ADDI, 1, 0, 1)
    asm.branch(BNE, 1, 2, "bubble")

    # Cold scan: stride-8 walk over a 48 KB region touched once per
    # pass (one access per 32-byte line).
    asm.emit(LDI, 1, 0, _COLD_BASE)
    asm.emit(LDI, 2, 0, _COLD_BASE + cold_words)
    asm.label("cold")
    asm.emit(LD, 4, 1, 0)
    asm.emit(ADD, 7, 4, 0)
    asm.emit(ADDI, 1, 0, 8)
    asm.branch(BNE, 1, 2, "cold")

    asm.emit(ADDI, 14, 0, 1)
    asm.branch(BNE, 14, 13, "outer")
    asm.emit(HALT)
    return asm.assemble()
