"""SPECfp95 analogs (Fig. 2 frequent-value study).

The paper's floating-point benchmarks show strong frequent value
locality too, driven by zero-dominated grids and repeated physical
constants whose IEEE-754 bit patterns recur everywhere.  Six analogs
cover the spread, each a real numerical kernel over float32 words:

* **swim** — shallow-water stencils on mostly-zero velocity grids;
* **tomcatv** — mesh generation whose coordinate arrays repeat the
  same values along rows and columns;
* **mgrid** — a sparse 3D multigrid relaxation (zeros dominate);
* **applu** — block-structured solver with identity-like 4x4 blocks
  (0.0 and 1.0 everywhere);
* **su2cor** — complex lattice fields with identity links (1.0 + 0i);
* **hydro2d** — hydrodynamics with exact-zero vacuum regions.
"""

from __future__ import annotations

from typing import Dict

from repro.common.words import float_to_word, word_to_float
from repro.mem.space import AddressSpace
from repro.workloads.base import Workload, WorkloadInput


class _FpWorkload(Workload):
    """Shared conveniences for the FP analogs."""

    exhibits_fvl = True

    @staticmethod
    def _fstore(space: AddressSpace, addr: int, value: float) -> None:
        space.store(addr, float_to_word(value))

    @staticmethod
    def _fload(space: AddressSpace, addr: int) -> float:
        return word_to_float(space.load(addr))


class SwimWorkload(_FpWorkload):
    """Shallow-water stencil: velocity grids start zero and stay
    mostly zero away from the disturbance."""

    name = "swim"
    spec_analog = "102.swim"

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput("test", {"n": 40, "steps": 6}, data_seed=1),
            "train": WorkloadInput("train", {"n": 56, "steps": 8}, data_seed=2),
            "ref": WorkloadInput("ref", {"n": 72, "steps": 10}, data_seed=3),
        }

    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        n = inp.params["n"]
        static = space.static
        u = static.alloc(n * n)
        v = static.alloc(n * n)
        p = static.alloc(n * n)
        rng = self._rng(inp, "init")
        for row in range(n):
            for col in range(n):
                index = (row * n + col) * 4
                self._fstore(space, u + index, 0.0)
                self._fstore(space, v + index, 0.0)
                centre = 1.0 if abs(row - n // 2) + abs(col - n // 2) < 3 else 0.0
                self._fstore(space, p + index, centre * (1 + rng.random()))
        dt = 0.05
        for _ in range(inp.params["steps"]):
            for row in range(1, n - 1):
                for col in range(1, n - 1):
                    here = (row * n + col) * 4
                    east = (row * n + col + 1) * 4
                    south = ((row + 1) * n + col) * 4
                    du = self._fload(space, p + east) - self._fload(space, p + here)
                    dv = self._fload(space, p + south) - self._fload(space, p + here)
                    if du:
                        self._fstore(
                            space, u + here, self._fload(space, u + here) - dt * du
                        )
                    if dv:
                        self._fstore(
                            space, v + here, self._fload(space, v + here) - dt * dv
                        )
            for row in range(1, n - 1):
                for col in range(1, n - 1):
                    here = (row * n + col) * 4
                    west = (row * n + col - 1) * 4
                    north = ((row - 1) * n + col) * 4
                    div = (
                        self._fload(space, u + here)
                        - self._fload(space, u + west)
                        + self._fload(space, v + here)
                        - self._fload(space, v + north)
                    )
                    if div:
                        self._fstore(
                            space, p + here, self._fload(space, p + here) - dt * div
                        )


class TomcatvWorkload(_FpWorkload):
    """Mesh generation: coordinate arrays repeat values along axes."""

    name = "tomcatv"
    spec_analog = "101.tomcatv"

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput("test", {"n": 48, "iters": 4}, data_seed=4),
            "train": WorkloadInput("train", {"n": 64, "iters": 5}, data_seed=5),
            "ref": WorkloadInput("ref", {"n": 88, "iters": 6}, data_seed=6),
        }

    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        n = inp.params["n"]
        static = space.static
        x = static.alloc(n * n)
        y = static.alloc(n * n)
        rx = static.alloc(n * n)
        ry = static.alloc(n * n)
        # Separable initial mesh: x repeats per column, y per row, so a
        # handful of coordinate bit patterns occupy most of memory.
        for row in range(n):
            for col in range(n):
                index = (row * n + col) * 4
                self._fstore(space, x + index, float(col) * 0.125)
                self._fstore(space, y + index, float(row) * 0.125)
                self._fstore(space, rx + index, 0.0)
                self._fstore(space, ry + index, 0.0)
        for _ in range(inp.params["iters"]):
            # Residual computation (mostly zero residuals on the
            # separable mesh) followed by a damped correction.
            for row in range(1, n - 1):
                for col in range(1, n - 1):
                    here = (row * n + col) * 4
                    east = (row * n + col + 1) * 4
                    west = (row * n + col - 1) * 4
                    residual_x = (
                        self._fload(space, x + east)
                        + self._fload(space, x + west)
                        - 2 * self._fload(space, x + here)
                    )
                    self._fstore(space, rx + here, residual_x)
                    north = ((row - 1) * n + col) * 4
                    south = ((row + 1) * n + col) * 4
                    residual_y = (
                        self._fload(space, y + north)
                        + self._fload(space, y + south)
                        - 2 * self._fload(space, y + here)
                    )
                    self._fstore(space, ry + here, residual_y)
            for row in range(1, n - 1):
                for col in range(1, n - 1):
                    here = (row * n + col) * 4
                    correction = self._fload(space, rx + here)
                    if correction:
                        self._fstore(
                            space,
                            x + here,
                            self._fload(space, x + here) + 0.5 * correction,
                        )


class MgridWorkload(_FpWorkload):
    """Sparse 3D multigrid relaxation — the most zero-dominated."""

    name = "mgrid"
    spec_analog = "107.mgrid"

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput("test", {"n": 12, "sweeps": 3}, data_seed=7),
            "train": WorkloadInput("train", {"n": 16, "sweeps": 4}, data_seed=8),
            "ref": WorkloadInput("ref", {"n": 20, "sweeps": 5}, data_seed=9),
        }

    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        n = inp.params["n"]
        static = space.static
        grid = static.alloc(n * n * n)
        rng = self._rng(inp, "sources")

        def addr(i: int, j: int, k: int) -> int:
            return grid + ((i * n + j) * n + k) * 4

        for i in range(n):
            for j in range(n):
                for k in range(n):
                    self._fstore(space, addr(i, j, k), 0.0)
        for _ in range(max(3, n // 4)):
            self._fstore(
                space,
                addr(
                    rng.randrange(1, n - 1),
                    rng.randrange(1, n - 1),
                    rng.randrange(1, n - 1),
                ),
                float(rng.randrange(1, 5)),
            )
        for _ in range(inp.params["sweeps"]):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    for k in range(1, n - 1):
                        neighbours = (
                            self._fload(space, addr(i - 1, j, k))
                            + self._fload(space, addr(i + 1, j, k))
                            + self._fload(space, addr(i, j - 1, k))
                            + self._fload(space, addr(i, j + 1, k))
                            + self._fload(space, addr(i, j, k - 1))
                            + self._fload(space, addr(i, j, k + 1))
                        )
                        if neighbours:
                            current = self._fload(space, addr(i, j, k))
                            self._fstore(
                                space,
                                addr(i, j, k),
                                current + 0.125 * (neighbours - 6 * current),
                            )


class ApplluWorkload(_FpWorkload):
    """Block solver: near-identity 4x4 blocks (0.0/1.0 everywhere)."""

    name = "applu"
    spec_analog = "110.applu"

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput("test", {"cells": 300, "sweeps": 3}, data_seed=10),
            "train": WorkloadInput("train", {"cells": 600, "sweeps": 4}, data_seed=11),
            "ref": WorkloadInput("ref", {"cells": 1000, "sweeps": 5}, data_seed=12),
        }

    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        cells = inp.params["cells"]
        static = space.static
        blocks = static.alloc(cells * 16)  # one 4x4 block per cell
        vectors = static.alloc(cells * 4)
        rng = self._rng(inp, "blocks")
        for cell in range(cells):
            for row in range(4):
                for col in range(4):
                    offset = blocks + (cell * 16 + row * 4 + col) * 4
                    if row == col:
                        value = 1.0
                    elif rng.random() < 0.15:
                        value = rng.choice((0.5, -0.5, 0.25))
                    else:
                        value = 0.0
                    self._fstore(space, offset, value)
            for row in range(4):
                self._fstore(
                    space, vectors + (cell * 4 + row) * 4, float(cell % 7)
                )
        for _ in range(inp.params["sweeps"]):
            # Lower sweep: v[c] = B[c] @ v[c] (block matrix-vector).
            for cell in range(cells):
                values = [
                    self._fload(space, vectors + (cell * 4 + row) * 4)
                    for row in range(4)
                ]
                for row in range(4):
                    total = 0.0
                    for col in range(4):
                        coefficient = self._fload(
                            space, blocks + (cell * 16 + row * 4 + col) * 4
                        )
                        if coefficient:
                            total += coefficient * values[col]
                    self._fstore(space, vectors + (cell * 4 + row) * 4, total)


class Su2corWorkload(_FpWorkload):
    """Quark-propagator analog: complex lattice fields stored as
    (re, im) float pairs, many exactly-zero imaginary parts."""

    name = "su2cor"
    spec_analog = "103.su2cor"

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput("test", {"n": 10, "sweeps": 3}, data_seed=13),
            "train": WorkloadInput("train", {"n": 14, "sweeps": 4}, data_seed=14),
            "ref": WorkloadInput("ref", {"n": 18, "sweeps": 5}, data_seed=15),
        }

    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        n = inp.params["n"]
        static = space.static
        # Lattice of complex link variables: 2 floats per site per
        # direction; imaginary parts start (and mostly stay) zero.
        sites = n * n * n
        field = static.alloc(sites * 4)  # 2 directions x (re, im)
        rng = self._rng(inp, "lattice")
        for site in range(sites):
            for direction in range(2):
                base = field + (site * 4 + direction * 2) * 4
                self._fstore(space, base, 1.0)  # cold-start: identity links
                self._fstore(space, base + 4, 0.0)
        # A few hot sites get genuine complex values.
        for _ in range(max(4, sites // 50)):
            site = rng.randrange(sites)
            base = field + site * 16
            self._fstore(space, base, rng.random())
            self._fstore(space, base + 4, rng.random() - 0.5)
        for _ in range(inp.params["sweeps"]):
            # Correlator sweep: multiply neighbouring links (complex
            # product read-modify-write; zero imaginary parts persist).
            for site in range(sites - 1):
                a = field + site * 16
                b = field + (site + 1) * 16
                re_a = self._fload(space, a)
                im_a = self._fload(space, a + 4)
                re_b = self._fload(space, b)
                im_b = self._fload(space, b + 4)
                re = re_a * re_b - im_a * im_b
                im = re_a * im_b + im_a * re_b
                if re != re_a:
                    self._fstore(space, a, re)
                if im != im_a:
                    self._fstore(space, a + 4, im)


class Hydro2dWorkload(_FpWorkload):
    """Astrophysical hydrodynamics analog: Navier-Stokes-ish grids
    whose vacuum regions hold exact zeros."""

    name = "hydro2d"
    spec_analog = "104.hydro2d"

    def inputs(self) -> Dict[str, WorkloadInput]:
        return {
            "test": WorkloadInput("test", {"n": 36, "steps": 4}, data_seed=16),
            "train": WorkloadInput("train", {"n": 48, "steps": 5}, data_seed=17),
            "ref": WorkloadInput("ref", {"n": 64, "steps": 6}, data_seed=18),
        }

    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        n = inp.params["n"]
        static = space.static
        density = static.alloc(n * n)
        momentum = static.alloc(n * n)
        rng = self._rng(inp, "gas")
        # A dense disc in the middle of vacuum.
        for row in range(n):
            for col in range(n):
                index = (row * n + col) * 4
                r2 = (row - n // 2) ** 2 + (col - n // 2) ** 2
                inside = r2 < (n // 5) ** 2
                self._fstore(
                    space, density + index,
                    1.0 + 0.1 * rng.random() if inside else 0.0,
                )
                self._fstore(space, momentum + index, 0.0)
        for _ in range(inp.params["steps"]):
            # Advection: density flows outward where a gradient exists.
            for row in range(1, n - 1):
                for col in range(1, n - 1):
                    here = (row * n + col) * 4
                    east = (row * n + col + 1) * 4
                    rho = self._fload(space, density + here)
                    rho_e = self._fload(space, density + east)
                    flux = 0.05 * (rho - rho_e)
                    if flux:
                        self._fstore(space, density + here, rho - flux)
                        self._fstore(space, density + east, rho_e + flux)
                        p = self._fload(space, momentum + here)
                        self._fstore(space, momentum + here, p + flux)
