"""Workload base class and input-scale plumbing."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import WorkloadError
from repro.common.rng import make_rng
from repro.mem.layout import DEFAULT_LAYOUT, AddressSpaceLayout
from repro.mem.space import AddressSpace
from repro.trace.trace import Trace


@dataclass(frozen=True)
class WorkloadInput:
    """One input scale of a workload (the paper's test/train/ref).

    ``params`` feeds the workload's ``_run``; ``data_seed`` varies the
    *input data* between scales, which is what makes the large
    (pointer-valued) frequent values input-sensitive in Table 2 while
    the small ones stay put.
    """

    name: str
    params: Dict[str, int]
    data_seed: int


class Workload(ABC):
    """A deterministic program over a simulated address space.

    Subclasses define :attr:`name`, :attr:`spec_analog`, :meth:`inputs`
    and :meth:`_run`.  Everything else — tracing, sampling hooks, input
    lookup — is shared here.
    """

    #: Registry key, e.g. ``"gcc"``.
    name: str = ""
    #: The SPEC95 benchmark this stands in for, e.g. ``"126.gcc"``.
    spec_analog: str = ""
    #: True for the six SPECint95 programs with frequent value locality.
    exhibits_fvl: bool = True

    # ------------------------------------------------------------------
    @abstractmethod
    def inputs(self) -> Dict[str, WorkloadInput]:
        """The available input scales keyed by name (test/train/ref)."""

    @abstractmethod
    def _run(self, space: AddressSpace, inp: WorkloadInput) -> None:
        """Execute the program against ``space``."""

    # ------------------------------------------------------------------
    def input_named(self, input_name: str) -> WorkloadInput:
        """Look up one input scale, with a helpful error."""
        table = self.inputs()
        try:
            return table[input_name]
        except KeyError:
            known = ", ".join(sorted(table))
            raise WorkloadError(
                f"{self.name}: unknown input {input_name!r} (have: {known})"
            ) from None

    def execute(
        self,
        input_name: str = "ref",
        record: Optional[List[Tuple[int, int, int]]] = None,
        sample_interval: int = 0,
        sampler: Optional[Callable] = None,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
    ) -> AddressSpace:
        """Run the program; returns the final address space.

        ``record`` collects the trace; ``sampler`` (with
        ``sample_interval``) observes live memory during the run.
        """
        inp = self.input_named(input_name)
        space = AddressSpace(
            record=record,
            layout=layout,
            sample_interval=sample_interval,
            sampler=sampler,
        )
        self._run(space, inp)
        return space

    def generate_trace(self, input_name: str = "ref") -> Trace:
        """Run the program and return its full memory-reference trace."""
        record: List[Tuple[int, int, int]] = []
        self.execute(input_name, record=record)
        return Trace(record, workload=self.name, input_name=input_name)

    # Helpers for subclasses -----------------------------------------------
    def _rng(self, inp: WorkloadInput, *extra: object):
        """A private RNG stream for this (workload, input, purpose)."""
        return make_rng(self.name, inp.name, inp.data_seed, *extra)

    def __repr__(self) -> str:
        return f"<Workload {self.name} ({self.spec_analog})>"
