"""Workload registry: name → workload instance.

The groupings mirror the paper's: ``FVL_WORKLOADS`` are the six
SPECint95 analogs with frequent value locality (the programs every
cache experiment runs on), ``NON_FVL_WORKLOADS`` are the compress/ijpeg
analogs, and ``FP_WORKLOADS`` are the SPECfp95 analogs used in Fig. 2.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.go import GoWorkload
from repro.workloads.m88ksim import M88ksimWorkload
from repro.workloads.gcc import GccWorkload
from repro.workloads.li import LiWorkload
from repro.workloads.perl import PerlWorkload
from repro.workloads.vortex import VortexWorkload
from repro.workloads.compress import CompressWorkload
from repro.workloads.ijpeg import IjpegWorkload
from repro.workloads.fp import (
    ApplluWorkload,
    Hydro2dWorkload,
    MgridWorkload,
    Su2corWorkload,
    SwimWorkload,
    TomcatvWorkload,
)

#: The six SPECint95 analogs that exhibit frequent value locality, in
#: the paper's presentation order.
FVL_WORKLOADS: List[Workload] = [
    GoWorkload(),
    M88ksimWorkload(),
    GccWorkload(),
    LiWorkload(),
    PerlWorkload(),
    VortexWorkload(),
]

#: The two SPECint95 analogs without frequent value locality.
NON_FVL_WORKLOADS: List[Workload] = [
    CompressWorkload(),
    IjpegWorkload(),
]

#: All eight SPECint95 analogs.
INT_WORKLOADS: List[Workload] = FVL_WORKLOADS + NON_FVL_WORKLOADS

#: The SPECfp95 analogs (Fig. 2 locality study only).
FP_WORKLOADS: List[Workload] = [
    SwimWorkload(),
    TomcatvWorkload(),
    MgridWorkload(),
    ApplluWorkload(),
    Su2corWorkload(),
    Hydro2dWorkload(),
]

#: Every workload in the suite.
ALL_WORKLOADS: List[Workload] = INT_WORKLOADS + FP_WORKLOADS

_BY_NAME: Dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}


def get_workload(name: str) -> Workload:
    """Look up a workload by registry name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise WorkloadError(f"unknown workload {name!r} (have: {known})") from None


def workload_names() -> List[str]:
    """All registry names, suite order."""
    return [w.name for w in ALL_WORKLOADS]
