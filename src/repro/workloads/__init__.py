"""The SPEC95 analog workload suite.

Each workload is a real program — a game-tree searcher, a working RISC
CPU simulator, a Lisp interpreter, an LZW compressor, a DCT codec… —
executing against the simulated 32-bit address space of
:mod:`repro.mem` and emitting a full load/store trace.  The suite
mirrors the paper's benchmark populations:

========== ============== ========================================
analog      SPEC95 twin    behavioural signature reproduced
========== ============== ========================================
go          099.go         board arrays of tiny values; search
m88ksim     124.m88ksim    CPU simulator; 64 KB-aliased hot pair
gcc         126.gcc        heap ASTs, pass pipeline; big footprint
li          130.li         cons cells, tagged ints, heavy mutation
perl        134.perl       packed-ASCII strings + hash tables
vortex      147.vortex     object DB; index traversals
compress    129.compress   LZW; diverse mutating values (no FVL)
ijpeg       132.ijpeg      DCT codec; diverse pixel data (no FVL)
swim        swim (fp)      zero-rich stencil grids
tomcatv     tomcatv (fp)   mesh coordinates, repeated constants
mgrid       mgrid (fp)     sparse 3D multigrid (zero-dominated)
applu       applu (fp)     block solver with 0.0/1.0 structure
su2cor      su2cor (fp)    identity-heavy complex lattice fields
hydro2d     hydro2d (fp)   hydrodynamics with exact-zero vacuum
========== ============== ========================================
"""

from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.registry import (
    ALL_WORKLOADS,
    FP_WORKLOADS,
    FVL_WORKLOADS,
    INT_WORKLOADS,
    NON_FVL_WORKLOADS,
    get_workload,
    workload_names,
)
from repro.workloads.store import TraceStore, get_trace, shared_store

__all__ = [
    "Workload",
    "WorkloadInput",
    "ALL_WORKLOADS",
    "FP_WORKLOADS",
    "FVL_WORKLOADS",
    "INT_WORKLOADS",
    "NON_FVL_WORKLOADS",
    "get_workload",
    "workload_names",
    "TraceStore",
    "get_trace",
    "shared_store",
]
