"""Frequent value locality and the value-centric frequent value cache.

A complete reproduction of *"Frequent Value Locality and Value-Centric
Data Cache Design"* (Zhang, Yang, Gupta — ASPLOS 2000): the frequent
value cache (FVC) and its DMC+FVC protocol, the frequent-value
profilers of the characterisation study, a trace-driven cache simulator
substrate, a CACTI-style timing model, a suite of SPEC95 analog
workloads, and one experiment runner per paper table/figure.

Quickstart::

    from repro import (
        get_workload, profile_accessed_values,
        CacheGeometry, DirectMappedCache,
        FrequentValueEncoder, FvcSystem,
    )

    trace = get_workload("gcc").generate_trace("ref")
    profile = profile_accessed_values(trace)
    encoder = FrequentValueEncoder.for_top_values(profile.top_values(7), 3)

    geometry = CacheGeometry(size_bytes=16 * 1024, line_bytes=32)
    baseline = DirectMappedCache(geometry).simulate(trace.records)
    system = FvcSystem(geometry, fvc_entries=512, encoder=encoder)
    augmented = system.simulate(trace.records)
    print(baseline.miss_rate, augmented.miss_rate)
"""

from repro.cache.classify import MissClassification, classify_misses
from repro.cache.direct import DirectMappedCache
from repro.engine import (
    SimCell,
    TraceCache,
    default_trace_cache,
    run_cell,
    run_cells,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.cache.victim import VictimCacheSystem
from repro.fvc.cache import FrequentValueCacheArray
from repro.fvc.compression import CompressedCache
from repro.fvc.dynamic import DynamicFvcSystem
from repro.fvc.hybrid import HybridFvcVictimSystem
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig
from repro.profiling.access import AccessProfile, profile_accessed_values
from repro.profiling.constancy import profile_constancy
from repro.profiling.occurrence import OccurrenceProfile, profile_occurring_values
from repro.profiling.stability import profile_stability
from repro.timing.cacti import CactiModel, DEFAULT_MODEL
from repro.trace.io import read_trace, write_trace
from repro.trace.stats import compute_stats
from repro.trace.trace import Trace
from repro.workloads.registry import (
    ALL_WORKLOADS,
    FVL_WORKLOADS,
    get_workload,
)
from repro.workloads.store import TraceStore, get_trace, shared_store

__version__ = "1.0.0"

#: Top-level re-exports retired after their one deprecated release:
#: name → the stable replacement named in the AttributeError, so old
#: callers get an actionable message instead of a bare failure.
_RETIRED_EXPORTS = {
    "EXPERIMENTS": "repro.api.list_experiments()",
    "get_experiment": "repro.api.run_experiment()",
}

#: Submodules resolved lazily so ``import repro`` stays light and
#: circular-import-free (``repro.api`` pulls the experiment stack).
_LAZY_SUBMODULES = ("api", "obs")


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.{name}")
    replacement = _RETIRED_EXPORTS.get(name)
    if replacement is not None:
        raise AttributeError(
            f"'repro.{name}' was deprecated and has been removed; use "
            f"{replacement} (the stable facade is repro.api)"
        )
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "CacheGeometry",
    "CacheStats",
    "DirectMappedCache",
    "SetAssociativeCache",
    "VictimCacheSystem",
    "MissClassification",
    "classify_misses",
    "FrequentValueEncoder",
    "FrequentValueCacheArray",
    "FvcSystem",
    "FvcSystemConfig",
    "DynamicFvcSystem",
    "CompressedCache",
    "HybridFvcVictimSystem",
    "AccessProfile",
    "profile_accessed_values",
    "OccurrenceProfile",
    "profile_occurring_values",
    "profile_constancy",
    "profile_stability",
    "CactiModel",
    "DEFAULT_MODEL",
    "Trace",
    "read_trace",
    "write_trace",
    "compute_stats",
    "ALL_WORKLOADS",
    "FVL_WORKLOADS",
    "get_workload",
    "TraceStore",
    "get_trace",
    "shared_store",
    "TraceCache",
    "default_trace_cache",
    "SimCell",
    "run_cell",
    "run_cells",
    "__version__",
]
