"""Command-line interface.

::

    repro-fvc list                      # workloads and experiments
    repro-fvc run fig10 [--fast]        # run one experiment
    repro-fvc run fig10 --jobs 4        # fan simulation cells across cores
    repro-fvc run all [--fast] [--jobs N]  # run everything, paper order
    repro-fvc run fig13 --scale test --sanitize  # with runtime invariants
    repro-fvc run fig13 --checkpoint DIR  # resumable: per-cell records
    repro-fvc run fig13 --faults 'trace_cache.read:io_error@1'  # chaos
    repro-fvc lint [paths...]           # simulator-invariant linter
    repro-fvc cache info|clear|verify   # on-disk trace cache maintenance
    repro-fvc trace gcc --input ref -o gcc.trc[.gz]
    repro-fvc trace gcc -o gcc.trcb --columnar  # columnar binary format
    repro-fvc trace convert gcc.trc gcc.trcb    # migrate between formats
    repro-fvc profile gcc [--input ref] # FVL summary of one workload
    repro-fvc report gcc                # full S2-style locality report
    repro-fvc classify gcc --size-kb 16 # 3C miss classification
    repro-fvc reuse gcc                 # reuse-distance analysis
    repro-fvc simulate gcc --size-kb 16 --line 32 --fvc 512 --top 7

Sweep mode (see docs/SWEEPS.md) — declarative parameter studies::

    repro-fvc sweep list                      # catalogued sweeps
    repro-fvc sweep run l1_size_study --fast  # run + aggregated table
    repro-fvc sweep run spec.json --json      # canonical sweep.result/1
    repro-fvc sweep expand fig13 --fast       # show every planned cell
    repro-fvc sweep report fig14 --format csv -o fig14.csv
    repro-fvc run spec.json --json            # 'run' accepts spec files
    repro-fvc submit spec.json --wait         # POST /v1/sweeps + await

Service mode (see docs/SERVICE.md)::

    repro-fvc serve --port 8031 --workers 4   # run the job server
    repro-fvc submit fig10 --fast --wait      # submit + await a job
    repro-fvc status job-00001-abcdef12       # poll one job
    repro-fvc fetch <result-key>              # stored result payload

Cluster mode (see docs/CLUSTER.md) — ``serve`` doubles as the
coordinator; thin workers attach over the same ``/v1`` protocol::

    repro-fvc serve --port 8031               # coordinator
    repro-fvc worker --coordinator http://127.0.0.1:8031
    repro-fvc worker --coordinator ... --batch 4 --name lab-02

(Equivalent: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.cache.classify import classify_misses
from repro.cache.geometry import CacheGeometry
from repro.engine.trace_cache import default_trace_cache
from repro.experiments.registry import (
    experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.experiments.common import (
    baseline_stats,
    fvc_stats,
    reduction_percent,
)
from repro.profiling.report import build_report
from repro.trace.io import (
    write_trace,
    write_trace_columnar,
    write_trace_compact,
)
from repro.trace.stats import compute_stats
from repro.workloads.registry import ALL_WORKLOADS, get_workload
from repro.workloads.store import shared_store


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workloads:")
    for workload in ALL_WORKLOADS:
        inputs = ", ".join(sorted(workload.inputs()))
        print(f"  {workload.name:10s} ({workload.spec_analog}) inputs: {inputs}")
    print("experiments:")
    for experiment_id in experiment_ids():
        experiment = get_experiment(experiment_id)
        print(f"  {experiment_id:22s} {experiment.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.render import (
        dumps_canonical,
        experiment_payload,
        multi_bar_chart,
        to_csv,
    )

    if args.json and (args.csv or args.chart):
        print("--json excludes --csv/--chart", file=sys.stderr)
        return 2

    fast = args.fast or args.scale == "test"
    if _sweep_spec_source(args.experiment):
        # A sweep/v1 spec file runs the declarative sweep path
        # (docs/SWEEPS.md); malformed documents fail with an error
        # naming the sweep/v1 contract.
        if args.json:
            fmt = "json"
        elif args.csv:
            fmt = "csv"
        else:
            fmt = "table"
        return _run_sweep_to(args.experiment, fast, args.jobs, fmt, None)
    if args.sanitize:
        from repro.analysis import sanitize

        # The flag travels through the environment so pool workers
        # inherit it; checks stay observational, so output bytes match
        # an unsanitized run exactly.
        sanitize.enable()
    if args.faults:
        from repro.faults import FaultPlan, FaultSpecError, install

        try:
            plan = FaultPlan.parse(args.faults)
        except FaultSpecError as exc:
            print(f"--faults: {exc}", file=sys.stderr)
            return 2
        # Installed here for this process, exported so pool workers
        # and service children resolve the same plan from their own
        # (per-process) counters.
        install(plan)
        os.environ["REPRO_FAULTS"] = args.faults

    if args.trace_out:
        from repro.obs import tracing

        # The path travels through the environment so pool workers
        # append spans to the same file; span output never touches
        # stdout, which stays byte-identical to an untraced run.
        os.environ[tracing.ENV_VAR] = args.trace_out
        tracing.reset()

    if args.checkpoint:
        from pathlib import Path

        from repro.engine.checkpoint import RunCheckpoint

        checkpoint_root = Path(args.checkpoint)

        def checkpoint_for(experiment_id: str) -> RunCheckpoint:
            return RunCheckpoint(checkpoint_root / experiment_id)

    collected = []

    def show(experiment_id, result, elapsed):
        if args.json:
            # Collected and printed canonically at the end: one
            # payload object for a single experiment (byte-identical
            # to the service's stored result), an array for several.
            collected.append(experiment_payload(result))
            return
        if args.csv:
            print(to_csv(result), end="")
        else:
            print(result.format_table())
            if args.chart:
                print()
                print(multi_bar_chart(result))
        print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")

    def finish() -> int:
        if args.json:
            document = collected[0] if len(collected) == 1 else collected
            sys.stdout.write(dumps_canonical(document))
        if args.sanitize:
            # A violation anywhere (any worker, any cell) raises out of
            # the run; reaching this line means every check held.  The
            # summary goes to stderr so stdout stays byte-identical.
            print("[sanitize] simulator invariants held", file=sys.stderr)
        if args.trace_out:
            from repro.obs import tracing

            tracer = tracing.active()
            if tracer is not None:
                tracer.flush()
                print(
                    f"[obs] {tracer.spans_recorded} span(s) from this "
                    f"process appended to {args.trace_out}",
                    file=sys.stderr,
                )
        return 0

    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    if args.jobs > 1 and len(ids) > 1 and not args.checkpoint:
        # Whole experiments fan across the pool; results print in
        # registry order regardless of completion order.  (With
        # --checkpoint, experiments run one by one below so each gets
        # its own per-cell record directory.)
        from repro.engine.runner import run_experiments

        started = time.perf_counter()
        results = run_experiments(
            ids, jobs=args.jobs, fast=fast, store=shared_store
        )
        elapsed = time.perf_counter() - started
        for experiment_id, result in zip(ids, results):
            show(experiment_id, result, elapsed / len(ids))
        if not args.json:
            print(f"[{len(ids)} experiments, {args.jobs} jobs, {elapsed:.1f}s]")
        return finish()
    for experiment_id in ids:
        started = time.perf_counter()
        ckpt = checkpoint_for(experiment_id) if args.checkpoint else None
        result = run_experiment(
            experiment_id, shared_store, fast=fast, jobs=args.jobs,
            checkpoint=ckpt,
        )
        show(experiment_id, result, time.perf_counter() - started)
        if ckpt is not None:
            # Stderr, so stdout stays byte-identical with and without
            # checkpointing.
            print(
                f"[checkpoint] {experiment_id}: restored {ckpt.restored}, "
                f"saved {ckpt.saved} cell record(s) under {ckpt.directory}",
                file=sys.stderr,
            )
    return finish()


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.linter import merge_selected_codes
    from repro.analysis.linter import run as lint_run

    try:
        return lint_run(
            paths=args.paths,
            select=merge_selected_codes(args.select, args.rules),
            max_suppressions=args.max_suppressions,
            list_rules=args.list_rules,
            output_format=args.output_format,
            output_path=args.output,
        )
    except Exception as exc:  # noqa: BLE001 - exit-code contract
        # 0 clean / 1 findings / 2 analyzer crash.
        print(f"lint: internal error: {exc}", file=sys.stderr)
        return 2


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = default_trace_cache()
    if cache is None:
        print("trace cache disabled (REPRO_TRACE_CACHE=off)")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached trace(s) from {cache.directory}")
        return 0
    if args.action in ("verify", "fsck"):
        report = cache.verify()
        print(
            f"trace cache {cache.directory}: {report['checked']} checked, "
            f"{report['ok']} ok, {report['quarantined']} quarantined, "
            f"{report['tmp_removed']} stale temp file(s) removed"
        )
        # Non-zero when corruption was found: the entries were
        # quarantined (*.corrupt) and will regenerate on next use, but
        # CI and operators should notice.
        return 1 if report["quarantined"] else 0
    from repro.engine.trace_cache import COMPACT_SUFFIX, ENTRY_SUFFIX

    entries = cache.entries()
    # Entry kinds are distinguishable by suffix: columnar (.trcbe) is
    # what this release writes, compact (.trc2e) what earlier releases
    # persisted at the same content address.  Report them separately —
    # a lumped total hides a cache full of legacy entries.
    columnar = sum(1 for path, *_ in entries if path.suffix == ENTRY_SUFFIX)
    legacy = sum(1 for path, *_ in entries if path.suffix == COMPACT_SUFFIX)
    print(f"trace cache: {cache.directory}")
    print(f"entries: {len(entries)} "
          f"({columnar} columnar {ENTRY_SUFFIX}, "
          f"{legacy} legacy {COMPACT_SUFFIX})")
    total = 0
    # Sizes are bytes, matching the observability contract
    # (result_store_size_bytes and friends) — never KB.
    for path, workload, input_name, count in entries:
        size = path.stat().st_size
        total += size
        print(f"  {workload:10s} {input_name:6s} {count:>10,} accesses "
              f"{size:>12,} bytes")
    if entries:
        print(f"total: {total:,} bytes in {len(entries)} entr(y/ies)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    trace = workload.generate_trace(args.input)
    if args.columnar:
        write_trace_columnar(trace, args.output)
    elif args.compact:
        write_trace_compact(trace, args.output)
    else:
        write_trace(trace, args.output)
    print(f"wrote {len(trace)} accesses to {args.output}")
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from repro.common.errors import TraceFormatError
    from repro.trace.io import read_trace_any

    try:
        trace = read_trace_any(args.source)
    except (TraceFormatError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    writer = {
        "columnar": write_trace_columnar,
        "compact": write_trace_compact,
        "rows": write_trace,
    }[args.format]
    writer(trace, args.destination)
    print(
        f"converted {len(trace)} accesses "
        f"({args.source} -> {args.destination}, {args.format})"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    trace = shared_store.get(args.workload, args.input)
    print(compute_stats(trace).format())
    return 0


def _cmd_profile_run(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError
    from repro.obs.profiling import profile_run, write_collapsed

    try:
        profile = profile_run(
            args.experiment, fast=args.fast, store=shared_store
        )
    except ConfigurationError as exc:
        print(f"profile-run: {exc}", file=sys.stderr)
        return 2
    output = args.output or f"{args.experiment}.folded"
    write_collapsed(profile, output, weight=args.weight)
    print(
        f"{args.experiment}: {len(profile.cells)} cell(s), "
        f"{profile.total_references:,} references in "
        f"{profile.elapsed_seconds:.2f}s "
        f"({profile.throughput():,.0f} refs/s)"
    )
    print(f"collapsed stacks ({args.weight} weights) written to {output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    trace = shared_store.get(args.workload, args.input)
    report = build_report(
        workload,
        args.input,
        trace=trace,
        include_occurrence=not args.no_occurrence,
    )
    print(report.format())
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    trace = shared_store.get(args.workload, args.input)
    geometry = CacheGeometry(args.size_kb * 1024, args.line, ways=args.ways)
    result = classify_misses(trace.records, geometry)
    print(
        f"{geometry.describe()} on {args.workload}/{args.input}: "
        f"miss rate {100 * result.miss_rate:.3f}%"
    )
    for kind in ("compulsory", "capacity", "conflict"):
        count = getattr(result, kind)
        print(f"  {kind:10s} {count:8d} ({100 * result.fraction(kind):5.1f}%)")
    return 0


def _cmd_reuse(args: argparse.Namespace) -> int:
    from repro.profiling.reuse import (
        fvc_catchable_fraction,
        reuse_distance_profile,
    )

    trace = shared_store.get(args.workload, args.input)
    profile = reuse_distance_profile(trace.records, line_bytes=args.line)
    print(
        f"{args.workload}/{args.input}: {profile.total_accesses:,} accesses, "
        f"{profile.cold_accesses:,} cold"
    )
    for lines in (128, 256, 512, 1024, 2048):
        size_kb = lines * args.line / 1024
        print(
            f"  fully-assoc LRU {size_kb:6.1f} KB: miss rate "
            f"{100 * profile.miss_rate_at_capacity(lines):6.3f}%"
        )
    dmc_lines = args.size_kb * 1024 // args.line
    band = fvc_catchable_fraction(profile, dmc_lines, args.fvc)
    print(
        f"  accesses in the FVC-reachable band [{dmc_lines}, "
        f"{dmc_lines + args.fvc}) lines: {100 * band:.2f}% "
        "(x frequent-word fraction = catchable misses)"
    )
    print(f"  95%-reuse working set: "
          f"{profile.working_set_lines() * args.line / 1024:.1f} KB")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = shared_store.get(args.workload, args.input)
    geometry = CacheGeometry(args.size_kb * 1024, args.line)
    base = baseline_stats(trace, geometry)
    fvc = system = None
    if args.fvc:
        fvc, system = fvc_stats(trace, geometry, args.fvc, args.top)
    if args.json:
        from repro.experiments.render import dumps_canonical

        payload = {
            "schema": "repro.simulate/1",
            "workload": args.workload,
            "input": args.input,
            "geometry": {
                "size_bytes": geometry.size_bytes,
                "line_bytes": geometry.line_bytes,
                "ways": geometry.ways,
            },
            "baseline": base.as_dict(),
            "fvc": None,
        }
        if fvc is not None:
            payload["fvc"] = {
                "entries": args.fvc,
                "top_values": args.top,
                "stats": fvc.as_dict(),
                "fvc_hits": system.fvc_hits,
                "reduction_percent": round(
                    reduction_percent(base, fvc), 3
                ),
            }
        sys.stdout.write(dumps_canonical(payload))
        return 0
    print(
        f"{geometry.describe()} baseline: "
        f"miss rate {100 * base.miss_rate:.3f}%, "
        f"traffic {base.traffic_words} words"
    )
    if fvc is not None:
        print(
            f"+ {args.fvc}-entry top-{args.top} FVC: "
            f"miss rate {100 * fvc.miss_rate:.3f}% "
            f"({reduction_percent(base, fvc):.1f}% reduction), "
            f"traffic {fvc.traffic_words} words, "
            f"FVC hits {system.fvc_hits}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.server import ServiceConfig, serve

    return serve(
        ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            job_timeout=args.timeout if args.timeout > 0 else None,
            max_retries=args.retries,
            max_queue_depth=(
                args.max_queue_depth if args.max_queue_depth > 0 else None
            ),
            store_dir=Path(args.store_dir) if args.store_dir else None,
            store_capacity=args.capacity,
            quiet=not args.verbose,
            cluster_lease_timeout=args.lease_timeout,
            cluster_worker_ttl=args.worker_ttl,
            cluster_dispatchers=args.cluster_dispatchers,
            state_dir=Path(args.state_dir) if args.state_dir else None,
            state_quota_bytes=(
                args.state_quota_bytes if args.state_quota_bytes > 0 else None
            ),
        )
    )


def _cmd_journal(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.journal import Journal, recover

    directory = Path(args.state_dir)
    if not directory.is_dir():
        print(f"journal: no state directory at {directory}", file=sys.stderr)
        return 1
    journal = Journal(directory, fsync=False)
    if args.action in ("verify", "fsck"):
        report = journal.sweep()
        print(
            f"journal {directory}: {report['records_ok']} record(s) ok, "
            f"{report['torn_bytes']} torn byte(s), "
            f"{report['quarantined']} quarantined, "
            f"{report['tmp_removed']} stale temp file(s) removed, "
            f"snapshot {'ok' if report['snapshot_ok'] else 'quarantined'}"
        )
        # Same contract as `cache fsck`: corruption was contained
        # (*.corrupt files, tail truncated) but CI and operators
        # should notice.
        return 1 if report["quarantined"] else 0
    # info: replay read-only and summarise what a restart would restore.
    recovered = recover(journal)
    stats = journal.stats()
    print(f"journal: {directory}")
    print(
        f"records: seq high-water {stats['seq']}, "
        f"{stats['tail_records']} past the snapshot, "
        f"{stats['size_bytes']:,} bytes on disk"
    )
    states: dict = {}
    for job in recovered.jobs:
        states[job.state] = states.get(job.state, 0) + 1
    summary = ", ".join(
        f"{count} {state}" for state, count in sorted(states.items())
    )
    print(f"jobs: {len(recovered.jobs)} ({summary})" if recovered.jobs
          else "jobs: 0")
    print(
        f"scheduler: worker serial {recovered.worker_serial}, "
        f"lease serial {recovered.lease_serial}, "
        f"clock epoch {recovered.epoch:.3f}s"
    )
    if recovered.torn:
        print("warning: torn tail detected (run `journal fsck` to "
              "quarantine and truncate)")
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.cluster.worker import WorkerConfig, run_worker

    return run_worker(
        WorkerConfig(
            coordinator=args.coordinator,
            name=args.name,
            batch=args.batch,
            poll=args.poll,
            timeout=args.timeout,
            max_cells=args.max_cells if args.max_cells > 0 else None,
            once=args.once,
        )
    )


def _print_json(payload) -> None:
    from repro.experiments.render import dumps_canonical

    sys.stdout.write(dumps_canonical(payload))


def _sweep_spec_source(token: str) -> bool:
    """Whether a CLI experiment/sweep argument names a spec *file*.

    Catalogued ids never contain a path separator or a ``.json``
    suffix, so anything that does (or that exists on disk) is read as
    a ``sweep/v1`` document.
    """
    return (
        token.endswith(".json")
        or os.path.sep in token
        or os.path.isfile(token)
    )


def _resolve_cli_sweep(token: str, fast: bool):
    """A normalised sweep spec from a catalog name or a JSON file.

    Raises :class:`repro.common.errors.ConfigurationError` (message
    names ``sweep/v1``) for malformed files and unknown names.
    """
    from repro.sweeps.catalog import get_sweep
    from repro.sweeps.spec import load_sweep_file

    if _sweep_spec_source(token):
        return load_sweep_file(token)
    return get_sweep(token, fast=fast)


def _format_sweep_table(headers, rows) -> str:
    """The aggregated report as an aligned plain-text table."""
    cells = [[str(header) for header in headers]]
    for row in rows:
        cells.append(["" if row[h] is None else str(row[h]) for h in headers])
    widths = [
        max(len(line[column]) for line in cells)
        for column in range(len(headers))
    ]
    lines = []
    for index, line in enumerate(cells):
        lines.append(
            "  ".join(
                value.ljust(width) for value, width in zip(line, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _emit_sweep(payload, fmt: str, output) -> int:
    """Write one assembled ``sweep.result/1`` payload as ``fmt``."""
    from repro.experiments.render import dumps_canonical
    from repro.sweeps.report import render_csv, render_html

    if fmt == "json":
        text = dumps_canonical(payload)
    elif fmt == "csv":
        text = render_csv(payload["headers"], payload["rows"])
    elif fmt == "html":
        title = payload["sweep"].get("title", payload["sweep"]["name"])
        text = render_html(title, payload["headers"], payload["rows"])
    else:
        text = _format_sweep_table(payload["headers"], payload["rows"]) + "\n"
    if output:
        from pathlib import Path

        Path(output).write_text(text, encoding="utf-8")
        print(f"[sweep] wrote {fmt} report to {output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _run_sweep_to(token, fast, jobs, fmt, output) -> int:
    """Resolve, execute and emit one sweep (shared by ``sweep run``,
    ``sweep report`` and ``run <spec.json>``)."""
    from repro.common.errors import ConfigurationError
    from repro.sweeps.runner import run_sweep

    try:
        spec = _resolve_cli_sweep(token, fast)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = run_sweep(spec, store=shared_store, jobs=jobs)
    return _emit_sweep(payload, fmt, output)


def _cmd_sweep_list(_args: argparse.Namespace) -> int:
    from repro.sweeps.catalog import get_sweep, sweep_names
    from repro.sweeps.spec import is_experiment_sweep

    for name in sweep_names():
        spec = get_sweep(name)
        if is_experiment_sweep(spec):
            arm = spec["arms"][0]
            shape = f"experiment wrapper ({arm['experiment_id']})"
        else:
            axes = ", ".join(
                f"{axis}[{len(values)}]"
                for axis, values in spec["axes"].items()
            )
            shape = f"{len(spec['arms'])} arm(s) x {axes}"
        print(f"  {name:22s} {shape}")
    return 0


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    if args.json:
        fmt = "json"
    elif args.csv:
        fmt = "csv"
    else:
        fmt = "table"
    return _run_sweep_to(args.sweep, args.fast, args.jobs, fmt, None)


def _cmd_sweep_expand(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError
    from repro.sweeps.expand import expand
    from repro.sweeps.runner import describe_sweep
    from repro.sweeps.spec import is_experiment_sweep

    try:
        spec = _resolve_cli_sweep(args.sweep, args.fast)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    description = describe_sweep(spec)
    print(
        f"{description['name']}  sweep_id={description['sweep_id']}  "
        f"points={description['points']}  "
        f"distinct_cells={description['distinct_cells']}"
    )
    if is_experiment_sweep(spec):
        print(f"  wraps experiment {description['experiment_id']}")
        return 0
    for point in expand(spec):
        coords = " ".join(
            f"{axis}={value}" for axis, value in point.coords.items()
        )
        cell = point.cell
        print(
            f"  #{point.index:<4d} {point.arm:12s} {coords}  -> "
            f"{cell.kind} {cell.workload}/{cell.input_name} "
            f"{cell.size_bytes}B/{cell.line_bytes}B/{cell.ways}w"
            + (
                f" fvc={cell.fvc_entries} top={cell.top_values}"
                if cell.kind == "fvc"
                else ""
            )
        )
    return 0


def _cmd_sweep_report(args: argparse.Namespace) -> int:
    return _run_sweep_to(
        args.sweep, args.fast, args.jobs, args.format, args.output
    )


def _submit_sweep(client, args: argparse.Namespace) -> int:
    """``submit <spec.json>``: POST the sweep and (with ``--wait``)
    print the assembled payload — byte-identical to a local
    ``sweep run --json`` of the same spec."""
    from repro.common.errors import ConfigurationError
    from repro.experiments.render import dumps_canonical
    from repro.service.client import JobFailed, ServiceError
    from repro.sweeps.spec import load_sweep_file

    try:
        spec = load_sweep_file(args.experiment)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        view = client.submit_sweep(spec)
        if not args.wait:
            _print_json(view)
            return 0
        view = client.wait_sweep(view["sweep_id"], timeout=args.timeout)
        sys.stdout.write(dumps_canonical(view["result"]))
        return 0
    except JobFailed as exc:
        _print_json(exc.job)
        return 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import JobFailed, ServiceClient, ServiceError
    from repro.service.resilience import CircuitBreaker, RetryPolicy

    # The CLI opts into client-side degradation: transient failures
    # (connection errors, 503 shedding) retry with seeded jittered
    # backoff, and a clearly-down service fails fast.
    client = ServiceClient(
        args.url,
        retry=RetryPolicy(retries=args.retries) if args.retries > 0 else None,
        breaker=CircuitBreaker(),
    )
    if _sweep_spec_source(args.experiment):
        return _submit_sweep(client, args)
    try:
        job = client.submit_experiment(args.experiment, fast=args.fast)
        if not args.wait:
            _print_json(job)
            return 0
        if job.get("state") != "done":
            job = client.wait(job["id"], timeout=args.timeout)
        # Print the stored payload byte-exactly, so `submit --wait`
        # output equals `run --json` output for the same experiment.
        sys.stdout.write(client.result_bytes(job["result_key"]).decode())
        return 0
    except JobFailed as exc:
        _print_json(exc.job)
        return 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    try:
        _print_json(ServiceClient(args.url).status(args.job_id))
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    try:
        payload = ServiceClient(args.url).result_bytes(args.key)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sys.stdout.write(payload.decode())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-fvc",
        description="Frequent value locality / FVC reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and experiments").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser(
        "run",
        help="run one experiment (or 'all', or a sweep/v1 spec file)",
    )
    run.add_argument(
        "experiment",
        help="experiment id, e.g. fig10, 'all', or a sweep/v1 spec "
        "file (.json)",
    )
    run.add_argument(
        "--fast", action="store_true", help="reduced configuration (tests)"
    )
    run.add_argument(
        "--scale",
        choices=("test", "full"),
        default="full",
        help="configuration scale: 'test' is an alias for --fast, "
        "'full' the paper-scale sweep (default)",
    )
    run.add_argument(
        "--sanitize",
        action="store_true",
        help="enable runtime invariant checks (repro.analysis.sanitize) "
        "on every simulation cell; output bytes are unchanged",
    )
    run.add_argument(
        "--chart", action="store_true", help="append an ASCII bar chart"
    )
    run.add_argument(
        "--csv", action="store_true", help="emit CSV instead of the table"
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical JSON payload (the format the service "
        "result store persists) instead of the table",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes: fans simulation cells (single experiment) "
        "or whole experiments ('all') across cores; results are "
        "bit-identical to --jobs 1",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist per-cell results under DIR/<experiment>/ and "
        "resume from them: an interrupted run re-executes only the "
        "missing cells, bit-identical to an uninterrupted run "
        "(see docs/ROBUSTNESS.md)",
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault-injection plan, e.g. "
        "'trace_cache.read:io_error@1;seed=7' (equivalent to "
        "REPRO_FAULTS=SPEC; grammar in docs/ROBUSTNESS.md)",
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="append structured spans (canonical JSONL, one per span) "
        "to FILE: engine cells, trace-cache resolutions, checkpoint "
        "records (equivalent to REPRO_OBS_TRACE=FILE; stdout bytes are "
        "unchanged — see docs/OBSERVABILITY.md)",
    )
    run.set_defaults(func=_cmd_run)

    lint = sub.add_parser(
        "lint",
        help="run the simulator-invariant linter (see docs/ANALYSIS.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/, else .)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="CODES",
        help="additional comma-separated rule codes (merged with --select)",
    )
    lint.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    lint.add_argument(
        "--max-suppressions",
        type=int,
        default=None,
        metavar="N",
        help="suppression budget (default 5)",
    )
    lint.set_defaults(func=_cmd_lint)

    cache = sub.add_parser(
        "cache", help="inspect, clear, or integrity-check the on-disk "
        "trace cache"
    )
    cache.add_argument(
        "action",
        choices=("info", "clear", "verify", "fsck"),
        help="'verify' (alias 'fsck') checks every entry's sha256 "
        "envelope, quarantines corrupt ones as *.corrupt, and sweeps "
        "stale temp files; exits 1 when corruption was found",
    )
    cache.set_defaults(func=_cmd_cache)

    trace = sub.add_parser(
        "trace",
        help="generate a trace file, or convert one between formats",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_gen = trace_sub.add_parser(
        "gen",
        help="generate and save a trace file "
        "(also: 'trace <workload> ...' without the 'gen')",
    )
    trace_gen.add_argument("workload")
    trace_gen.add_argument("--input", default="ref")
    trace_gen.add_argument("-o", "--output", required=True)
    trace_gen.add_argument(
        "--compact",
        action="store_true",
        help="delta/varint format (3-4x smaller)",
    )
    trace_gen.add_argument(
        "--columnar",
        action="store_true",
        help="columnar binary format (.trcb; what the vectorized "
        "kernels consume)",
    )
    trace_gen.set_defaults(func=_cmd_trace)
    trace_convert = trace_sub.add_parser(
        "convert",
        help="read a trace in any format, write it in another",
    )
    trace_convert.add_argument("source")
    trace_convert.add_argument("destination")
    trace_convert.add_argument(
        "--format",
        choices=("columnar", "compact", "rows"),
        default="columnar",
        help="output format (default: columnar)",
    )
    trace_convert.set_defaults(func=_cmd_trace_convert)

    profile = sub.add_parser("profile", help="frequent value summary")
    profile.add_argument("workload")
    profile.add_argument("--input", default="ref")
    profile.set_defaults(func=_cmd_profile)

    profile_run = sub.add_parser(
        "profile-run",
        help="profile one experiment cell by cell and emit a "
        "flamegraph-compatible collapsed-stack file "
        "(see docs/OBSERVABILITY.md)",
    )
    profile_run.add_argument(
        "experiment", help="a decomposable experiment id, e.g. fig13"
    )
    profile_run.add_argument(
        "--fast", action="store_true", help="reduced configuration (tests)"
    )
    profile_run.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="collapsed-stack output path (default <experiment>.folded)",
    )
    profile_run.add_argument(
        "--weight",
        choices=("refs", "micros"),
        default="refs",
        help="stack weights: deterministic trace-reference counts "
        "('refs', default) or measured microseconds ('micros')",
    )
    profile_run.set_defaults(func=_cmd_profile_run)

    report = sub.add_parser("report", help="full S2-style FVL report")
    report.add_argument("workload")
    report.add_argument("--input", default="ref")
    report.add_argument(
        "--no-occurrence",
        action="store_true",
        help="skip the (slower) live-memory occurrence study",
    )
    report.set_defaults(func=_cmd_report)

    classify = sub.add_parser("classify", help="3C miss classification")
    classify.add_argument("workload")
    classify.add_argument("--input", default="ref")
    classify.add_argument("--size-kb", type=int, default=16)
    classify.add_argument("--line", type=int, default=32)
    classify.add_argument("--ways", type=int, default=1)
    classify.set_defaults(func=_cmd_classify)

    reuse = sub.add_parser("reuse", help="reuse-distance analysis")
    reuse.add_argument("workload")
    reuse.add_argument("--input", default="ref")
    reuse.add_argument("--line", type=int, default=32)
    reuse.add_argument("--size-kb", type=int, default=16)
    reuse.add_argument("--fvc", type=int, default=512)
    reuse.set_defaults(func=_cmd_reuse)

    simulate = sub.add_parser("simulate", help="simulate one configuration")
    simulate.add_argument("workload")
    simulate.add_argument("--input", default="ref")
    simulate.add_argument("--size-kb", type=int, default=16)
    simulate.add_argument("--line", type=int, default=32)
    simulate.add_argument("--fvc", type=int, default=0, help="FVC entries")
    simulate.add_argument("--top", type=int, default=7, choices=(1, 3, 7))
    simulate.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON document instead of text",
    )
    simulate.set_defaults(func=_cmd_simulate)

    serve = sub.add_parser(
        "serve",
        help="run the simulation service (HTTP JSON API, job queue, "
        "persistent result store); see docs/SERVICE.md",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8031)
    serve.add_argument(
        "--workers", type=int, default=2, metavar="K",
        help="simulation worker processes (default 2)",
    )
    serve.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-job wall-clock limit in seconds; 0 disables "
        "(default 600)",
    )
    serve.add_argument(
        "--retries", type=int, default=2,
        help="retries after a worker crash (default 2)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=256, metavar="N",
        help="pending-queue bound before submissions shed with 503 "
        "+ Retry-After; 0 disables the bound (default 256)",
    )
    serve.add_argument(
        "--store-dir", default=None,
        help="result-store directory (default "
        "$REPRO_RESULT_STORE_DIR or ~/.cache/repro-fvc/results)",
    )
    serve.add_argument(
        "--capacity", type=int, default=512,
        help="result-store entry capacity; at capacity, TinyLFU "
        "frequency admission decides what stays (default 512)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="S",
        help="cluster: seconds a granted cell lease stays valid before "
        "it is revoked and re-issued (default 30)",
    )
    serve.add_argument(
        "--worker-ttl", type=float, default=10.0, metavar="S",
        help="cluster: seconds a silent worker stays registered; "
        "workers heartbeat at a third of this (default 10)",
    )
    serve.add_argument(
        "--cluster-dispatchers", type=int, default=2, metavar="K",
        help="coordinator threads driving cluster-lane jobs (default 2)",
    )
    serve.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="control-plane durability: write-ahead journal + snapshot "
        "directory; a restarted coordinator recovers every accepted "
        "job from it (default: no journal)",
    )
    serve.add_argument(
        "--state-quota-bytes", type=int, default=0, metavar="N",
        help="byte budget over journal + snapshot; at the budget new "
        "submissions shed with 503 + Retry-After; 0 = unbounded "
        "(default)",
    )
    serve.set_defaults(func=_cmd_serve)

    journal = sub.add_parser(
        "journal",
        help="inspect or fsck a serve --state-dir write-ahead journal; "
        "see docs/ROBUSTNESS.md",
    )
    journal.add_argument(
        "action", choices=("info", "verify", "fsck"),
        help="info: replay read-only and summarise recoverable state; "
        "verify/fsck: envelope-check every record, quarantine a "
        "torn/corrupt tail and a corrupt snapshot (exit 1 when "
        "anything was quarantined)",
    )
    journal.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="the serve --state-dir to inspect",
    )
    journal.set_defaults(func=_cmd_journal)

    worker = sub.add_parser(
        "worker",
        help="run a thin cluster worker attached to a coordinator "
        "(registers, heartbeats, leases simulation cells over /v1); "
        "see docs/CLUSTER.md",
    )
    worker.add_argument(
        "--coordinator", required=True, metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8031",
    )
    worker.add_argument(
        "--name", default="worker",
        help="worker display name in GET /v1/workers (default 'worker')",
    )
    worker.add_argument(
        "--batch", type=int, default=2, metavar="N",
        help="cell leases pulled per request (default 2)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.5, metavar="S",
        help="idle re-poll interval in seconds (default 0.5)",
    )
    worker.add_argument(
        "--timeout", type=float, default=30.0, metavar="S",
        help="per-request HTTP timeout (default 30)",
    )
    worker.add_argument(
        "--max-cells", type=int, default=0, metavar="N",
        help="exit after N completed cells; 0 = unbounded (default)",
    )
    worker.add_argument(
        "--once", action="store_true",
        help="exit once the coordinator drains (after completing at "
        "least one cell); for tests and benchmarks",
    )
    worker.set_defaults(func=_cmd_worker)

    url_help = (
        "service URL (default $REPRO_SERVICE_URL or http://127.0.0.1:8031)"
    )
    submit = sub.add_parser(
        "submit",
        help="submit an experiment job (or a sweep/v1 spec file) to a "
        "running service",
    )
    submit.add_argument(
        "experiment",
        help="experiment id, e.g. fig10, or a sweep/v1 spec file (.json; "
        "posted to /v1/sweeps)",
    )
    submit.add_argument("--fast", action="store_true")
    submit.add_argument("--url", default=None, help=url_help)
    submit.add_argument(
        "--wait", action="store_true",
        help="block until done and print the result payload "
        "(byte-identical to `run --json`)",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="--wait poll limit in seconds (default 300)",
    )
    submit.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="client-side retries for transient failures (connection "
        "errors, 503 shedding) with jittered backoff; 0 disables "
        "(default 3)",
    )
    submit.set_defaults(func=_cmd_submit)

    sweep = sub.add_parser(
        "sweep",
        help="declarative sweep matrix: run, expand, report, list "
        "(sweep/v1; see docs/SWEEPS.md)",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_help = "catalogued sweep name (see 'sweep list') or spec file (JSON)"
    fast_help = (
        "use the catalogued sweep's reduced variant (spec files carry "
        "their own scale)"
    )
    jobs_help = (
        "worker processes for the distinct cells; payload bytes are "
        "identical for any value"
    )
    sweep_list = sweep_sub.add_parser(
        "list", help="list the catalogued sweeps"
    )
    sweep_list.set_defaults(func=_cmd_sweep_list)
    sweep_run = sweep_sub.add_parser(
        "run", help="run one sweep locally and print its report"
    )
    sweep_run.add_argument("sweep", help=sweep_help)
    sweep_run.add_argument("--fast", action="store_true", help=fast_help)
    sweep_run.add_argument(
        "--jobs", type=int, default=1, metavar="N", help=jobs_help
    )
    sweep_run.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical sweep.result/1 payload (byte-identical "
        "to what POST /v1/sweeps stores for the same spec)",
    )
    sweep_run.add_argument(
        "--csv", action="store_true", help="emit CSV instead of the table"
    )
    sweep_run.set_defaults(func=_cmd_sweep_run)
    sweep_expand = sweep_sub.add_parser(
        "expand",
        help="show a sweep's expansion (every point and its cell) "
        "without running anything",
    )
    sweep_expand.add_argument("sweep", help=sweep_help)
    sweep_expand.add_argument("--fast", action="store_true", help=fast_help)
    sweep_expand.set_defaults(func=_cmd_sweep_expand)
    sweep_report = sweep_sub.add_parser(
        "report",
        help="run one sweep and write its aggregated report",
    )
    sweep_report.add_argument("sweep", help=sweep_help)
    sweep_report.add_argument("--fast", action="store_true", help=fast_help)
    sweep_report.add_argument(
        "--jobs", type=int, default=1, metavar="N", help=jobs_help
    )
    sweep_report.add_argument(
        "--format",
        choices=("table", "csv", "html", "json"),
        default="csv",
        help="report format (default: csv)",
    )
    sweep_report.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    sweep_report.set_defaults(func=_cmd_sweep_report)

    status = sub.add_parser("status", help="show one service job")
    status.add_argument("job_id")
    status.add_argument("--url", default=None, help=url_help)
    status.set_defaults(func=_cmd_status)

    fetch = sub.add_parser(
        "fetch", help="fetch a stored result payload by key"
    )
    fetch.add_argument("key", help="result key (see job 'result_key')")
    fetch.add_argument("--url", default=None, help=url_help)
    fetch.set_defaults(func=_cmd_fetch)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    # Back-compat: 'trace <workload> ...' predates the gen/convert
    # split and keeps working as shorthand for 'trace gen <workload>'.
    if (
        len(argv) >= 2
        and argv[0] == "trace"
        and argv[1] not in ("gen", "convert", "-h", "--help")
    ):
        argv = [argv[0], "gen", *argv[1:]]
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: the
        # conventional quiet exit, not a traceback.  Point stdout at
        # devnull so interpreter shutdown does not re-raise on flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
