"""STAT001 — every incremented counter is declared (and thus reported).

The simulators communicate exclusively through counters:
:class:`repro.cache.stats.CacheStats` fields reach reports via
``as_dict()`` (which iterates ``__slots__``), and simulator-local
counters (``fvc_read_hits`` …) reach cell results via explicit
``extras``.  A counter incremented but never declared is either a typo
(``__slots__`` makes it a runtime crash on a path tests may not reach)
or a silently-unreported statistic.  This rule catches both statically:

* ``<anything>.stats.<name> += …`` / ``stats.<name> += …`` must name a
  ``CacheStats.__slots__`` field — declared there is reported there,
  because ``as_dict`` iterates the slots;
* ``self.<name> += …`` inside a class must have a matching
  ``self.<name> = …`` initialisation in that class's ``__init__`` (or a
  ``__slots__`` entry), so the counter exists from access zero and is
  visible to introspection.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.analysis.rules.base import Rule, SourceFile


def _declared_names(cls: ast.ClassDef) -> Set[str]:
    """Attributes a class declares: ``__slots__`` entries, class-level
    assignments, and ``self.X = …`` / ``self.X: T = …`` in ``__init__``."""
    declared: Set[str] = set()
    for item in cls.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__slots__":
                        for element in ast.walk(item.value):
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                declared.add(element.value)
                    else:
                        declared.add(target.id)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            declared.add(item.target.id)
        elif (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "__init__"
        ):
            for node in ast.walk(item):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        declared.add(target.attr)
    return declared


def _is_stats_object(node: ast.AST) -> bool:
    """Heuristic for "this expression is a CacheStats": a name or
    attribute spelled ``stats`` (the codebase's universal convention)."""
    if isinstance(node, ast.Name):
        return node.id == "stats"
    if isinstance(node, ast.Attribute):
        return node.attr == "stats"
    return False


class CountersDeclaredAndReported(Rule):
    code = "STAT001"
    title = "incremented counters are declared (and therefore reported)"
    include = ("repro/cache/", "repro/fvc/")
    # CacheStats itself is the declaration site.
    exclude = ("repro/cache/stats.py",)

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        # The authoritative declared-and-reported set: as_dict() iterates
        # __slots__, so membership there is both declarations at once.
        from repro.cache.stats import CacheStats

        slots = set(CacheStats.__slots__)

        for cls in (
            node
            for node in source_file.tree.body
            if isinstance(node, ast.ClassDef)
        ):
            declared = _declared_names(cls)
            for node in ast.walk(cls):
                if not isinstance(node, ast.AugAssign):
                    continue
                target = node.target
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                if isinstance(base, ast.Name) and base.id == "self":
                    if target.attr not in declared:
                        yield node.lineno, (
                            f"counter self.{target.attr} is incremented "
                            f"but never initialised in {cls.name}."
                            "__init__ — undeclared counters are "
                            "invisible to reporting"
                        )
                elif _is_stats_object(base):
                    if target.attr not in slots:
                        yield node.lineno, (
                            f"counter {target.attr!r} is not declared in "
                            "CacheStats.__slots__, so as_dict() would "
                            "never report it (and the increment raises "
                            "AttributeError at runtime)"
                        )
