"""COV — catalog-coverage rules closing the loop OBS001/FLT001 opened.

FLT001 proves hardened IO paths consult :func:`fault_point`; OBS001
proves registry calls use catalogued metric names.  Neither proves the
catalogs themselves are *live*: a fault site nobody injects is an
untested defence, and a catalogued metric nobody emits is documentation
of a counter that does not exist.  These rules walk the catalogs:

* **COV001** — every site in ``repro/faults/sites.py``'s
  ``SITE_CATALOG`` must be exercised by at least one test under the
  repo's ``tests/`` tree (named in a fault plan string, an env
  ``REPRO_FAULTS`` value, or a direct ``fault_point`` call).  Matching
  is textual with a boundary guard, so ``trace_cache.write`` is not
  credited by ``trace_cache.write.publish``.
* **COV002** — every name in ``repro/obs/names.py``'s
  ``METRIC_NAMES`` must appear as a string literal somewhere else in
  the linted tree (the emission or serving site).  The converse —
  an emission using an uncatalogued name — is already OBS001.

Both rules key off the catalog files and skip silently when they are
absent from the linted set (linting a subtree or a fixture cannot
manufacture coverage findings); COV001 additionally skips when no
``tests/`` directory exists next to ``src/`` (a copied source tree).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.rules.base import ProjectRule, SourceFile


def _find_file(
    files: Sequence[SourceFile], suffix: str
) -> Optional[SourceFile]:
    for source_file in files:
        if source_file.relpath.endswith(suffix):
            return source_file
    return None


def _repo_tests_dir(source_file: SourceFile) -> Optional[Path]:
    """``tests/`` next to the ``src/`` tree containing ``source_file``."""
    parts = source_file.path.resolve().parts
    for index in range(len(parts) - 1, 0, -1):
        if parts[index] == "src":
            tests = Path(*parts[:index]) / "tests"
            return tests if tests.is_dir() else None
    return None


class FaultSitesExercised(ProjectRule):
    """COV001: every catalogued fault site is exercised by a test."""

    code = "COV001"
    title = "fault site catalogued but exercised by no test"

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        catalog_file = _find_file(files, "repro/faults/sites.py")
        if catalog_file is None:
            return
        tests_dir = _repo_tests_dir(catalog_file)
        if tests_dir is None:
            return
        corpus: List[str] = []
        for path in sorted(tests_dir.rglob("*.py")):
            try:
                corpus.append(path.read_text(encoding="utf-8"))
            except OSError:
                continue
        text = "\n".join(corpus)
        for name, line in self._sites(catalog_file):
            pattern = re.compile(
                r"(?<![\w.])" + re.escape(name) + r"(?![\w.])"
            )
            if pattern.search(text) is None:
                yield (
                    catalog_file,
                    line,
                    f"fault site '{name}' is catalogued here but no test "
                    "under tests/ exercises it — add an injection test "
                    "or retire the site",
                )

    @staticmethod
    def _sites(catalog_file: SourceFile) -> List[Tuple[str, int]]:
        sites: List[Tuple[str, int]] = []
        for node in ast.walk(catalog_file.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Site"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                sites.append((node.args[0].value, node.lineno))
        return sites


class MetricNamesEmitted(ProjectRule):
    """COV002: every catalogued metric name is emitted somewhere."""

    code = "COV002"
    title = "metric name catalogued but never emitted in the linted tree"

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        catalog_file = _find_file(files, "repro/obs/names.py")
        if catalog_file is None:
            return
        emitted: Dict[str, bool] = {}
        names = self._names(catalog_file)
        if not names:
            return
        wanted = {name for name, _line in names}
        for source_file in files:
            if source_file is catalog_file:
                continue
            for node in ast.walk(source_file.tree):
                if (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and node.value in wanted
                ):
                    emitted[node.value] = True
        for name, line in names:
            if not emitted.get(name):
                yield (
                    catalog_file,
                    line,
                    f"metric '{name}' is catalogued here but never "
                    "emitted anywhere in the linted tree — wire it up "
                    "or retire the name",
                )

    @staticmethod
    def _names(catalog_file: SourceFile) -> List[Tuple[str, int]]:
        for node in catalog_file.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == "METRIC_NAMES"
                for target in targets
            ):
                continue
            value = node.value
            if value is None:
                continue
            names: List[Tuple[str, int]] = []
            for sub in ast.walk(value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    names.append((sub.value, sub.lineno))
            return names
        return []
