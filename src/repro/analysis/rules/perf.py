"""PERF001 — kernels must not loop over per-record data in Python.

The whole point of :mod:`repro.kernels` is that the numpy backend
replays traces as columnar array operations; a ``for`` statement that
walks a per-record sequence element-by-element silently reintroduces
the per-record Python dispatch the backend exists to remove, and no
test catches it — results stay identical, only the speedup evaporates.

The static proxy: inside ``repro/kernels/``, flag any ``for``
*statement* whose iterable mentions a per-record sequence — the
``records`` attribute, a ``*_list`` identifier (the kernels' naming
convention for plain-list mirrors of trace-length arrays), or a
``.tolist()`` call.  Loops over *event* streams (misses, flagged runs,
committed windows — orders of magnitude smaller than the trace) are the
sanctioned exception and must say so with a justified
``# repro: allow[PERF001] <why>`` suppression.

Generator expressions and comprehensions are exempt: feeding
``np.fromiter`` a per-record generator *is* the columnar ingestion
path, consumed inside numpy rather than dispatched per element in the
interpreter loop.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.rules.base import Rule, SourceFile


def _mentions_per_record_sequence(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and (
            sub.id == "records" or sub.id.endswith("_list")
        ):
            return True
        if isinstance(sub, ast.Attribute) and (
            sub.attr == "records" or sub.attr.endswith("_list")
        ):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "tolist"
        ):
            return True
    return False


class NoPerRecordKernelLoops(Rule):
    code = "PERF001"
    title = "kernel code must not iterate per-record data in Python"
    include = ("repro/kernels/",)

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.For):
                continue
            if _mentions_per_record_sequence(node.iter):
                yield node.lineno, (
                    "for-loop over a per-record sequence in kernel code — "
                    "vectorize it, or justify a bounded event-stream loop "
                    "with '# repro: allow[PERF001] <why>'"
                )
