"""OBS001 — metric names are literal, snake_case and registered.

The observability contract (:mod:`repro.obs.names`) is that every
metric the codebase records appears once in the catalog: that is what
makes ``/v1/metrics`` a stable versioned surface instead of a grab-bag
of ad-hoc keys, and what lets docs and dashboards enumerate the
complete set.  The registry API (``registry.counter(name)`` and
friends) get-or-creates by name, so a typo'd or unregistered name
silently mints a new metric — visible only to whoever diffs the
exposition output.  This rule catches it statically instead:

* the name argument must be a **string literal** (a variable would hide
  the name from this check and from ``grep``);
* the literal must be well-formed snake_case
  (:func:`repro.obs.names.is_metric_name`);
* the literal must be a member of
  :data:`repro.obs.names.METRIC_NAMES`.

``repro/obs/`` itself is excluded: the registry implementation and its
helpers legitimately handle names as variables.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.rules.base import Rule, SourceFile

#: Registry methods whose first argument is a metric name.
_REGISTRY_METHODS = ("counter", "gauge", "histogram")


class RegisteredMetricNames(Rule):
    code = "OBS001"
    title = "metric names are literal, snake_case, and catalogued"
    # The registry implementation handles names as variables by design.
    exclude = ("repro/obs/",)

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        # Imported here, not at module top: the linter must be able to
        # load even when repro.obs is mid-refactor; and the catalog is
        # the runtime's, so rule and registry can never drift.
        from repro.obs.names import METRIC_NAMES, is_metric_name

        for node in ast.walk(source_file.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _REGISTRY_METHODS
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                yield node.lineno, (
                    f".{node.func.attr}() called with a non-literal metric "
                    "name — spell the name as a string literal so OBS001 "
                    "(and grep) can see it"
                )
                continue
            name = first.value
            if not is_metric_name(name):
                yield node.lineno, (
                    f"metric name {name!r} is not snake_case "
                    "([a-z][a-z0-9_]*, max 64 chars)"
                )
            elif name not in METRIC_NAMES:
                yield node.lineno, (
                    f"metric name {name!r} is not registered in "
                    "repro.obs.names.METRIC_NAMES — add it to the catalog "
                    "(and docs/OBSERVABILITY.md) or fix the typo"
                )
