"""API001 — service code serialises only through the canonical encoders.

A served result is promised byte-identical to ``repro-fvc run --json``.
That holds because exactly one module — ``repro.experiments.render`` —
decides how JSON is spelled (key order, separators, trailing newline).
An ad-hoc ``json.dumps`` anywhere in ``repro/service/`` reintroduces a
second spelling that drifts independently, so it is banned outright:
use :func:`repro.experiments.render.dumps_canonical` (pretty payload
form), :func:`~repro.experiments.render.dumps_compact` (hashing form)
or :func:`~repro.experiments.render.dumps_line` (HTTP envelope form).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.rules.base import Rule, SourceFile, dotted_name

_BANNED_CALLS = ("json.dumps", "json.dump")


class CanonicalJsonOnly(Rule):
    code = "API001"
    title = "service serialisation must use the canonical JSON encoders"
    include = ("repro/service/",)

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        for node in ast.walk(source_file.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in _BANNED_CALLS:
                    yield node.lineno, (
                        f"ad-hoc {dotted}() in service code; serialise "
                        "through repro.experiments.render "
                        "(dumps_canonical / dumps_compact / dumps_line) "
                        "so payload bytes stay canonical"
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "json":
                names = {alias.name for alias in node.names}
                banned = sorted(names & {"dump", "dumps"})
                if banned:
                    yield node.lineno, (
                        f"importing {', '.join(banned)} from json invites "
                        "ad-hoc serialisation; use the canonical encoders "
                        "in repro.experiments.render"
                    )
