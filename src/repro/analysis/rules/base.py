"""Rule plumbing shared by every lint rule.

A rule sees one parsed file at a time (:class:`Rule`) or the whole file
set at once (:class:`ProjectRule`, for cross-file consistency checks
like registry coverage).  Scoping is by package-relative path prefix:
``repro/fvc/`` matches the FVC subsystem wherever the tree is checked
out, and individual files (``repro/cli.py``) can be named exactly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple


@dataclass
class SourceFile:
    """One parsed Python file as the rules see it."""

    path: Path
    #: Package-relative posix path, e.g. ``repro/fvc/cache.py`` — what
    #: rule scopes match against.
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


def package_relpath(path: Path) -> str:
    """``path`` relative to the innermost enclosing ``repro`` directory.

    Files outside any ``repro`` directory are treated as top-level
    package files (``repro/<name>``), so package-wide rules still apply
    when linting a stray script.
    """
    parts = path.parts
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return f"repro/{path.name}"


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


class Rule:
    """One lint rule: a code, a scope, and a per-file check.

    Findings are yielded as ``(line, message)`` pairs; the linter
    prefixes the file, applies suppressions and sorts the output.
    """

    #: Stable identifier, e.g. ``"DET001"`` — what suppression comments
    #: ("repro: allow[<code>]") and ``--select`` name.
    code: str = ""
    #: One-line summary for ``--list-rules``.
    title: str = ""
    #: Path prefixes the rule applies to (package-relative).
    include: Tuple[str, ...] = ("repro/",)
    #: Path prefixes exempted from the rule, checked after ``include``.
    exclude: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule checks the file at ``relpath``."""
        if not any(relpath.startswith(prefix) for prefix in self.include):
            return False
        return not any(relpath.startswith(prefix) for prefix in self.exclude)

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        """Yield ``(line, message)`` findings for one file."""
        raise NotImplementedError

    def scope_description(self) -> str:
        """Human-readable scope for ``--list-rules``."""
        parts = [", ".join(self.include)]
        if self.exclude:
            parts.append(f"except {', '.join(self.exclude)}")
        return " ".join(parts)


class ProjectRule(Rule):
    """A rule that needs the whole lint set at once (cross-file
    consistency).  ``check`` is never called; the linter calls
    :meth:`check_project` with every collected file."""

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        return iter(())

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        """Yield ``(file, line, message)`` findings across the set."""
        raise NotImplementedError
