"""CONC — lock-discipline rules over the threaded modules.

Built on :mod:`repro.analysis.model`: the analyzer knows which
functions run on which threads (thread roots), which locks are held at
every attribute write and call site (including caller-held entry
locks), and which calls can block.  Three rules fall out:

* **CONC001** — a shared mutable attribute is written from two or more
  concurrent contexts and at least one write holds no lock.  A *multi*
  root (a worker pool loop, an HTTP handler) counts as two contexts by
  itself: the pool races with its own clones.
* **CONC002** — an attribute's guarded writes disagree about *which*
  lock guards it: two writes hold disjoint lock sets, so the guard is
  an illusion (each writer excludes only its own kind).
* **CONC003** — a lock is held across a blocking call: sleep,
  subprocess, socket or file IO, directly or through a helper that
  transitively reaches one.  Holding a hot lock across IO turns every
  other thread's bounded critical section into an unbounded one.

Approximations (see docs/ANALYSIS.md for the full list): attribute
writes are tracked through ``self`` and annotated parameters only —
chained attribute paths (``a.b.c = x``) and dict values are invisible;
the call graph has no aliasing or dynamic dispatch, so untyped
indirection fails towards silence, not noise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.analysis.rules.base import ProjectRule, SourceFile

if TYPE_CHECKING:  # runtime import is deferred: model imports this package
    from repro.analysis.model import AttrWrite, LockId, ProjectModel


def _lock_name(lock: LockId) -> str:
    owner, attr = lock
    return f"{owner.split('.')[-1]}.{attr}"


def _locks_name(locks: FrozenSet[LockId]) -> str:
    return ", ".join(sorted(_lock_name(lock) for lock in locks))


def _short(qualname: str) -> str:
    return ".".join(qualname.split(".")[-2:])


class _ConcRule(ProjectRule):
    """Shared plumbing: build the model, map findings back to files."""

    def _file_for(
        self, model: ProjectModel, function: str, files: Sequence[SourceFile]
    ) -> SourceFile:
        return model.function_files.get(function, files[0])


class SharedWriteWithoutLock(_ConcRule):
    """CONC001: concurrent attribute write with no lock held."""

    code = "CONC001"
    title = (
        "shared attribute written from concurrent thread contexts "
        "with no lock held"
    )

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        from repro.analysis.model import get_model, iter_shared_writes

        model = get_model(files)
        for (owner, attr), writes in iter_shared_writes(model):
            roots = {}
            for write in writes:
                for root in model.root_contexts(write.function):
                    existing = roots.get(root.qualname)
                    if existing is None or (root.multi and not existing):
                        roots[root.qualname] = root.multi
            degree = sum(2 if multi else 1 for multi in roots.values())
            if degree < 2:
                continue
            root_names = ", ".join(
                _short(name) + ("[xN]" if multi else "")
                for name, multi in sorted(roots.items())
            )
            for write in writes:
                held = model.effective_locks(write.function, write.locks)
                if held:
                    continue
                yield (
                    self._file_for(model, write.function, files),
                    write.line,
                    f"'{_short(owner)}.{attr}' is written here without a "
                    f"lock but is reachable from {degree} concurrent "
                    f"contexts ({root_names}); guard the write or make "
                    "the attribute thread-local",
                )


class InconsistentLockForAttribute(_ConcRule):
    """CONC002: the same attribute is guarded by disjoint locks."""

    code = "CONC002"
    title = "attribute guarded by different locks on different write paths"

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        from repro.analysis.model import get_model, iter_shared_writes

        model = get_model(files)
        for (owner, attr), writes in iter_shared_writes(model):
            guarded: List[Tuple[AttrWrite, FrozenSet[LockId]]] = []
            for write in writes:
                held = model.effective_locks(write.function, write.locks)
                if held:
                    guarded.append((write, held))
            if len(guarded) < 2:
                continue
            common = guarded[0][1]
            for _write, held in guarded[1:]:
                common = common & held
            if common:
                continue  # one lock covers every write
            first_write, first_locks = guarded[0]
            seen_sets: Set[FrozenSet[LockId]] = {first_locks}
            for write, held in guarded[1:]:
                if held in seen_sets:
                    continue
                seen_sets.add(held)
                yield (
                    self._file_for(model, write.function, files),
                    write.line,
                    f"'{_short(owner)}.{attr}' is guarded by "
                    f"{{{_locks_name(held)}}} here but by "
                    f"{{{_locks_name(first_locks)}}} at "
                    f"{_short(first_write.function)}:{first_write.line} — "
                    "no common lock, so the writes do not exclude each "
                    "other",
                )


class LockHeldAcrossBlockingCall(_ConcRule):
    """CONC003: a lock is held across a blocking call."""

    code = "CONC003"
    title = "lock held across a blocking call (sleep/subprocess/socket/IO)"

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        from repro.analysis.model import get_model

        model = get_model(files)
        for qualname in sorted(model.functions):
            info = model.functions[qualname]
            reported: Dict[int, str] = {}
            for blocking in info.blocking:
                if blocking.locks and blocking.line not in reported:
                    reported[blocking.line] = (
                        f"{_locks_name(blocking.locks)} held across blocking "
                        f"call {blocking.desc} — move the IO outside the "
                        "critical section"
                    )
            for site in info.calls:
                if not site.locks or site.callee is None:
                    continue
                callee = model.functions.get(site.callee)
                if callee is None or not callee.blocks:
                    continue
                if site.line not in reported:
                    reported[site.line] = (
                        f"{_locks_name(site.locks)} held across call to "
                        f"{_short(site.callee)}, which can block "
                        f"({callee.blocks_why}) — move the call outside "
                        "the critical section"
                    )
            source_file = model.function_files.get(qualname)
            if source_file is None:
                continue
            for line in sorted(reported):
                yield source_file, line, reported[line]
