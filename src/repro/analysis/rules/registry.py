"""REG001 — the experiment registry and the experiment modules agree.

Every ``repro/experiments/fig*.py`` / ``table*.py`` module must be
imported by ``repro/experiments/registry.py`` and every imported
experiment class must actually be instantiated into ``EXPERIMENTS`` —
otherwise ``repro-fvc run all``, the service's spec validation and the
docs silently drift from the code.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.analysis.rules.base import ProjectRule, SourceFile

_REGISTRY = "repro/experiments/registry.py"
_MODULE_PREFIXES = ("fig", "table")


class RegistryConsistency(ProjectRule):
    """Cross-file check over ``repro/experiments/``.

    Three findings, each anchored where the fix goes:

    * an experiment module the registry never imports (anchored at the
      module's first line);
    * a registry import of a ``fig*``/``table*`` module with no file
      behind it (anchored at the import);
    * an experiment class imported but never referenced — i.e. not
      registered into ``EXPERIMENTS`` (anchored at the import).
    """

    code = "REG001"
    title = "experiments registry covers every fig*/table* module"
    include = ("repro/experiments/",)

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        by_relpath = {f.relpath: f for f in files}
        registry = by_relpath.get(_REGISTRY)
        if registry is None:
            return  # registry not in the lint set: nothing to cross-check

        modules: Dict[str, SourceFile] = {}
        for f in files:
            if not f.relpath.startswith("repro/experiments/"):
                continue
            stem = PurePosixPath(f.relpath).stem
            if stem.startswith(_MODULE_PREFIXES):
                modules[stem] = f

        imports: Dict[str, Tuple[int, List[str]]] = {}
        referenced = set()
        for node in ast.walk(registry.tree):
            if isinstance(node, ast.ImportFrom):
                parts = (node.module or "").split(".")
                if parts[:2] == ["repro", "experiments"] and len(parts) == 3:
                    imports[parts[2]] = (
                        node.lineno,
                        [alias.asname or alias.name for alias in node.names],
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                referenced.add(node.id)

        for stem in sorted(modules):
            if stem not in imports:
                yield modules[stem], 1, (
                    f"experiment module repro/experiments/{stem}.py is "
                    "never imported by experiments/registry.py"
                )
        if modules:
            # Only meaningful when experiment files are in the lint set;
            # otherwise every import would look like a missing file.
            for stem in sorted(imports):
                lineno, _names = imports[stem]
                if stem.startswith(_MODULE_PREFIXES) and stem not in modules:
                    yield registry, lineno, (
                        f"registry imports repro.experiments.{stem} but "
                        "no such experiment module exists"
                    )
        for stem in sorted(imports):
            lineno, names = imports[stem]
            for name in names:
                if name not in referenced:
                    yield registry, lineno, (
                        f"{name} is imported from repro.experiments."
                        f"{stem} but never registered in EXPERIMENTS"
                    )
