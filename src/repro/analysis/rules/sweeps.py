"""SWEEP — declarative-sweep backing of the experiment registry.

The sweep catalog (:mod:`repro.sweeps.catalog`) is the declarative
source of truth for every paper study: each ``fig*``/``table*``
experiment in the registry must be expressed there as a ``sweep/v1``
spec with non-empty reportable fields, so the study's parameter space
and report shape are inspectable without running (or even importing)
the experiment.  An experiment that exists only imperatively is
invisible to ``repro-fvc sweep list``, ``/v1/sweeps`` and the
aggregation layer.

* **SWEEP001** — every class-level ``experiment_id = "fig*" | "table*"``
  declared under ``repro/experiments/`` must be backed by a catalog
  entry (a ``_BUILDERS`` key or a ``WRAPPER_FIELDS`` key) whose report
  declares at least one field.

The audit is static: builder functions are credited when their body
contains a ``"report"`` dict literal with a non-empty ``"fields"``
list; wrapper entries are credited by their ``WRAPPER_FIELDS`` list.
The rule skips silently when the experiment registry or the sweep
catalog is absent from the linted set (linting a subtree cannot
manufacture coverage findings).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.rules.base import ProjectRule, SourceFile

_REGISTRY_SUFFIX = "repro/experiments/registry.py"
_CATALOG_SUFFIX = "repro/sweeps/catalog.py"


def _find_file(
    files: Sequence[SourceFile], suffix: str
) -> Optional[SourceFile]:
    for source_file in files:
        if source_file.relpath.endswith(suffix):
            return source_file
    return None


def _gated_ids(
    files: Sequence[SourceFile],
) -> List[Tuple[str, SourceFile, int]]:
    """Every ``experiment_id = "fig*"|"table*"`` class attribute under
    ``repro/experiments/``, with its declaration site."""
    found: List[Tuple[str, SourceFile, int]] = []
    for source_file in files:
        if not source_file.relpath.startswith("repro/experiments/"):
            continue
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in node.body:
                if (
                    isinstance(statement, ast.Assign)
                    and len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Name)
                    and statement.targets[0].id == "experiment_id"
                    and isinstance(statement.value, ast.Constant)
                    and isinstance(statement.value.value, str)
                    and statement.value.value.startswith(("fig", "table"))
                ):
                    found.append(
                        (statement.value.value, source_file, statement.lineno)
                    )
    return sorted(found, key=lambda item: (item[0], item[1].relpath))


def _dict_literal(
    tree: ast.Module, name: str
) -> Optional[ast.Dict]:
    """The dict literal assigned to module-level ``name``, if any."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == name
            for target in targets
        ):
            continue
        if isinstance(node.value, ast.Dict):
            return node.value
    return None


def _builder_declares_fields(catalog: SourceFile) -> Dict[str, bool]:
    """function name -> whether its body declares a ``"report"`` dict
    with a non-empty ``"fields"`` list."""
    declares: Dict[str, bool] = {}
    for node in catalog.tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        ok = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Dict):
                continue
            for key, value in zip(sub.keys, sub.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "fields"
                    and isinstance(value, (ast.List, ast.ListComp))
                    and (
                        isinstance(value, ast.ListComp) or len(value.elts) > 0
                    )
                ):
                    ok = True
        declares[node.name] = ok
    return declares


class SweepBackedExperiments(ProjectRule):
    """SWEEP001: fig*/table* experiments must be catalogued sweeps."""

    code = "SWEEP001"
    title = "fig*/table* experiment not backed by a sweep spec with fields"

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        registry = _find_file(files, _REGISTRY_SUFFIX)
        catalog = _find_file(files, _CATALOG_SUFFIX)
        if registry is None or catalog is None:
            return
        declares = _builder_declares_fields(catalog)
        backed: Dict[str, bool] = {}
        builders = _dict_literal(catalog.tree, "_BUILDERS")
        if builders is not None:
            for key, value in zip(builders.keys, builders.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    credited = isinstance(
                        value, ast.Name
                    ) and declares.get(value.id, False)
                    backed[key.value] = credited
        wrapper_fields = _dict_literal(catalog.tree, "WRAPPER_FIELDS")
        if wrapper_fields is not None:
            for key, value in zip(wrapper_fields.keys, wrapper_fields.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    backed[key.value] = (
                        isinstance(value, ast.List) and len(value.elts) > 0
                    )
        for experiment_id, source_file, line in _gated_ids(files):
            status = backed.get(experiment_id)
            if status is None:
                yield (
                    source_file,
                    line,
                    f"experiment '{experiment_id}' is not backed by a "
                    "sweep spec — add it to repro/sweeps/catalog.py "
                    "(_BUILDERS or WRAPPER_FIELDS) with reportable fields",
                )
            elif not status:
                yield (
                    catalog,
                    1,
                    f"catalogued sweep '{experiment_id}' declares no "
                    "report fields — a study without reportable fields "
                    "cannot be aggregated",
                )
