"""The rule registry: every lint rule the framework runs by default.

Adding a rule = writing a :class:`~repro.analysis.rules.base.Rule` (or
:class:`~repro.analysis.rules.base.ProjectRule`) subclass and listing an
instance here.  Codes are grouped by family:

======== ==========================================================
DET0xx   determinism (randomness, ordering, wall clock)
REG0xx   registration/coverage consistency
API0xx   canonical serialisation
STAT0xx  statistics declaration/reporting
FLT0xx   fault-injection coverage of hardened IO paths
OBS0xx   observability (metric-name catalog discipline)
PERF0xx  performance (vectorized-kernel discipline)
CONC0xx  whole-program lock discipline (repro.analysis.model)
PROTO0xx /v1 protocol conformance (server vs clients vs docs)
COV0xx   catalog liveness (fault sites tested, metrics emitted)
SWEEP0xx declarative-sweep backing of the experiment registry
======== ==========================================================
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.rules.api import CanonicalJsonOnly
from repro.analysis.rules.base import ProjectRule, Rule, SourceFile
from repro.analysis.rules.conc import (
    InconsistentLockForAttribute,
    LockHeldAcrossBlockingCall,
    SharedWriteWithoutLock,
)
from repro.analysis.rules.coverage import FaultSitesExercised, MetricNamesEmitted
from repro.analysis.rules.determinism import (
    NoAdHocRandomness,
    NoUnorderedIteration,
    NoWallClock,
)
from repro.analysis.rules.faults import FaultPointCoverage
from repro.analysis.rules.obs import RegisteredMetricNames
from repro.analysis.rules.perf import NoPerRecordKernelLoops
from repro.analysis.rules.proto import ClientCallsUnknownRoute, RouteContractDrift
from repro.analysis.rules.registry import RegistryConsistency
from repro.analysis.rules.stats import CountersDeclaredAndReported
from repro.analysis.rules.sweeps import SweepBackedExperiments

#: Default rule set, code order.
ALL_RULES: Tuple[Rule, ...] = (
    NoAdHocRandomness(),
    NoUnorderedIteration(),
    NoWallClock(),
    RegistryConsistency(),
    CanonicalJsonOnly(),
    CountersDeclaredAndReported(),
    FaultPointCoverage(),
    RegisteredMetricNames(),
    NoPerRecordKernelLoops(),
    SharedWriteWithoutLock(),
    InconsistentLockForAttribute(),
    LockHeldAcrossBlockingCall(),
    ClientCallsUnknownRoute(),
    RouteContractDrift(),
    FaultSitesExercised(),
    MetricNamesEmitted(),
    SweepBackedExperiments(),
)

__all__ = [
    "ALL_RULES",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "CanonicalJsonOnly",
    "ClientCallsUnknownRoute",
    "CountersDeclaredAndReported",
    "FaultPointCoverage",
    "FaultSitesExercised",
    "InconsistentLockForAttribute",
    "LockHeldAcrossBlockingCall",
    "MetricNamesEmitted",
    "NoAdHocRandomness",
    "NoPerRecordKernelLoops",
    "NoUnorderedIteration",
    "NoWallClock",
    "RegisteredMetricNames",
    "RegistryConsistency",
    "RouteContractDrift",
    "SharedWriteWithoutLock",
    "SweepBackedExperiments",
]
