"""DET rules: the constructs that silently break bit-reproducibility.

The whole reproduction promises that any run — sequential, ``--jobs N``,
or served — produces identical bytes.  Three classes of Python idiom
break that promise without failing a single test:

* ad-hoc randomness (``random``, ``os.urandom``, ``uuid``) seeded from
  process state rather than :func:`repro.common.rng.make_rng`;
* ``id()``-keyed tables and iteration over unordered ``set``s, whose
  order varies with allocation history and hash seeding;
* wall-clock reads feeding values into results.

Each rule below rejects one class, scoped to the paths where it can do
damage.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.rules.base import Rule, SourceFile, dotted_name


class NoAdHocRandomness(Rule):
    """DET001 — randomness must flow through ``repro.common.rng``.

    ``random.random()`` at module scope, ``os.urandom`` and
    ``uuid.uuid4`` all draw from process-wide or OS entropy, so two runs
    of the same command diverge.  ``repro.common.rng.make_rng`` derives
    a private, stably seeded generator per consumer instead.
    """

    code = "DET001"
    title = "randomness outside repro.common.rng"
    # The seeded-RNG helper is the one permitted consumer of `random`.
    exclude = ("repro/common/rng.py",)

    _MODULES = ("random", "secrets")
    _CALLS = ("os.urandom", "uuid.uuid1", "uuid.uuid4")

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        for node in ast.walk(source_file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in self._MODULES:
                        yield node.lineno, (
                            f"import of {alias.name!r}: use "
                            "repro.common.rng.make_rng so every stream "
                            "is stably seeded"
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] in self._MODULES:
                    yield node.lineno, (
                        f"import from {node.module!r}: use "
                        "repro.common.rng.make_rng so every stream is "
                        "stably seeded"
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                if dotted.split(".")[0] in self._MODULES or dotted in self._CALLS:
                    yield node.lineno, (
                        f"{dotted}() draws unseeded entropy; derive a "
                        "generator with repro.common.rng.make_rng instead"
                    )


class NoUnorderedIteration(Rule):
    """DET002 — no ``id()`` keys or unordered-``set`` iteration in
    simulation paths.

    ``id()`` values are recycled addresses: an ``id()``-keyed memo can
    hand one object another's cached result, and its iteration order
    varies run to run.  Iterating a ``set`` (or materialising one with
    ``list``/``tuple``/``enumerate``) visits elements in hash order,
    which differs across interpreters and processes — fatal when the
    loop body updates simulator state.  Membership tests and
    ``sorted(set(...))`` are fine and are not flagged.
    """

    code = "DET002"
    title = "id() keys / unordered-set iteration in simulation paths"
    include = (
        "repro/cache/",
        "repro/fvc/",
        "repro/trace/",
        "repro/workloads/",
        "repro/engine/",
    )

    #: Wrappers that freeze a set's (arbitrary) order into results.
    _ORDER_FREEZERS = ("list", "tuple", "enumerate", "iter")

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        for node in ast.walk(source_file.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "id":
                    yield node.lineno, (
                        "id()-derived keys are recycled addresses that "
                        "vary between runs; key by content (or memoise "
                        "on the object, as Trace.memo does)"
                    )
                elif (
                    node.func.id in self._ORDER_FREEZERS
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield node.lineno, (
                        f"{node.func.id}() over an unordered set freezes "
                        "hash order into results; sort first "
                        "(sorted(...)) or keep a list"
                    )
            elif isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield node.iter.lineno, (
                    "iteration over an unordered set visits elements in "
                    "hash order; sort first (sorted(...)) or keep a list"
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        yield generator.iter.lineno, (
                            "comprehension over an unordered set visits "
                            "elements in hash order; sort first "
                            "(sorted(...)) or keep a list"
                        )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class NoWallClock(Rule):
    """DET003 — no wall-clock reads in result-producing code.

    ``time.time()`` is not monotonic (NTP steps it backwards) and its
    value differs every run, so anything derived from it poisons
    byte-identical results.  Monotonic clocks (``time.monotonic``,
    ``time.perf_counter``) are allowed everywhere — they never feed
    results, only measurements.
    """

    code = "DET003"
    title = "wall-clock reads in result-producing code"
    # Per-path allowlist.  These paths may read the wall clock because
    # nothing they stamp can reach a result payload:
    exclude = (
        # Service job records carry wall-clock created/started/finished
        # timestamps — operational metadata for API clients (uptime in
        # /v1/metrics, job age in /v1/jobs).  Result payloads and result
        # keys are computed exclusively from the normalised spec and the
        # simulation output (service/api.py), so these timestamps can
        # never leak into stored results.  (The CLI is *not* exempt: its
        # elapsed-time UX lines use time.perf_counter, which is
        # monotonic and allowed everywhere.)
        "repro/service/",
    )

    _WALL_CLOCK = (
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    )

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        for node in ast.walk(source_file.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in self._WALL_CLOCK:
                    yield node.lineno, (
                        f"{dotted}() reads the wall clock; results must "
                        "be functions of the trace alone (use "
                        "time.perf_counter for measurements)"
                    )
