"""FLT rules: fault-injection coverage of hardened IO paths.

The robustness layer (``docs/ROBUSTNESS.md``) guarantees that every
byte the simulator persists or reloads can be failed on demand: each
durable-store read/write threads a named injection site
(:func:`repro.faults.sites.fault_point`) so the chaos suite can prove
the corruption/crash handling around it.  That guarantee is structural
— it holds only while the hardened modules keep routing their IO
through the enveloped helpers.  FLT001 pins the structure down.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.rules.base import Rule, SourceFile, dotted_name


class FaultPointCoverage(Rule):
    """FLT001 — direct payload IO in hardened modules must co-occur
    with a fault point.

    In the integrity-checked stores (trace cache, result store,
    checkpoint records) and the envelope helpers themselves, any
    function that opens, reads or writes payload files directly must
    also consult :func:`repro.faults.sites.fault_point` (directly, or
    via ``read_enveloped``/``write_enveloped``, which do).  Otherwise
    the IO is invisible to fault plans: the chaos suite can no longer
    provoke — and therefore no longer proves — the failure handling
    around it.  Route payload bytes through
    :mod:`repro.common.integrity`, or call ``fault_point`` beside the
    raw IO.
    """

    code = "FLT001"
    title = "payload IO without a fault point in hardened modules"
    #: The modules whose IO the chaos suite must be able to fail.
    include = (
        "repro/common/integrity.py",
        "repro/engine/trace_cache.py",
        "repro/engine/checkpoint.py",
        "repro/service/result_store.py",
    )

    #: Calls that move payload bytes to or from disk.
    _IO_CALLS = (
        "open",
        "os.fdopen",
        "gzip.open",
        "tempfile.mkstemp",
        "mkstemp",
    )
    _IO_METHODS = ("read_bytes", "write_bytes", "read_text", "write_text")

    #: Calls that make the function visible to fault plans.
    _GUARDS = ("fault_point", "read_enveloped", "write_enveloped")

    def check(self, source_file: SourceFile) -> Iterator[Tuple[int, str]]:
        for node in ast.walk(source_file.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            io_lines = []
            guarded = False
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                dotted = dotted_name(call.func)
                if dotted is None:
                    continue
                leaf = dotted.rsplit(".", 1)[-1]
                if leaf in self._GUARDS:
                    guarded = True
                elif dotted in self._IO_CALLS or (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in self._IO_METHODS
                ):
                    io_lines.append((call.lineno, dotted))
            if guarded:
                continue
            for lineno, dotted in io_lines:
                yield lineno, (
                    f"{dotted}() moves payload bytes without a fault "
                    "point: route the IO through repro.common.integrity "
                    "(read_enveloped/write_enveloped) or call "
                    "fault_point(<site>) in this function so chaos "
                    "plans can fail it"
                )
